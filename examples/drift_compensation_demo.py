#!/usr/bin/env python3
"""Drift-compensation demo (paper Section 3.3).

The group clock runs slow relative to real time: each round adopts a
value computed from a physical reading taken *before* the communication
and processing delay of the round.  Over thousands of rounds this adds
up (Figure 6(c)).  The paper sketches two counter-measures; this demo
runs the Figure 6 workload under each and prints the residual drift:

* no compensation            — the algorithm exactly as published;
* mean-delay compensation    — my_clock_offset += mean round delay;
* reference steering         — proposals steered toward a drift-free
                               (e.g. GPS) reference.

Run:  python examples/drift_compensation_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import ascii_series
from repro.core import (
    AlignedReferenceSteering,
    MeanDelayCompensation,
    NoCompensation,
)
from repro.sim import US_PER_SEC
from repro.workloads import run_skew_drift_workload

ROUNDS = 400


def main():
    print(f"running {ROUNDS} clock-synchronization rounds per strategy...\n")

    runs = {}
    runs["no compensation"] = run_skew_drift_workload(
        rounds=ROUNDS, seed=5, drift=NoCompensation()
    )

    # Calibrate the mean per-round delay from the uncompensated run.
    series = next(iter(runs["no compensation"].series.values()))
    real_span = (series.times_s[-1] - series.times_s[0]) * US_PER_SEC
    group_span = series.history[-1][0] - series.history[0][0]
    mean_delay_us = max(1, int((real_span - group_span) / ROUNDS))
    print(f"calibrated mean per-round delay: {mean_delay_us} us\n")

    runs["mean-delay compensation"] = run_skew_drift_workload(
        rounds=ROUNDS, seed=5, drift=MeanDelayCompensation(mean_delay_us)
    )
    runs["reference steering"] = run_skew_drift_workload(
        rounds=ROUNDS,
        seed=5,
        drift_factory=lambda bed: AlignedReferenceSteering(
            lambda: int(bed.sim.now * US_PER_SEC), proportion=0.2
        ),
    )

    for name, result in runs.items():
        series = next(iter(result.series.values()))
        lag = [
            g - p
            for g, p in zip(series.normalized_group(),
                            series.normalized_physical())
        ]
        print(f"--- {name} ---")
        print(" ", ascii_series(lag, label="group clock lag vs pc (us)"))
        print(f"  drift vs real time: {result.group_drift_ppm() / 1e4:+.2f}%")
        print()

    print("paper: compensation 'can significantly reduce the drift but is "
          "necessarily only approximate';\n       a no-drift reference "
          "'introduces a small but repeated bias towards real time'.")


if __name__ == "__main__":
    main()
