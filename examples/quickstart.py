#!/usr/bin/env python3
"""Quickstart: a consistent group clock for a replicated service.

Deploys a three-way actively replicated time server on a simulated
four-node testbed (the paper's setup), makes a few invocations from an
unreplicated client, and shows that

* every replica returned the *same* timestamp for each invocation
  (replica determinism restored), and
* the group clock is strictly monotonically increasing,

then repeats the run with raw local clocks to show the problem the
consistent time service solves.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, Testbed


class ClockApp(Application):
    """The replicated servant: returns gettimeofday() to the caller."""

    def get_time(self, ctx):
        yield ctx.compute(25e-6)            # some servant work
        value = yield ctx.gettimeofday()    # interposed clock call
        return value.micros


def run(time_source: str):
    bed = Testbed(seed=2026)
    bed.deploy("timesvc", ClockApp, ["n1", "n2", "n3"],
               style="active", time_source=time_source)
    client = bed.client("n0")
    bed.start()

    def scenario():
        values = []
        for _ in range(5):
            result, latency_us = yield from client.timed_call(
                "timesvc", "get_time"
            )
            values.append((result.value, latency_us))
        return values

    answers = bed.run_process(scenario())
    bed.run(0.05)  # drain duplicate replies

    per_replica = {
        node_id: [v.micros for _, _, _, v in replica.time_source.readings][-5:]
        for node_id, replica in bed.replicas("timesvc").items()
    }
    return answers, per_replica


def main():
    print("=== With the consistent time service ===")
    answers, per_replica = run("cts")
    for i, (value, latency) in enumerate(answers):
        print(f"  call {i}: group clock = {value} us  "
              f"(end-to-end latency {latency} us)")
    print("  what each replica answered:")
    for node_id, values in sorted(per_replica.items()):
        print(f"    {node_id}: {values}")
    agreed = len({tuple(v) for v in per_replica.values()}) == 1
    monotone = all(b > a for (a, _), (b, _) in zip(answers, answers[1:]))
    print(f"  replicas agree: {agreed}; group clock monotone: {monotone}")

    print()
    print("=== Without it (raw local clocks) ===")
    _, per_replica = run("local")
    for node_id, values in sorted(per_replica.items()):
        print(f"    {node_id}: {values}")
    spread = max(v[0] for v in per_replica.values()) - min(
        v[0] for v in per_replica.values()
    )
    print(f"  replicas disagree by up to {spread / 1e6:.3f} s for the SAME "
          "logical operation — replica consistency is lost.")


if __name__ == "__main__":
    main()
