#!/usr/bin/env bash
# Live-mode smoke test: serve -> call -> kill the leader -> call -> shutdown.
#
# Boots a 3-node replicated time service over loopback UDP, asserts that
# `repro call gettimeofday` gets identical group-clock values from every
# replica, kills one daemon, and asserts the surviving pair still answers
# consistently.  As a bonus it reads the raw physical clocks, which are
# expected to DISAGREE (the Figure-1 hazard the group clock removes).
#
# Usage: bash examples/live_smoke.sh
# Exits 0 on success.  Daemon logs land in a temp dir printed on failure.
set -u
cd "$(dirname "$0")/.."
export PYTHONPATH=src

BASE_PORT="${LIVE_SMOKE_PORT:-19300}"
PEERS="n0=127.0.0.1:$BASE_PORT,n1=127.0.0.1:$((BASE_PORT + 1)),n2=127.0.0.1:$((BASE_PORT + 2))"
LOG_DIR="$(mktemp -d)"

python -m repro serve --node n0 --peers "$PEERS" 2>"$LOG_DIR/n0.log" &
P0=$!
python -m repro serve --node n1 --peers "$PEERS" 2>"$LOG_DIR/n1.log" &
P1=$!
python -m repro serve --node n2 --peers "$PEERS" 2>"$LOG_DIR/n2.log" &
P2=$!
trap 'kill $P0 $P1 $P2 2>/dev/null; wait 2>/dev/null' EXIT
sleep 2

echo "=== group clock, all three replicas ==="
python -m repro call gettimeofday --connect "127.0.0.1:$BASE_PORT" \
    --expect 3 --calls 5
BEFORE=$?

echo "=== killing n0 (ring leader) ==="
kill "$P0"
sleep 3

echo "=== group clock, surviving pair ==="
python -m repro call gettimeofday \
    --connect "127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2))" \
    --expect 2 --calls 5
AFTER=$?

echo "=== physical clocks (disagreement expected) ==="
python -m repro call physical --connect "127.0.0.1:$((BASE_PORT + 1))" \
    --expect 2 --calls 1 || true

if [ "$BEFORE" -eq 0 ] && [ "$AFTER" -eq 0 ]; then
    echo "LIVE SMOKE OK"
    rm -rf "$LOG_DIR"
    exit 0
fi
echo "LIVE SMOKE FAILED (before=$BEFORE after=$AFTER); daemon logs in $LOG_DIR"
exit 1
