#!/usr/bin/env python3
"""Using the Totem substrate directly: a totally-ordered event bus.

The consistent time service sits on top of Totem's reliable ordered
multicast; this demo uses that substrate by itself, as the paper's
Section 2 describes it: "the reliable ordered delivery protocol of the
multicast group communication system ensures that the replicas receive
the same messages in the same order."

Four nodes publish interleaved events; every node observes the identical
global sequence — then one node crashes mid-burst and the survivors
still agree (virtual synchrony), reform the ring, and carry on.

Run:  python examples/totem_bus_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim import Cluster, ClusterConfig
from repro.totem import TotemBus


def main():
    cluster = Cluster(ClusterConfig(num_nodes=4), seed=12)
    bus = TotemBus(cluster)
    bus.subscribe_membership(
        "n0",
        lambda change: print(f"  [n0 sees] {change}"),
    )
    bus.start()
    bus.wait_operational()
    print("ring formed:", bus.processors["n0"].members)

    print("\nfour publishers, interleaved:")
    for i in range(12):
        bus.publish(f"n{i % 4}", f"event-{i}")
    cluster.run(0.1)

    orders = bus.orders()
    reference = orders["n0"]
    print(f"  n0's order: {reference}")
    print("  all nodes identical:",
          all(order == reference for order in orders.values()))

    print("\nn2 crashes mid-burst:")
    for i in range(12, 24):
        bus.publish(f"n{i % 4}", f"event-{i}")
    cluster.run(0.0004)  # messages in flight
    cluster.node("n2").crash()
    cluster.run(0.6)

    survivors = ["n0", "n1", "n3"]
    final = {nid: bus.orders()[nid] for nid in survivors}
    reference = final["n0"]
    print(f"  survivors delivered {len(reference)} events, all in the "
          "same order:",
          all(order == reference for order in final.values()))
    print("  new ring:", bus.processors["n0"].members)

    print("\npost-crash publishing still works:")
    bus.publish("n1", "after-crash")
    cluster.run(0.1)
    print("  delivered at n3:",
          "after-crash" in [p for _, _, p in bus.delivered["n3"]])


if __name__ == "__main__":
    main()
