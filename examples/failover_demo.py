#!/usr/bin/env python3
"""Failover demo: why a primary/backup clock can roll back — and how the
consistent time service prevents it.

Scenario (the paper's Section 1 motivation): a passively replicated
service answers timestamped requests.  Its primary crashes mid-run.

* With the related-work primary/backup clock approach, the new primary
  answers from *its own* physical clock, which can be seconds behind
  (clock roll-back, breaking causality) or ahead (fast-forward, spurious
  timeouts).
* With the consistent time service, the new primary continues the group
  clock: strictly monotone, no jumps beyond real elapsed time.

Run:  python examples/failover_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, Testbed
from repro.sim import ClusterConfig


class TimestampApp(Application):
    def stamp(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        return value.micros


def run(time_source: str, seed: int = 84):
    # Physical clocks disagree by up to 30 seconds.
    bed = Testbed(seed=seed, cluster_config=ClusterConfig(
        num_nodes=4, clock_epoch_spread_s=30.0))
    bed.deploy("svc", TimestampApp, ["n1", "n2", "n3"],
               style="passive", time_source=time_source,
               checkpoint_interval=5)
    client = bed.client("n0")
    bed.start(settle=0.3)

    def calls(n):
        def scenario():
            values = []
            for _ in range(n):
                result, _ = yield from client.timed_call("svc", "stamp",
                                                         timeout=3.0)
                values.append(result.value)
            return values
        return bed.run_process(scenario())

    before = calls(5)
    primary = next(n for n, r in bed.replicas("svc").items() if r.is_primary)
    crash_time = bed.sim.now
    bed.crash(primary)
    bed.run(0.6)  # failure detection + failover
    after = calls(5)
    gap_us = (bed.sim.now - crash_time) * 1e6
    return before, after, primary, gap_us


def describe(name, before, after, primary, gap_us):
    print(f"--- {name} ---")
    print(f"  before crash of primary {primary}: {before}")
    print(f"  after failover:                   {after}")
    step = after[0] - before[-1]
    print(f"  clock step across failover: {step / 1e6:+.3f} s "
          f"(real elapsed time: {gap_us / 1e6:.3f} s)")
    sequence = before + after
    monotone = all(b > a for a, b in zip(sequence, sequence[1:]))
    if not monotone:
        print("  *** CLOCK ROLLED BACK — causality broken ***")
    elif step > gap_us + 1e6:
        print("  *** CLOCK FAST-FORWARDED — spurious timeouts likely ***")
    else:
        print("  clock stayed monotone and tracked real time.")
    print()


def main():
    for name, source in (
        ("Primary/backup clock (related work [9], [3])", "primary-backup"),
        ("Consistent time service (this paper)", "cts"),
    ):
        before, after, primary, gap = run(source)
        describe(name, before, after, primary, gap)


if __name__ == "__main__":
    main()
