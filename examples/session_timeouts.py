#!/usr/bin/env python3
"""Domain example: consistent timeouts for session management.

The paper's introduction names the second motivating use case: "the
physical hardware clock value is used for timeouts, for example, in
timed remote method invocations ... and by transaction processing
systems in two-phase commit and transaction session management."

A passively replicated session manager grants leases ("sessions expire
500 ms after the last heartbeat, by the clock").  Deadlines are *stored
state*; the expiry check compares them against a *later* clock reading —
possibly at a different replica, after a failover:

* with the related-work primary/backup clock, the new primary checks old
  deadlines against **its own** clock, which may be seconds ahead (every
  live session evicted instantly — the "unnecessary time-outs" the paper
  warns about) or behind (expired sessions linger);
* with the consistent time service the group clock carries over the
  failover, and exactly the right sessions expire.

Run:  python examples/session_timeouts.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, Testbed
from repro.sim import ClusterConfig

LEASE_US = 500_000  # 500 ms


class SessionManager(Application):
    def __init__(self):
        self.sessions = {}  # name -> expiry deadline (clock us)

    def heartbeat(self, ctx, name):
        now = yield ctx.gettimeofday()
        self.sessions[name] = now.micros + LEASE_US
        return self.sessions[name]

    def expire_stale(self, ctx):
        """Expire every session whose deadline has passed."""
        now = yield ctx.gettimeofday()
        stale = sorted(
            name for name, deadline in self.sessions.items()
            if deadline <= now.micros
        )
        for name in stale:
            del self.sessions[name]
        return (stale, sorted(self.sessions))

    def get_state(self):
        return dict(self.sessions)

    def set_state(self, state):
        self.sessions = dict(state)


def run(time_source, seed):
    bed = Testbed(seed=seed, cluster_config=ClusterConfig(
        num_nodes=4, clock_epoch_spread_s=30.0))
    bed.deploy("sessions", SessionManager, ["n1", "n2", "n3"],
               style="passive", time_source=time_source,
               checkpoint_interval=1)
    client = bed.client("n0")
    bed.start(settle=0.3)

    def scenario():
        yield client.call("sessions", "heartbeat", "alice", timeout=3.0)
        yield client.call("sessions", "heartbeat", "bob", timeout=3.0)
        return None

    bed.run_process(scenario())

    # 300 ms pass: alice heartbeats again, bob goes silent.
    bed.run(0.3)

    def scenario2():
        yield client.call("sessions", "heartbeat", "alice", timeout=3.0)
        return None

    bed.run_process(scenario2())

    # The primary crashes right after.  A backup takes over.
    primary = next(n for n, r in bed.replicas("sessions").items()
                   if r.is_primary)
    bed.crash(primary)
    bed.run(0.3)  # failover ≈ a few ms + 300 ms of real time

    # By real time: bob's lease (500 ms old) has lapsed; alice's
    # (refreshed 300 ms ago) has not.  Ask the NEW primary.
    def scenario3():
        result = yield client.call("sessions", "expire_stale", timeout=3.0)
        return result.value

    expired, live = bed.run_process(scenario3())
    return primary, expired, live


def main():
    print("correct answer after the failover: expired=['bob'], "
          "live=['alice']\n")
    for name, source in (
        ("Primary/backup clock (related work)", "primary-backup"),
        ("Consistent time service", "cts"),
    ):
        print(f"=== {name} ===")
        verdicts = []
        for seed in (84, 85, 86, 87):
            primary, expired, live = run(source, seed)
            ok = (expired, live) == (["bob"], ["alice"])
            verdicts.append(ok)
            note = "OK" if ok else "WRONG"
            extra = ""
            if not ok and "alice" in expired:
                extra = "  <- live session evicted (clock jumped ahead)"
            elif not ok and "bob" in live:
                extra = "  <- dead session lingers (clock rolled back)"
            print(f"  seed {seed}: old primary {primary} crashed; new "
                  f"primary says expired={expired}, live={live}  [{note}]"
                  f"{extra}")
        print(f"  correct in {sum(verdicts)}/4 runs\n")


if __name__ == "__main__":
    main()
