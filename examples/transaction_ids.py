#!/usr/bin/env python3
"""Domain example: clock-derived transaction identifiers.

The paper's introduction motivates the service with exactly this use
case: "the physical hardware clock value is used as the seed of a random
number generator to generate unique identifiers such as object
identifiers or transaction identifiers."

A replicated transaction manager derives each transaction id from the
current clock reading.  With raw local clocks, the three replicas derive
*different* ids for the same transaction — the replicas diverge and an
active-replication deployment is broken.  With the consistent time
service, every replica derives the identical id, and monotonicity makes
the ids unique without coordination.

Run:  python examples/transaction_ids.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, Testbed


def txn_id_from_clock(micros: int, client: str) -> str:
    """Derive a transaction id the way the intro describes: seed a PRNG
    with the clock value (here: mix bits deterministically)."""
    seed = (micros * 2654435761) & 0xFFFFFFFFFFFF
    return f"txn-{seed:012x}-{client}"


class TransactionManager(Application):
    def __init__(self):
        self.transactions = {}

    def begin(self, ctx, client_name):
        value = yield ctx.gettimeofday()
        txn_id = txn_id_from_clock(value.micros, client_name)
        self.transactions[txn_id] = {"client": client_name, "state": "open",
                                     "begin_us": value.micros}
        return txn_id

    def commit(self, ctx, txn_id):
        yield ctx.compute(10e-6)
        if txn_id not in self.transactions:
            raise KeyError(f"unknown transaction {txn_id}")
        self.transactions[txn_id]["state"] = "committed"
        return "committed"

    def get_state(self):
        return dict(self.transactions)

    def set_state(self, state):
        self.transactions = dict(state)


def run(time_source: str):
    bed = Testbed(seed=99)
    bed.deploy("txmgr", TransactionManager, ["n1", "n2", "n3"],
               style="active", time_source=time_source)
    client = bed.client("n0")
    bed.start()

    def scenario():
        ids = []
        for i in range(4):
            result, _ = yield from client.timed_call(
                "txmgr", "begin", f"client-{i}"
            )
            assert result.ok, result.error
            ids.append(result.value)
            result, _ = yield from client.timed_call(
                "txmgr", "commit", result.value
            )
        return ids

    ids = bed.run_process(scenario())
    bed.run(0.05)
    replica_views = {
        node_id: sorted(replica.app.transactions)
        for node_id, replica in bed.replicas("txmgr").items()
    }
    return ids, replica_views


def main():
    print("=== Transaction ids with the consistent time service ===")
    ids, views = run("cts")
    print("  ids issued to the client:", *ids, sep="\n    ")
    consistent = len({tuple(v) for v in views.values()}) == 1
    print(f"  all replicas hold identical transaction tables: {consistent}")
    print(f"  ids unique: {len(set(ids)) == len(ids)}")

    print()
    print("=== Same application on raw local clocks ===")
    ids, views = run("local")
    print("  the client saw:", *ids, sep="\n    ")
    print("  but the replicas derived their own ids:")
    for node_id, table in sorted(views.items()):
        print(f"    {node_id}: {table}")
    consistent = len({tuple(v) for v in views.values()}) == 1
    print(f"  replicas consistent: {consistent}  <-- the commit() of an id "
          "issued by one replica FAILS at the others")


if __name__ == "__main__":
    main()
