#!/usr/bin/env python3
"""Recovery demo: integrating a new clock into a running group.

Section 3.2 of the paper: adding a replica adds a *clock*, and the group
clock must stay consistent and monotone through it.  The recovering
replica gets application state via a checkpoint at a quiescent point; a
special round of consistent clock synchronization runs during the
transfer, and the newcomer derives its own clock offset from the
delivered CCS value — it never competes, it adopts.

This demo runs a 2-replica timestamped counter, adds a third replica
mid-run, and shows that afterwards all three replicas answer identically
while the group clock never stepped backwards.

Run:  python examples/recovery_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, Testbed
from repro.sim import ClusterConfig


class CounterApp(Application):
    def __init__(self):
        self.count = 0

    def tick(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        self.count += 1
        return (self.count, value.micros)

    def get_state(self):
        return self.count

    def set_state(self, state):
        self.count = state


def main():
    bed = Testbed(seed=7, cluster_config=ClusterConfig(
        num_nodes=4, clock_epoch_spread_s=30.0))
    bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="cts")
    client = bed.client("n0")
    bed.start()

    def calls(n):
        def scenario():
            out = []
            for _ in range(n):
                result, _ = yield from client.timed_call("svc", "tick",
                                                         timeout=3.0)
                out.append(result.value)
            return out
        return bed.run_process(scenario())

    print("two replicas (n1, n2) running:")
    for count, stamp in calls(4):
        print(f"  tick #{count} @ group clock {stamp} us")

    print("\nadding replica n3 (state transfer + special CCS round)...")
    joined_at = bed.sim.now
    joiner = bed.add_replica("svc", "n3", CounterApp, time_source="cts")
    while not joiner.state_transfer.ready:
        bed.run(0.01)
    print(f"  integrated in {(bed.sim.now - joined_at) * 1000:.1f} ms "
          f"(offset adoptions from CCS messages: "
          f"{joiner.time_source.stats.recovery_adoptions})")
    print(f"  n3 adopted count={joiner.app.count} and clock offset="
          f"{joiner.time_source.clock_state.offset_us} us")

    print("\nthree replicas running:")
    after = calls(4)
    for count, stamp in after:
        print(f"  tick #{count} @ group clock {stamp} us")
    bed.run(0.05)

    joiner_answers = [
        v.micros for _, _, _, v in joiner.time_source.readings
    ][-4:]
    veteran_answers = [
        v.micros
        for _, _, _, v in bed.replicas("svc")["n1"].time_source.readings
    ][-4:]
    print(f"\n  n3's readings:  {joiner_answers}")
    print(f"  n1's readings:  {veteran_answers}")
    print(f"  identical: {joiner_answers == veteran_answers}")


if __name__ == "__main__":
    main()
