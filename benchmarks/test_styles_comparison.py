"""EXT-STYLES — the three replication styles under the group clock.

The paper states the consistent time service "applies to active
replication and to the primary/backup approach used by passive and
semi-active replication" (Section 2) but only measures active
replication.  This benchmark completes the picture: normal-case latency
and failover downtime for each style, all using the CTS.

Expected shape: active replication has the lowest failover downtime
(nothing to take over) and pays duplicate replies; passive has the
longest downtime (replay); semi-active sits between; the group clock is
monotone and consistent under all three.
"""

from repro.analysis import format_table, summarize
from repro.errors import RpcTimeout
from repro.replication import Application
from repro.sim import ClusterConfig
from repro.testbed import Testbed


class StyleApp(Application):
    def __init__(self):
        self.count = 0

    def tick(self, ctx):
        yield ctx.compute(30e-6)
        value = yield ctx.gettimeofday()
        self.count += 1
        return (self.count, value.micros)

    def get_state(self):
        return self.count

    def set_state(self, state):
        self.count = state


def run_style(style, *, seed=11, calls=60):
    bed = Testbed(seed=seed, cluster_config=ClusterConfig(
        num_nodes=4, clock_epoch_spread_s=30.0))
    kwargs = {"checkpoint_interval": 5} if style == "passive" else {}
    bed.deploy("svc", StyleApp, ["n1", "n2", "n3"], style=style,
               time_source="cts", **kwargs)
    client = bed.client("n0")
    bed.start(settle=0.3)

    def do_calls(n):
        def scenario():
            stamps = []
            for _ in range(n):
                result, _ = yield from client.timed_call("svc", "tick",
                                                         timeout=3.0)
                assert result.ok, result.error
                stamps.append(result.value[1])
            return stamps
        return bed.run_process(scenario())

    before = do_calls(calls)
    latency = summarize(client.stats.latencies_us)

    # Failover downtime: crash the primary, then hammer with short
    # timeouts until a call succeeds.
    primary = next(nid for nid, r in bed.replicas("svc").items()
                   if r.is_primary)
    crash_at = bed.sim.now
    bed.crash(primary)

    def probe():
        def scenario():
            while True:
                try:
                    result, _ = yield from client.timed_call(
                        "svc", "tick", timeout=0.05
                    )
                except RpcTimeout:
                    continue
                if result.ok:
                    return result.value[1]
        return bed.run_process(scenario())

    first_after = probe()
    downtime = bed.sim.now - crash_at
    after = do_calls(5)
    sequence = before + [first_after] + after
    monotone = all(b > a for a, b in zip(sequence, sequence[1:]))
    dupes = client.stats.replies_duplicate
    return latency, downtime, monotone, dupes


def test_styles_comparison(benchmark, report):
    styles = ["active", "semi-active", "passive"]

    results = benchmark.pedantic(
        lambda: {s: run_style(s) for s in styles}, rounds=1, iterations=1
    )

    report.title(
        "styles_comparison",
        "EXT-STYLES  Replication styles under the consistent time "
        "service (60 calls + primary crash)",
    )
    rows = []
    for style in styles:
        latency, downtime, monotone, dupes = results[style]
        rows.append(
            [
                style,
                f"{latency.p50:.0f}",
                f"{downtime * 1000:.1f}",
                "yes" if monotone else "NO",
                dupes,
            ]
        )
    report.table(
        format_table(
            ["style", "p50 latency (us)", "failover downtime (ms)",
             "clock monotone", "duplicate replies"],
            rows,
        )
    )
    report.line("claims: the group clock stays monotone under every "
                "style; active replication pays duplicate replies but "
                "fails over fastest; passive replays, semi-active is hot.")

    for style in styles:
        _, downtime, monotone, _ = results[style]
        assert monotone, style
        assert downtime < 1.0, (style, downtime)
    # Active replication produces duplicate replies; the others don't.
    assert results["active"][3] > 0
    assert results["semi-active"][3] == 0
    assert results["passive"][3] == 0
