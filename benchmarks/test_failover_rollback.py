"""EXT-FAILOVER — the Section 1 motivation, quantified.

"If the primary that determines the clock readings ... crashes, the
newly selected primary starts with its own physical hardware clock value
... the next clock reading might be earlier than the previous clock
reading (clock roll-back) ... or too far ahead (fast-forward)."

This benchmark runs the same primary-crash scenario across a seed sweep
for (a) the primary/backup clock baseline and (b) the consistent time
service, and reports roll-backs, fast-forwards and monotonicity.

Expected shape: the baseline exhibits roll-back and/or multi-second
fast-forward in a substantial fraction of runs; the CTS exhibits neither
in any run.
"""

from repro.analysis import format_table
from repro.workloads import failover_comparison


def test_failover_rollback_comparison(benchmark, scale, report):
    seeds = scale["failover_seeds"]

    summary = benchmark.pedantic(
        lambda: failover_comparison(seeds, calls_each_side=4),
        rounds=1,
        iterations=1,
    )

    report.title(
        "failover_rollback",
        f"EXT-FAILOVER  Clock step across a primary crash "
        f"({len(list(seeds))} seeds, passive replication, clocks up to "
        "30 s apart)",
    )
    rows = []
    for source in ("primary-backup", "cts"):
        data = summary[source]
        rows.append(
            [
                source,
                data["rollbacks"],
                data["fast_forwards"],
                data["non_monotone"],
                f"{data['worst_step_us'] / 1e6:+.3f}",
                f"{data['best_step_us'] / 1e6:+.3f}",
            ]
        )
    report.table(
        format_table(
            [
                "time source", "roll-backs", "fast-forwards (>1s)",
                "non-monotone runs", "worst step (s)", "best step (s)",
            ],
            rows,
        )
    )
    report.line("paper claim: the CTS group clock is monotonically "
                "increasing across failures; the primary/backup approach "
                "is not (Section 1).")
    per_seed_rows = []
    for result_pb, result_cts in zip(
        summary["primary-backup"]["results"], summary["cts"]["results"]
    ):
        per_seed_rows.append(
            [
                result_pb.seed,
                f"{result_pb.step_us / 1e6:+.3f}",
                f"{result_cts.step_us / 1e6:+.3f}",
                f"{result_pb.real_gap_us / 1e6:.3f}",
            ]
        )
    report.table(
        format_table(
            ["seed", "PB step (s)", "CTS step (s)", "real gap (s)"],
            per_seed_rows,
        )
    )

    baseline = summary["primary-backup"]
    cts = summary["cts"]
    # The baseline misbehaves in at least a quarter of the runs.
    assert baseline["rollbacks"] + baseline["fast_forwards"] >= max(
        1, len(list(seeds)) // 4
    )
    # The CTS never does.
    assert cts["non_monotone"] == 0
    assert cts["rollbacks" if "rollbacks" in cts else "non_monotone"] == 0
    assert cts["worst_step_us"] > 0
