"""EXT-THROUGHPUT — the capacity cost of the group clock.

Not measured in the paper, but implied by its design: every clock
operation is one totally-ordered round, and rounds on a thread are
serialized, so a clock-reading service's throughput is bounded by the
round time (a fraction of a token rotation once proposals pipeline into
consecutive token visits), *not* by CPU speed.

Expected shape: without the CTS, latency stays flat far beyond the rates
measured here; with the CTS, latency explodes (queueing) once the
offered rate crosses the round-rate capacity of roughly
1 / (inter-visit gap + delivery) ≈ 10-15 k ops/s on the calibrated ring.
"""

from pathlib import Path

from repro.analysis import format_table
from repro.workloads import (
    record_benchmark,
    run_loadgen_comparison,
    run_throughput_sweep,
)

RATES = [1_000, 4_000, 8_000, 12_000, 20_000]

#: The persisted benchmark trajectory lives at the repo root so its
#: history is versioned alongside the code that produced it.
BENCH_JSON = Path(__file__).parent.parent / "BENCH_throughput.json"


def test_throughput_capacity(benchmark, report):
    # Per-operation rounds: the paper-implied capacity ceiling.  (The
    # default coalesced mode absorbs these rates — measured separately
    # in test_coalescing_trajectory.)
    def sweep_both():
        return {
            source: run_throughput_sweep(
                RATES, time_source=source, duration_s=0.3, seed=2,
                coalesce=False,
            )
            for source in ("local", "cts")
        }

    results = benchmark.pedantic(sweep_both, rounds=1, iterations=1)

    report.title(
        "throughput",
        "EXT-THROUGHPUT  Open-loop offered rate vs mean latency "
        "(0.3 s per point)",
    )
    rows = []
    for rate in RATES:
        local = results["local"][rate]
        cts = results["cts"][rate]
        rows.append(
            [
                rate,
                f"{local.mean_latency_us:.0f}",
                f"{cts.mean_latency_us:.0f}",
            ]
        )
    report.table(
        format_table(
            ["offered ops/s", "latency w/o CTS (us)", "latency w/ CTS (us)"],
            rows,
        )
    )

    base_local = results["local"][RATES[0]].mean_latency_us
    base_cts = results["cts"][RATES[0]].mean_latency_us
    top_local = results["local"][RATES[-1]].mean_latency_us
    top_cts = results["cts"][RATES[-1]].mean_latency_us
    report.line(
        f"at {RATES[-1]} ops/s: local latency x{top_local / base_local:.1f} "
        f"vs unloaded; CTS latency x{top_cts / base_cts:.0f}"
    )
    report.line("claim: the group clock caps throughput at the CCS round "
                "rate; raw clocks are CPU-bound far beyond it.")

    # Without CTS the service absorbs the top rate (mild latency growth).
    assert top_local < 3 * base_local
    # With CTS the top rate is far past saturation: queueing blow-up.
    assert top_cts > 20 * base_cts
    # But at moderate rates the CTS keeps up fine.
    assert results["cts"][4_000].mean_latency_us < 3 * base_cts


def test_coalescing_trajectory(benchmark, report):
    """Closed-loop coalesced vs per-op throughput; persists the numbers.

    Appends the comparison to ``BENCH_throughput.json`` at the repo
    root, so the file accumulates a throughput trajectory across
    changes to the service.
    """
    concurrency = 16

    def compare():
        return run_loadgen_comparison(
            concurrency=concurrency, duration_s=0.3, seed=0,
            fast_path=True,
        )

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    per_op = results["per-op-rounds"]
    amortized = results["coalesced+fast-path"]
    speedup = amortized.ops_per_s / per_op.ops_per_s

    report.title(
        "throughput_coalescing",
        f"EXT-COALESCE  Closed loop, {concurrency} workers x 0.3 s",
    )
    rows = [
        [r.mode, f"{r.ops_per_s:.0f}", f"{r.p50_us:.0f}",
         f"{r.p99_us:.0f}", f"{r.ccs_per_op:.3f}", r.fast_path_hits]
        for r in results.values()
    ]
    report.table(format_table(
        ["mode", "ops/s", "p50 us", "p99 us", "CCS/op", "fast hits"],
        rows,
    ))
    report.line(f"speedup vs per-op rounds: x{speedup:.2f}")
    report.line("claim: concurrent operations share rounds, so throughput "
                "scales with concurrency instead of the round rate.")

    record_benchmark(BENCH_JSON, results)

    # Acceptance: round amortization + fast path is >= 3x per-op rounds
    # at this concurrency, with a visibly cheaper wire bill.
    assert speedup >= 3.0
    assert amortized.ccs_per_op < 0.5 < per_op.ccs_per_op
    assert amortized.ops_coalesced > 0
    assert amortized.fast_path_hits > 0
