"""EXT-THROUGHPUT — the capacity cost of the group clock.

Not measured in the paper, but implied by its design: every clock
operation is one totally-ordered round, and rounds on a thread are
serialized, so a clock-reading service's throughput is bounded by the
round time (a fraction of a token rotation once proposals pipeline into
consecutive token visits), *not* by CPU speed.

Expected shape: without the CTS, latency stays flat far beyond the rates
measured here; with the CTS, latency explodes (queueing) once the
offered rate crosses the round-rate capacity of roughly
1 / (inter-visit gap + delivery) ≈ 10-15 k ops/s on the calibrated ring.
"""

from repro.analysis import format_table
from repro.workloads import run_throughput_sweep

RATES = [1_000, 4_000, 8_000, 12_000, 20_000]


def test_throughput_capacity(benchmark, report):
    def sweep_both():
        return {
            source: run_throughput_sweep(
                RATES, time_source=source, duration_s=0.3, seed=2
            )
            for source in ("local", "cts")
        }

    results = benchmark.pedantic(sweep_both, rounds=1, iterations=1)

    report.title(
        "throughput",
        "EXT-THROUGHPUT  Open-loop offered rate vs mean latency "
        "(0.3 s per point)",
    )
    rows = []
    for rate in RATES:
        local = results["local"][rate]
        cts = results["cts"][rate]
        rows.append(
            [
                rate,
                f"{local.mean_latency_us:.0f}",
                f"{cts.mean_latency_us:.0f}",
            ]
        )
    report.table(
        format_table(
            ["offered ops/s", "latency w/o CTS (us)", "latency w/ CTS (us)"],
            rows,
        )
    )

    base_local = results["local"][RATES[0]].mean_latency_us
    base_cts = results["cts"][RATES[0]].mean_latency_us
    top_local = results["local"][RATES[-1]].mean_latency_us
    top_cts = results["cts"][RATES[-1]].mean_latency_us
    report.line(
        f"at {RATES[-1]} ops/s: local latency x{top_local / base_local:.1f} "
        f"vs unloaded; CTS latency x{top_cts / base_cts:.0f}"
    )
    report.line("claim: the group clock caps throughput at the CCS round "
                "rate; raw clocks are CPU-bound far beyond it.")

    # Without CTS the service absorbs the top rate (mild latency growth).
    assert top_local < 3 * base_local
    # With CTS the top rate is far past saturation: queueing blow-up.
    assert top_cts > 20 * base_cts
    # But at moderate rates the CTS keeps up fine.
    assert results["cts"][4_000].mean_latency_us < 3 * base_cts
