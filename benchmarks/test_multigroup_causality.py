"""EXT-MULTIGROUP — Section 5 (future work): causal consistency of group
clocks across multiple groups.

"We are currently investigating a solution to this problem that includes
the value of the consistent group clock as a timestamp in the user
messages multicast to the different groups."  This benchmark implements
and measures that solution: work items hop between two independently
clocked groups, carrying group-clock stamps; the receiving group folds
each stamp into its causal floor.

Expected shape: with stamping enabled, every reading along a causal
chain strictly increases; with stamping disabled, causality violations
(a later event with a smaller clock value) appear whenever the receiving
group's clock lags the sender's.
"""

from repro import Application
from repro.analysis import format_table
from repro.core import GroupClockStamp, observe_incoming, stamp_outgoing
from repro.sim import ClusterConfig
from repro.testbed import Testbed


class HopApp(Application):
    def __init__(self, use_stamps: bool):
        self.use_stamps = use_stamps

    def hop(self, ctx, stamp_group, stamp_micros):
        if self.use_stamps and stamp_micros:
            observe_incoming(ctx, GroupClockStamp(stamp_group, stamp_micros))
        value = yield ctx.gettimeofday()
        stamp = stamp_outgoing(ctx)
        return {"value": value.micros, "stamp": (stamp.group, stamp.micros)}


def run_chain(*, use_stamps: bool, seed: int, hops: int = 12):
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=4, clock_epoch_spread_s=30.0),
    )
    bed.deploy("alpha", lambda: HopApp(use_stamps), ["n1", "n2"],
               time_source="cts")
    bed.deploy("beta", lambda: HopApp(use_stamps), ["n2", "n3"],
               time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)

    def scenario():
        values = []
        stamp = ("alpha", 0)
        for hop in range(hops):
            group = "alpha" if hop % 2 == 0 else "beta"
            result = yield client.call(group, "hop", *stamp, timeout=3.0)
            assert result.ok, result.error
            values.append(result.value["value"])
            stamp = result.value["stamp"]
        return values

    return bed.run_process(scenario())


def test_multigroup_causality(benchmark, report):
    seeds = range(300, 306)

    def run_all():
        rows = []
        for seed in seeds:
            stamped = run_chain(use_stamps=True, seed=seed)
            unstamped = run_chain(use_stamps=False, seed=seed)
            rows.append((seed, stamped, unstamped))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def violations(values):
        return sum(1 for a, b in zip(values, values[1:]) if b <= a)

    report.title(
        "multigroup_causality",
        "EXT-MULTIGROUP  Causal chains across two groups, with and "
        "without piggybacked group-clock stamps (12 hops, 6 seeds)",
    )
    table_rows = []
    total_violations_unstamped = 0
    for seed, stamped, unstamped in rows:
        v_stamped = violations(stamped)
        v_unstamped = violations(unstamped)
        total_violations_unstamped += v_unstamped
        table_rows.append([seed, v_stamped, v_unstamped])
    report.table(
        format_table(
            ["seed", "violations (stamped)", "violations (no stamps)"],
            table_rows,
        )
    )
    report.line(
        "claim: with the Section 5 timestamps, causally related readings "
        "across groups strictly increase; without them, group clocks are "
        "mutually unordered."
    )

    for seed, stamped, _ in rows:
        assert violations(stamped) == 0, f"seed {seed}: causality violated"
    # Without stamps, at least some chains go backwards across groups.
    assert total_violations_unstamped > 0
