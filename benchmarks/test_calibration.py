"""CAL — substrate calibration against the paper's measured environment.

The paper's quantitative claims are anchored on two testbed numbers:

* "the peak probability density of the token passing time on our
  testbed is approximately 51 usec" [20], and
* a full rotation of the 4-node logical ring is therefore ≈204 us,
  which sizes the ≈300 us CTS overhead ("one additional token
  circulation").

This benchmark measures the same quantities in the simulator so every
other experiment's scale can be traced back to them.
"""

from repro.analysis import format_table, mode_bin, summarize
from repro.sim import ClusterConfig
from repro.testbed import Testbed
from repro.totem import TotemConfig


def measure_token_timing(seed=0, duration=0.5):
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=4),
        totem_config=TotemConfig(record_token_times=True),
    )
    bed.start()
    bed.run(duration)
    rotations = {}
    for node_id, processor in bed.processors.items():
        times = processor.token_arrival_times
        rotations[node_id] = [b - a for a, b in zip(times, times[1:])]
    return rotations


def test_calibration_token_passing(benchmark, report):
    rotations = benchmark.pedantic(measure_token_timing, rounds=1, iterations=1)

    report.title(
        "calibration",
        "CAL  Token timing calibration vs the paper's testbed",
    )
    rows = []
    all_hops = []
    for node_id, intervals in sorted(rotations.items()):
        s = summarize([v * 1e6 for v in intervals])
        hop = s.p50 / 4.0  # 4-node ring: rotation / 4 = hop
        all_hops.append(hop)
        rows.append(
            [node_id, f"{s.p50:.1f}", f"{hop:.1f}", f"{s.p90:.1f}"]
        )
    report.table(
        format_table(
            ["node", "rotation p50 (us)", "hop (us)", "rotation p90 (us)"],
            rows,
        )
    )
    peak_hop = mode_bin(
        [v * 1e6 / 4.0 for intervals in rotations.values() for v in intervals],
        bin_width=2.0,
    )
    report.line(f"hop-time peak (2 us bins): ≈{peak_hop:.0f} us")
    report.line("paper: token passing time peak ≈ 51 us; rotation ≈ 204 us")

    # The calibration claim: hop time within ±30% of the paper's 51 us.
    mean_hop = sum(all_hops) / len(all_hops)
    assert 35.0 < mean_hop < 67.0, f"hop {mean_hop:.1f} us off calibration"
    # And every processor sees the same rotation (it is one ring).
    medians = [summarize(v).p50 for v in rotations.values()]
    assert max(medians) - min(medians) < 30e-6
