"""EXT-RECOVERY — Section 3.2: integration of new clocks.

A fourth replica joins a running timestamped service mid-run; state is
transferred at a quiescent point, a special CCS round runs, and the new
replica adopts the group clock by deriving its own offset from the
delivered CCS value.

Expected shape: the group clock stays strictly monotone across the join;
the joiner's subsequent readings are byte-identical to the old members';
the joiner's state (request count / stamps) equals the old members'.
"""

from repro.analysis import format_table
from repro.workloads import run_recovery_workload


def test_recovery_integration(benchmark, report):
    seeds = range(200, 206)

    results = benchmark.pedantic(
        lambda: [run_recovery_workload(seed=seed) for seed in seeds],
        rounds=1,
        iterations=1,
    )

    report.title(
        "recovery_integration",
        "EXT-RECOVERY  New replica joins mid-run: special CCS round and "
        "clock integration (6 seeds)",
    )
    rows = []
    for result in results:
        rows.append(
            [
                result.seed,
                "yes" if result.monotone else "NO",
                "yes" if result.joiner_consistent else "NO",
                result.recovery_adoptions,
                f"{result.integration_time_s * 1000:.1f}",
                f"{result.joiner_count}/{result.member_count}",
            ]
        )
    report.table(
        format_table(
            [
                "seed", "monotone", "joiner consistent",
                "offset adoptions", "integration (ms)", "state (joiner/member)",
            ],
            rows,
        )
    )
    report.line(
        "paper: 'at the end of the special round of consistent clock "
        "synchronization, the newly added clock is properly initialized "
        "with respect to the group clock' — verified for every seed."
    )

    for result in results:
        assert result.monotone, f"seed {result.seed}: clock not monotone"
        assert result.joiner_consistent, f"seed {result.seed}: joiner diverged"
        assert result.recovery_adoptions >= 1
        assert result.joiner_count == result.member_count
