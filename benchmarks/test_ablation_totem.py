"""ABL — ablations of substrate design choices (DESIGN.md §5).

The paper's quantitative behaviour rides on a few Totem parameters; this
benchmark sweeps them so a reader can see which results are sensitive to
what:

* flow-control window vs burst delivery time — bigger windows drain
  bursts in fewer token rotations;
* message loss vs retransmissions and delivery latency — the rtr
  mechanism pays for losses with extra rotations but ordering never
  breaks.
"""

from repro.analysis import format_table, summarize
from repro.sim import Cluster, ClusterConfig
from repro.totem import TotemConfig, TotemProcessor


def run_burst(window_size, *, loss_rate=0.0, burst=40, seed=5):
    """Multicast a burst from one processor; measure drain time and
    retransmissions."""
    cluster = Cluster(
        ClusterConfig(num_nodes=4, loss_rate=loss_rate), seed=seed
    )
    config = TotemConfig(window_size=window_size)
    static = cluster.node_ids
    processors = {
        nid: TotemProcessor(cluster.node(nid), config, static_membership=static)
        for nid in static
    }
    delivered = {nid: [] for nid in static}
    sim = cluster.sim
    done_at = {}

    for nid, proc in processors.items():
        def on_deliver(msg, _nid=nid):
            delivered[_nid].append(msg.payload)
            if len(delivered[_nid]) == burst:
                done_at[_nid] = sim.now
        proc.on_deliver = on_deliver
        proc.start()

    deadline = 2.0
    sim.run(until=deadline)
    while not all(p.is_operational for p in processors.values()):
        deadline += 1.0
        sim.run(until=deadline)

    start = sim.now
    for i in range(burst):
        processors["n0"].mcast(i)
    sim.run(until=start + 3.0)

    orders = [tuple(v) for v in delivered.values()]
    assert all(order == orders[0] for order in orders)
    assert sorted(orders[0]) == list(range(burst))
    drain = max(done_at.values()) - start
    retrans = sum(p.stats.retransmissions for p in processors.values())
    return drain, retrans


def test_ablation_window_size(benchmark, report):
    windows = [2, 4, 8, 16, 32]

    results = benchmark.pedantic(
        lambda: {w: run_burst(w) for w in windows}, rounds=1, iterations=1
    )

    report.title(
        "ablation_totem",
        "ABL  Totem design-choice ablations",
    )
    report.line("Flow-control window vs 40-message burst drain time:")
    rows = [
        [w, f"{results[w][0] * 1e6:.0f}"]
        for w in windows
    ]
    report.table(format_table(["window", "drain time (us)"], rows))

    # Bigger windows drain the burst at least as fast (monotone trend,
    # allowing small jitter).
    drains = [results[w][0] for w in windows]
    assert drains[-1] < drains[0]
    report.line("claim: larger windows need fewer token rotations per burst.")
    report.line()


def test_ablation_loss_rate(benchmark, report):
    losses = [0.0, 0.02, 0.05, 0.10]

    results = benchmark.pedantic(
        lambda: [run_burst(16, loss_rate=loss, seed=6) for loss in losses],
        rounds=1,
        iterations=1,
    )
    rows = []
    drains = []
    for loss, (drain, retrans) in zip(losses, results):
        drains.append(drain)
        rows.append([f"{loss:.0%}", f"{drain * 1e6:.0f}", retrans])
    report.title(
        "ablation_loss",
        "ABL  Message loss vs delivery (reliability is free of charge "
        "only at 0% loss)",
    )
    report.table(
        format_table(["loss rate", "drain time (us)", "retransmissions"], rows)
    )
    report.line("claim: ordering and completeness hold at every loss rate; "
                "latency degrades gracefully via rtr retransmission.")

    assert drains[0] < drains[-1]          # loss costs time...
    assert drains[-1] < 1.0                # ...but bounded (no livelock)
