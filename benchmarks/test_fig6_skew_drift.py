"""FIG6 — Figure 6: skew and drift of the consistent time service.

Paper setup (Section 4.2): one client invocation triggers 10,000
clock-related operations at each server replica, with an empty-iteration
busy loop of 30k/60k/90k iterations (60-400 us) inserted between
consecutive operations, so the synchronizer rotates randomly.

Three panels:

(a) interval between consecutive clock operations per replica, measured
    with the physical clock and with the group clock (first 20 rounds);
(b) the clock offset of the first-round winner over rounds — mostly
    decreasing, occasionally increasing;
(c) normalized physical clocks vs the group clock — the group clock runs
    slower than real time.
"""

from repro.analysis import ascii_series, format_table
from repro.workloads import run_skew_drift_workload


def test_fig6_skew_and_drift(benchmark, scale, report):
    rounds = scale["fig6_rounds"]

    result = benchmark.pedantic(
        lambda: run_skew_drift_workload(rounds=rounds, seed=3),
        rounds=1,
        iterations=1,
    )

    report.title(
        "fig6_skew_drift",
        f"FIG6  Skew and drift over {rounds} rounds, rotating synchronizer",
    )

    # ---- Figure 6(a): first 20 rounds' intervals per replica ----------
    report.line("Figure 6(a): clock-read interval, first 20 rounds (us)")
    rows = []
    for index in range(19):
        row = [index + 1]
        for node_id in sorted(result.series):
            series = result.series[node_id]
            row.append(series.physical_intervals()[index])
        row.append(result.series[sorted(result.series)[0]].group_intervals()[index])
        rows.append(row)
    headers = ["round"] + [f"pc@{n}" for n in sorted(result.series)] + ["group"]
    report.table(format_table(headers, rows))
    report.line("paper: intervals 200-1100 us, synchronizer constantly "
                "changing from one replica to another")
    winners20 = result.winners[:20]
    report.line(f"synchronizers of the first 20 rounds: {winners20}")
    report.line(f"winner totals: {result.winner_counts()}")
    report.line()

    # ---- Figure 6(b): offset of the first-round winner ----------------
    first_winner = result.winners[0]
    offsets = result.series[first_winner].offsets()
    report.line(f"Figure 6(b): clock offset at the first-round winner "
                f"({first_winner})")
    report.line(ascii_series(offsets[:20], label="offset, first 20 rounds"))
    report.line(ascii_series(offsets, label=f"offset, all {rounds} rounds"))
    increases = sum(1 for a, b in zip(offsets, offsets[1:]) if b > a)
    report.line(
        f"offset increases in {len(offsets) - 1} transitions: {increases} "
        f"({increases / (len(offsets) - 1):.1%}) — paper: 'quite rare'"
    )
    report.line(f"overall trend: {offsets[0]} -> {offsets[-1]} us "
                "(paper: decreasing)")
    report.line()

    # ---- Figure 6(c): normalized clocks vs the group clock ------------
    report.line("Figure 6(c): normalized clocks, first 20 rounds (us)")
    rows = []
    base_node = sorted(result.series)[0]
    for index in range(20):
        row = [index + 1]
        for node_id in sorted(result.series):
            row.append(result.series[node_id].normalized_physical()[index])
        row.append(result.series[base_node].normalized_group()[index])
        rows.append(row)
    headers = ["round"] + [f"pc@{n}" for n in sorted(result.series)] + ["group"]
    report.table(format_table(headers, rows))
    drift_ppm = result.group_drift_ppm()
    report.line(
        f"group clock drift vs real time: {drift_ppm / 1e4:.1f}% "
        "(paper: group clock visibly slower than all physical clocks; "
        "physical clocks indistinguishable at this scale)"
    )

    # ---- shape assertions ---------------------------------------------
    # Synchronizer rotates among replicas.
    assert len(result.winner_counts()) == 3
    # Offset trend decreasing with only occasional increases.
    assert offsets[-1] < offsets[0]
    assert 0 < increases < 0.5 * len(offsets)
    # Group clock runs slow; physical clocks don't (±drift ppm).
    assert drift_ppm < -1_000
    # Wire economy: one CCS per round in total.
    assert result.total_transmitted == rounds
