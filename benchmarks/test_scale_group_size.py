"""EXT-SCALE — group-size scaling (beyond the paper's 3-way setup).

The paper evaluates a three-way replicated server on a four-node ring.
A natural question for adopters: how do the group clock's costs scale
with the replication degree?  Two effects compound:

* the logical ring grows — token rotation time grows linearly (≈51 us
  per hop), stretching both the request path and the CCS circulation;
* more replicas compete per round — but duplicate suppression keeps the
  wire count at exactly one CCS message per round regardless of degree.

Expected shape: per-call latency grows roughly linearly with ring size;
wire CCS per round stays 1.
"""

from repro.analysis import format_table, summarize
from repro.replication import Application
from repro.sim import ClusterConfig
from repro.testbed import Testbed


class ScaleApp(Application):
    def get_time(self, ctx):
        yield ctx.compute(40e-6)
        value = yield ctx.gettimeofday()
        return value.micros


def run_at_size(replicas, *, calls=150, seed=9):
    num_nodes = replicas + 1  # plus the client's node
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=num_nodes),
    )
    nodes = [f"n{i}" for i in range(1, num_nodes)]
    bed.deploy("svc", ScaleApp, nodes, time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)

    def scenario():
        for _ in range(calls):
            result, _ = yield from client.timed_call("svc", "get_time",
                                                     timeout=5.0)
            assert result.ok
        return None

    bed.run_process(scenario())
    bed.run(0.1)
    transmitted = sum(
        r.time_source.stats.ccs_transmitted
        for r in bed.replicas("svc").values()
    )
    rounds = max(
        len(r.time_source.winners) for r in bed.replicas("svc").values()
    )
    latency = summarize(client.stats.latencies_us)
    return latency, transmitted, rounds


def test_scale_with_group_size(benchmark, report):
    sizes = [2, 3, 4, 5, 6]

    results = benchmark.pedantic(
        lambda: {n: run_at_size(n) for n in sizes}, rounds=1, iterations=1
    )

    report.title(
        "scale_group_size",
        "EXT-SCALE  Cost of the group clock vs replication degree "
        "(150 calls each; ring size = replicas + 1 client node)",
    )
    rows = []
    for n in sizes:
        latency, transmitted, rounds = results[n]
        rows.append(
            [
                n,
                n + 1,
                f"{latency.p50:.0f}",
                f"{latency.p90:.0f}",
                f"{transmitted / rounds:.3f}",
            ]
        )
    report.table(
        format_table(
            ["replicas", "ring nodes", "p50 latency (us)",
             "p90 (us)", "wire CCS per round"],
            rows,
        )
    )
    report.line("claims: latency grows ~linearly with ring size; "
                "exactly one CCS message per round at every degree.")

    # Wire economy independent of degree.
    for n in sizes:
        _, transmitted, rounds = results[n]
        assert transmitted == rounds, (n, transmitted, rounds)
    # Latency grows with ring size (3 -> 6 replicas at least +40%).
    p50_small = results[3][0].p50
    p50_large = results[6][0].p50
    assert p50_large > 1.4 * p50_small
