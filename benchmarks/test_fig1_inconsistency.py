"""FIG1 — Figure 1 (motivation): clock-related operations executed by
different replicas at different real times return inconsistent values.

The paper's Figure 1 is conceptual; this benchmark quantifies it: the
same logical `gettimeofday()` operation is executed by three replicas
under (a) raw local clocks, (b) NTP-disciplined clocks, and (c) the
consistent time service, and we measure how far the three replicas'
answers diverge per operation.

Expected shape: local clocks diverge by seconds (unsynchronized epochs);
NTP-disciplined clocks still diverge by tens-to-hundreds of
microseconds (the intrinsic event-triggered problem, however accurate
the synchronization); the CTS diverges by exactly zero.
"""

from repro.analysis import format_table, summarize
from repro.replication import Application
from repro.sim import ClusterConfig
from repro.testbed import Testbed


class Fig1App(Application):
    def get_time(self, ctx):
        yield ctx.compute(30e-6)
        value = yield ctx.gettimeofday()
        return value.micros


def measure_divergence(time_source, *, seed, calls=60, use_ntp=False):
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=4, clock_epoch_spread_s=10.0),
    )
    if use_ntp:
        bed.install_ntp(poll_interval_s=0.5, gain=0.7)
    bed.deploy("svc", Fig1App, ["n1", "n2", "n3"], time_source=time_source)
    client = bed.client("n0")
    bed.start()
    if use_ntp:
        bed.run(20.0)  # let the discipline converge first

    def scenario():
        for _ in range(calls):
            result, _ = yield from client.timed_call("svc", "get_time",
                                                     timeout=3.0)
            assert result.ok
        return None

    bed.run_process(scenario())
    bed.run(0.1)
    per_replica = [
        [v.micros for _, _, _, v in r.time_source.readings][-calls:]
        for r in bed.replicas("svc").values()
    ]
    divergences = [
        max(vals) - min(vals) for vals in zip(*per_replica)
    ]
    return divergences


def test_fig1_inconsistency(benchmark, report):
    def run_all():
        return {
            "local clocks": measure_divergence("local", seed=11),
            "NTP-disciplined": measure_divergence("ntp", seed=11, use_ntp=True),
            "consistent time service": measure_divergence("cts", seed=11),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report.title(
        "fig1_inconsistency",
        "FIG1  Divergence of replica clock readings for the same logical "
        "operation (60 operations)",
    )
    rows = []
    for name, divergences in results.items():
        s = summarize(divergences)
        rows.append(
            [
                name,
                f"{s.mean:.1f}",
                f"{s.maximum:.0f}",
                f"{sum(1 for d in divergences if d > 0)}/{s.count}",
            ]
        )
    report.table(
        format_table(
            ["clock source", "mean divergence us", "max us", "ops divergent"],
            rows,
        )
    )
    report.line(
        "paper (Figure 1 argument): software clock synchronization cannot "
        "make replica reads consistent; the CTS can."
    )

    local, ntp, cts = (
        results["local clocks"],
        results["NTP-disciplined"],
        results["consistent time service"],
    )
    assert max(cts) == 0, "CTS replicas must agree exactly"
    assert min(local) > 100_000, "unsynchronized clocks diverge by >100 ms"
    assert 0 < sum(ntp) / len(ntp) < 10_000, "NTP: small but nonzero divergence"


def test_fig1_ntp_still_divergent_when_tight(benchmark, report):
    """Even with an aggressively tuned discipline (sub-ms accuracy), the
    per-operation divergence does not vanish — the problem is intrinsic
    to event-triggered execution, not to synchronization quality."""
    divergences = benchmark.pedantic(
        lambda: measure_divergence("ntp", seed=13, use_ntp=True),
        rounds=1,
        iterations=1,
    )
    report.title(
        "fig1_ntp_divergence",
        "FIG1b  NTP-disciplined replicas still answer differently",
    )
    s = summarize(divergences)
    report.line(f"mean divergence: {s.mean:.1f} us, p90: {s.p90:.1f} us, "
                f"max: {s.maximum:.0f} us")
    divergent = sum(1 for d in divergences if d > 0)
    report.line(f"operations with divergent answers: {divergent}/{s.count}")
    assert divergent >= 0.9 * s.count
