"""EXT-DRIFT — Section 3.3: drift-compensation strategy ablation.

The group clock drifts slow relative to real time (Figure 6(c)).  The
paper sketches two counter-measures: adding a *mean delay* to the offset
every round, and steering a small proportion of the difference to an
external reference (NTP/GPS) into each proposal.

This benchmark runs the Figure 6 workload under all three strategies and
reports the residual drift.

Expected shape: uncompensated drift is strongly negative; mean-delay
compensation cancels most of it; reference steering removes long-term
drift almost entirely.
"""

from repro.analysis import format_table
from repro.core import (
    AlignedReferenceSteering,
    MeanDelayCompensation,
    NoCompensation,
)
from repro.sim import US_PER_SEC
from repro.workloads import run_skew_drift_workload


def run_ablation(rounds):
    results = {}

    results["none"] = run_skew_drift_workload(
        rounds=rounds, seed=17, drift=NoCompensation()
    )
    # Calibrate the mean delay from the uncompensated run: the average
    # per-round loss is exactly the measured drift per round.
    series = next(iter(results["none"].series.values()))
    real_span_us = (series.times_s[-1] - series.times_s[0]) * US_PER_SEC
    group_span_us = series.history[-1][0] - series.history[0][0]
    mean_delay = max(1, int((real_span_us - group_span_us) / rounds))
    results["mean-delay"] = run_skew_drift_workload(
        rounds=rounds, seed=17, drift=MeanDelayCompensation(mean_delay)
    )

    # Reference steering: a drift-free reference (e.g. GPS time) — here,
    # the testbed's simulated real time, epoch-aligned at the first round
    # (the paper's source has "a transient skew from real time but no
    # drift").
    results["reference-steering"] = run_skew_drift_workload(
        rounds=rounds,
        seed=17,
        drift_factory=lambda bed: AlignedReferenceSteering(
            lambda: int(bed.sim.now * US_PER_SEC), proportion=0.2
        ),
    )
    return results, mean_delay


def test_drift_compensation_ablation(benchmark, scale, report):
    rounds = scale["drift_rounds"]
    (results, mean_delay), _ = benchmark.pedantic(
        lambda: (run_ablation(rounds), None), rounds=1, iterations=1
    )

    report.title(
        "drift_compensation",
        f"EXT-DRIFT  Drift compensation ablation ({rounds} rounds)",
    )
    rows = []
    for name, result in results.items():
        series = next(iter(result.series.values()))
        final_lag_us = (
            series.normalized_group()[-1] - series.normalized_physical()[-1]
        )
        rows.append(
            [
                name,
                f"{result.group_drift_ppm() / 1e4:+.2f}%",
                f"{final_lag_us / 1000:+.1f}",
            ]
        )
    report.table(
        format_table(
            ["strategy", "drift vs real time", "final lag vs pc (ms)"],
            rows,
        )
    )
    report.line(f"calibrated mean per-round delay: {mean_delay} us")
    report.line(
        "paper: compensation 'can significantly reduce the drift but is "
        "necessarily only approximate'; reference steering 'has no drift'."
    )

    none_ppm = results["none"].group_drift_ppm()
    mean_ppm = results["mean-delay"].group_drift_ppm()
    steer_ppm = results["reference-steering"].group_drift_ppm()
    assert none_ppm < -1_000
    assert abs(mean_ppm) < 0.5 * abs(none_ppm)
    assert abs(steer_ppm) < 0.2 * abs(none_ppm)
