"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §3 for the index) and prints a paper-vs-
measured report.  Reports are also written to ``benchmarks/reports/`` so
they survive pytest's output capture.

Scale: by default the workloads run at reduced size so the whole harness
finishes in minutes; set ``REPRO_FULL=1`` to run at the paper's full
scale (10,000 invocations / rounds).
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

REPORT_DIR = Path(__file__).parent / "reports"

#: Paper-scale vs quick-scale workload sizes.
FULL = bool(int(os.environ.get("REPRO_FULL", "0")))


@pytest.fixture(scope="session")
def scale():
    """Workload sizes, honoring REPRO_FULL."""
    return {
        "fig5_invocations": 10_000 if FULL else 1_500,
        "fig6_rounds": 10_000 if FULL else 1_200,
        "ccs_rounds": 10_000 if FULL else 1_500,
        "failover_seeds": range(0, 16) if FULL else range(0, 8),
        "drift_rounds": 5_000 if FULL else 800,
    }


@pytest.fixture()
def report():
    """Collects report lines; prints and persists them at teardown."""

    class Report:
        def __init__(self):
            self.lines = []
            self.name = "report"

        def title(self, name, text):
            self.name = name
            self.lines.append("=" * 72)
            self.lines.append(text)
            self.lines.append("=" * 72)

        def line(self, text=""):
            self.lines.append(str(text))

        def table(self, text):
            self.lines.append(text)
            self.lines.append("")

    r = Report()
    yield r
    output = "\n".join(r.lines)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{r.name}.txt").write_text(output + "\n")
    print("\n" + output, file=sys.stderr)
