"""FIG5 — Figure 5: probability density of the end-to-end latency with
and without the consistent time service.

Paper setup (Section 4.2): a client on the ring leader n0 invokes a
remote method returning the current time on a three-way actively
replicated server (n1-n3); 10,000 invocations per run; the PDF of the
end-to-end latency is measured at the client.

Paper result: the with-CTS curve is shifted right by ≈300 us, "caused
primarily by one additional token circulation around the logical ring",
in which exactly one CCS message is multicast.

Expected shape here: rightward shift of the with-CTS PDF (the CCS
multicast needs extra token hops before any replica can reply) with one
CCS message transmitted per round; the absolute shift is smaller than
the paper's because the slower replicas' replies partially pipeline the
winner's extra rotation (see EXPERIMENTS.md).
"""

from repro.analysis import (
    ascii_pdf_plot,
    format_table,
    probability_density,
    summarize,
)
from repro.workloads import run_latency_workload


def test_fig5_latency_pdf(benchmark, scale, report):
    invocations = scale["fig5_invocations"]

    def run_both():
        without = run_latency_workload(
            time_source="local", invocations=invocations, seed=42
        )
        with_cts = run_latency_workload(
            time_source="cts", invocations=invocations, seed=42
        )
        return without, with_cts

    without, with_cts = benchmark.pedantic(run_both, rounds=1, iterations=1)

    s_without = summarize(without.latencies_us)
    s_with = summarize(with_cts.latencies_us)
    overhead = s_with.mean - s_without.mean

    report.title(
        "fig5_latency",
        "FIG5  End-to-end latency PDF, with vs without the consistent "
        f"time service ({invocations} invocations)",
    )
    report.table(
        format_table(
            ["configuration", "mean us", "p50", "p90", "p99", "min", "max"],
            [
                [
                    "without CTS",
                    f"{s_without.mean:.1f}",
                    f"{s_without.p50:.0f}",
                    f"{s_without.p90:.0f}",
                    f"{s_without.p99:.0f}",
                    f"{s_without.minimum:.0f}",
                    f"{s_without.maximum:.0f}",
                ],
                [
                    "with CTS",
                    f"{s_with.mean:.1f}",
                    f"{s_with.p50:.0f}",
                    f"{s_with.p90:.0f}",
                    f"{s_with.p99:.0f}",
                    f"{s_with.minimum:.0f}",
                    f"{s_with.maximum:.0f}",
                ],
            ],
        )
    )
    report.line(f"measured CTS overhead (mean): {overhead:+.1f} us")
    report.line("paper: ≈ +300 us (≈ 1.5 token rotations of ≈ 204 us)")
    report.line()

    # The PDF series the figure plots (50 us bins, common axis).
    hi = max(max(without.latencies_us), max(with_cts.latencies_us))
    bins_without = probability_density(
        without.latencies_us, bin_width=50.0, lo=0.0, hi=hi
    )
    bins_with = probability_density(
        with_cts.latencies_us, bin_width=50.0, lo=0.0, hi=hi
    )
    rows = []
    edges = sorted(
        {edge for edge, _ in bins_without} | {edge for edge, _ in bins_with}
    )
    dw = dict(bins_without)
    dc = dict(bins_with)
    for edge in edges:
        rows.append(
            [
                f"{edge:.0f}",
                f"{dw.get(edge, 0.0):.5f}",
                f"{dc.get(edge, 0.0):.5f}",
            ]
        )
    report.table(
        format_table(
            ["latency bin (us)", "density w/o CTS", "density w/ CTS"], rows
        )
    )
    report.line("PDF overlay ('o' = without CTS, 'x' = with CTS):")
    report.line(
        ascii_pdf_plot(
            {"o": [dw.get(e, 0.0) for e in edges],
             "x": [dc.get(e, 0.0) for e in edges]},
            bin_labels=edges,
        )
    )
    report.line()

    # Shape assertions: the service costs something but less than two
    # full token rotations, and one CCS message per round reached the wire.
    assert overhead > 0
    assert overhead < 500
    assert sum(with_cts.ccs_transmitted.values()) == with_cts.rounds
