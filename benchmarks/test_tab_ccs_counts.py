"""TAB-CCS — Section 4.3 prose table: CCS messages sent to the network.

Paper: "the numbers of CCS messages sent to the network for the three
nodes that are running the server replicas (i.e., n1, n2 and n3) are 1,
9,977 and 22, respectively. ... without duplicate suppression, there
would be 10,000 CCS messages sent on each node for each run.  The total
number of CCS messages sent to the network for the run is exactly the
same as the number of synchronization rounds."

Expected shape here: heavily skewed per-node counts (one replica is the
synchronizer almost always), and total wire CCS == rounds exactly.
"""

from repro.analysis import format_table
from repro.workloads import run_latency_workload


def test_tab_ccs_counts(benchmark, scale, report):
    rounds = scale["ccs_rounds"]

    run = benchmark.pedantic(
        lambda: run_latency_workload(
            time_source="cts", invocations=rounds, seed=7
        ),
        rounds=1,
        iterations=1,
    )

    counts = run.ccs_transmitted
    total = sum(counts.values())
    paper = {"n1": 1, "n2": 9_977, "n3": 22}

    report.title(
        "tab_ccs_counts",
        f"TAB-CCS  CCS messages transmitted per node ({rounds} rounds)",
    )
    rows = [
        [
            node,
            paper[node],
            f"{paper[node] / 10_000:.2%}",
            counts.get(node, 0),
            f"{counts.get(node, 0) / total:.2%}",
        ]
        for node in ("n1", "n2", "n3")
    ]
    rows.append(["total", 10_000, "100%", total, "100%"])
    report.table(
        format_table(
            ["node", "paper count", "paper share", "measured", "share"],
            rows,
        )
    )
    report.line(
        "paper: total == rounds (10,000); without suppression it would be "
        "10,000 per node"
    )
    report.line(f"measured: total == rounds == {run.rounds}: "
                f"{total == run.rounds}")

    # Shape: wire economy holds exactly; distribution heavily skewed.
    assert total == run.rounds
    dominant = max(counts.values())
    assert dominant >= 0.9 * total, counts
    # Every node would have sent `rounds` messages without suppression.
    assert total < 1.1 * rounds


def test_tab_ccs_without_suppression(benchmark, report):
    """The paper's counterfactual: "without duplicate suppression, there
    would be 10,000 CCS messages sent on each node for each run."

    With equal-speed replicas (so no replica benefits from the
    buffer-non-empty short-circuit) and pending-send withdrawal turned
    off, every replica transmits its own proposal for nearly every
    round."""
    from repro.core import ConsistentTimeService
    from repro.workloads import run_latency_workload

    rounds = 300

    run = benchmark.pedantic(
        lambda: run_latency_workload(
            time_source=lambda replica: ConsistentTimeService(
                replica, suppress_pending=False
            ),
            invocations=rounds,
            seed=7,
            cpu_profile={},  # homogeneous nodes: everyone competes
        ),
        rounds=1,
        iterations=1,
    )

    report.title(
        "tab_ccs_no_suppression",
        f"TAB-CCS(b)  CCS messages with duplicate suppression DISABLED "
        f"({rounds} rounds, homogeneous replicas)",
    )
    rows = [
        [node, count, f"{count / rounds:.0%} of rounds"]
        for node, count in sorted(run.ccs_transmitted.items())
    ]
    report.table(format_table(["node", "CCS transmitted", "share"], rows))
    total = sum(run.ccs_transmitted.values())
    report.line(
        f"total: {total} for {run.rounds} rounds — vs total == rounds with "
        "suppression enabled"
    )

    # Each node transmits for most rounds; the total far exceeds rounds.
    assert total > 1.8 * run.rounds
    for node, count in run.ccs_transmitted.items():
        assert count > 0.4 * rounds, (node, count)
