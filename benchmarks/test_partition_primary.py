"""EXT-PARTITION — Section 2: the primary-component partition model.

"Network partitioning faults are handled by the underlying group
communication system, which uses a primary component model to handle
network partitioning and remerging, i.e., only the primary component
survives a network partition."

This benchmark partitions one replica away from a running timestamped
service, verifies that (a) the majority keeps serving a monotone group
clock, (b) the minority suspends (a client stranded with it gets no
answers), and (c) after the heal the minority member rejoins through a
fresh state transfer and answers consistently again.
"""

from repro.analysis import format_table
from repro.replication import Application
from repro.sim import ClusterConfig
from repro.testbed import Testbed


class PartitionApp(Application):
    def __init__(self):
        self.count = 0

    def tick(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        self.count += 1
        return (self.count, value.micros)

    def get_state(self):
        return self.count

    def set_state(self, state):
        self.count = state


def run_partition_cycle(seed):
    bed = Testbed(seed=seed, cluster_config=ClusterConfig(
        num_nodes=4, clock_epoch_spread_s=30.0))
    bed.deploy("svc", PartitionApp, ["n1", "n2", "n3"], time_source="cts")
    client = bed.client("n0")
    bed.start()

    def calls(n):
        def scenario():
            values = []
            for _ in range(n):
                result, _ = yield from client.timed_call("svc", "tick",
                                                         timeout=3.0)
                assert result.ok, result.error
                values.append(result.value[1])
            return values
        return bed.run_process(scenario())

    outcome = {"seed": seed}
    before = calls(3)
    bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
    bed.run(0.4)
    minority = bed.replicas("svc")["n3"]
    outcome["minority_suspended"] = minority.suspended
    during = calls(3)
    minority_count_frozen = minority.app.count
    bed.cluster.network.heal()
    bed.run(1.5)
    after = calls(3)
    bed.run(0.2)

    sequence = before + during + after
    outcome["monotone"] = all(b > a for a, b in zip(sequence, sequence[1:]))
    outcome["minority_froze_at"] = minority_count_frozen
    outcome["rejoined_ready"] = minority.state_transfer.ready
    outcome["rejoined_count"] = minority.app.count
    outcome["majority_count"] = bed.replicas("svc")["n1"].app.count
    rejoined_values = [
        v.micros for _, _, _, v in minority.time_source.readings
    ][-3:]
    outcome["rejoined_consistent"] = rejoined_values == after
    return outcome


def test_partition_primary_component(benchmark, report):
    seeds = range(400, 405)
    outcomes = benchmark.pedantic(
        lambda: [run_partition_cycle(seed) for seed in seeds],
        rounds=1,
        iterations=1,
    )

    report.title(
        "partition_primary",
        "EXT-PARTITION  Primary-component behaviour across a partition "
        "and remerge (5 seeds)",
    )
    rows = [
        [
            o["seed"],
            "yes" if o["minority_suspended"] else "NO",
            "yes" if o["monotone"] else "NO",
            f"{o['minority_froze_at']} -> {o['rejoined_count']}"
            f" (majority {o['majority_count']})",
            "yes" if o["rejoined_consistent"] else "NO",
        ]
        for o in outcomes
    ]
    report.table(
        format_table(
            ["seed", "minority suspended", "clock monotone",
             "state frozen -> caught up", "rejoined consistent"],
            rows,
        )
    )
    report.line("paper: only the primary component survives; the group "
                "clock and replica state stay consistent through "
                "partitioning and remerging.")

    for outcome in outcomes:
        assert outcome["minority_suspended"]
        assert outcome["monotone"]
        assert outcome["rejoined_ready"]
        assert outcome["rejoined_count"] == outcome["majority_count"]
        assert outcome["rejoined_consistent"]
