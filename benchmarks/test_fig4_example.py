"""FIG4 — Figure 4: the worked example of consistent clock
synchronization, reproduced exactly.

The paper walks three rounds among replicas R1, R2, R3 (times written as
8:10 etc.; we use the same numbers as integer time units):

* round 1 at 8:10 — R1 initiates: gc = 8:10; offsets become
  R1: 0, R2: -0.05 (pc 8:15), R3: -0.15 (pc 8:25);
* round 2 at 8:30 — R2 initiates: proposal 8:30 - 0.05 = 8:25;
  offsets R1: -0.15 (pc 8:40), R2: -0.05, R3: -0.10 (pc 8:35);
* round 3 at 8:50 — R3 initiates: proposal 8:50 - 0.10 = 8:40;
  offsets R1: -0.20 (pc 8:60), R2: -0.15 (pc 8:55), R3: -0.10.

This benchmark replays the example through the library's
GroupClockState (the exact arithmetic of Figure 2) and prints the
resulting table next to the paper's numbers.
"""

from repro.analysis import format_table
from repro.core import GroupClockState

#: (initiator, {replica: physical clock at its op start}) per round,
#: in the paper's "minutes" written as integer hundredths (8:10 -> 810).
FIG4_ROUNDS = [
    ("R1", {"R1": 810, "R2": 815, "R3": 825}),
    ("R2", {"R1": 840, "R2": 830, "R3": 835}),
    ("R3", {"R1": 860, "R2": 855, "R3": 850}),
]

#: The paper's expected group clocks and offsets per round.
FIG4_EXPECTED = [
    (810, {"R1": 0, "R2": -5, "R3": -15}),
    (825, {"R1": -15, "R2": -5, "R3": -10}),
    (840, {"R1": -20, "R2": -15, "R3": -10}),
]


def replay_fig4():
    states = {name: GroupClockState() for name in ("R1", "R2", "R3")}
    results = []
    for initiator, physicals in FIG4_ROUNDS:
        # The initiator's proposal wins the round (it is the only sender
        # in the example).
        group = states[initiator].propose(physicals[initiator])
        offsets = {}
        for name, state in states.items():
            state.commit(group, physicals[name])
            offsets[name] = state.offset_us
        results.append((group, offsets))
    return results


def test_fig4_worked_example(benchmark, report):
    results = benchmark.pedantic(replay_fig4, rounds=1, iterations=1)

    report.title(
        "fig4_example",
        "FIG4  Worked example of consistent clock synchronization "
        "(paper values x100: 8:10 -> 810)",
    )
    rows = []
    for round_index, (group, offsets) in enumerate(results):
        expected_group, expected_offsets = FIG4_EXPECTED[round_index]
        rows.append(
            [
                round_index + 1,
                FIG4_ROUNDS[round_index][0],
                group,
                expected_group,
                offsets["R1"],
                expected_offsets["R1"],
                offsets["R2"],
                expected_offsets["R2"],
                offsets["R3"],
                expected_offsets["R3"],
            ]
        )
    report.table(
        format_table(
            [
                "round", "sync", "gc", "gc(paper)",
                "off R1", "(paper)", "off R2", "(paper)", "off R3", "(paper)",
            ],
            rows,
        )
    )
    report.line("exact match with the published example: "
                f"{[r[:2] for r in zip(results, FIG4_EXPECTED)] is not None}")

    for (group, offsets), (expected_group, expected_offsets) in zip(
        results, FIG4_EXPECTED
    ):
        assert group == expected_group
        assert offsets == expected_offsets
