"""ABL-DETECT — failure-detection timeout vs failover downtime.

The paper relies on Totem's timeout-based fault detection (Section 2:
"most group communication systems operate only if the physical clocks
are fail-stop — arbitrary fault models can disrupt the timeout-based
fault detection strategy").  This ablation quantifies the operator's
trade-off: a shorter token-loss timeout detects crashes sooner (less
downtime) but sits closer to false-positive territory.

Expected shape: failover downtime ≈ token-loss timeout + membership
(gather/commit/recover ≈ a few join intervals) — linear in the timeout.
"""

from repro.analysis import format_table
from repro.errors import RpcTimeout
from repro.replication import Application
from repro.sim import ClusterConfig
from repro.testbed import Testbed
from repro.totem import TotemConfig


class DetectApp(Application):
    def get_time(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        return value.micros


def measure_downtime(token_loss_timeout_s, *, seed=13):
    config = TotemConfig(
        token_loss_timeout_s=token_loss_timeout_s,
        token_retransmit_timeout_s=min(1.5e-3, token_loss_timeout_s / 3),
    )
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=4),
        totem_config=config,
    )
    bed.deploy("svc", DetectApp, ["n1", "n2", "n3"],
               style="semi-active", time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)

    def one_call(timeout):
        def scenario():
            try:
                result, _ = yield from client.timed_call(
                    "svc", "get_time", timeout=timeout
                )
            except RpcTimeout:
                return None
            return result.value
        return bed.run_process(scenario())

    assert one_call(3.0) is not None
    primary = next(nid for nid, r in bed.replicas("svc").items()
                   if r.is_primary)
    crash_at = bed.sim.now
    bed.crash(primary)
    while one_call(0.02) is None:
        if bed.sim.now - crash_at > 10.0:
            raise AssertionError("failover never completed")
    return bed.sim.now - crash_at


def test_ablation_detection_timeout(benchmark, report):
    timeouts = [2e-3, 5e-3, 10e-3, 20e-3]

    downtimes = benchmark.pedantic(
        lambda: {t: measure_downtime(t) for t in timeouts},
        rounds=1,
        iterations=1,
    )

    report.title(
        "ablation_detection",
        "ABL-DETECT  Token-loss timeout vs failover downtime "
        "(semi-active, primary crashed)",
    )
    rows = [
        [f"{t * 1000:.0f}", f"{downtimes[t] * 1000:.1f}"]
        for t in timeouts
    ]
    report.table(
        format_table(["token-loss timeout (ms)", "downtime (ms)"], rows)
    )
    report.line("claim: downtime ≈ detection timeout + membership "
                "formation (a few join intervals) — linear in the timeout.")

    # Downtime grows with the timeout and stays in the same ballpark.
    values = [downtimes[t] for t in timeouts]
    assert values[0] < values[-1]
    for t in timeouts:
        assert t < downtimes[t] < t + 0.1, (t, downtimes[t])
