"""Pytest root conftest: make ``src/`` importable without installation.

The offline environment lacks the ``wheel`` package that ``pip install
-e .`` needs, so tests and benchmarks add the source tree to ``sys.path``
directly.  (A ``repro-dev.pth`` in site-packages provides the same for
interactive use.)
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
