"""Baseline: software clock synchronization (NTP-style discipline).

The paper (Section 1) argues that software clock-synchronization
algorithms cannot solve the replica non-determinism problem: however
accurately the clocks agree, replicas still *read* them at different
real times, so the readings differ.  This module provides the
comparator: an :class:`NtpDaemon` per node disciplines the node's clock
toward a reference within a realistic LAN error bound, and
:class:`NtpDisciplinedSource` reads the disciplined clock locally.

The daemon can also serve as the §3.3 "NTP, GPS or some other time
source" used by the reference-steering drift compensation strategy.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, TYPE_CHECKING

from ..sim.clock import US_PER_SEC
from ..sim.node import Node
from .local_clock import LocalClockSource

if TYPE_CHECKING:  # pragma: no cover
    from ..replication.replica import Replica


class NtpDaemon:
    """Periodically steps one node's clock toward a reference time.

    ``reference_us`` defaults to simulated real time (an ideal stratum-1
    server); each poll observes ``reference - local`` corrupted by a
    Gaussian measurement error (network asymmetry, queueing) and applies
    a proportional correction.
    """

    def __init__(
        self,
        node: Node,
        rng: random.Random,
        *,
        reference_us: Optional[Callable[[], int]] = None,
        poll_interval_s: float = 1.0,
        gain: float = 0.5,
        error_std_us: float = 200.0,
    ):
        self.node = node
        self.rng = rng
        self.reference_us = reference_us or (
            lambda: int(node.sim.now * US_PER_SEC)
        )
        self.poll_interval_s = poll_interval_s
        self.gain = gain
        self.error_std_us = error_std_us
        self.polls = 0
        self.corrections_us: List[int] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.node.sim.schedule(self.poll_interval_s, self._poll)

    def stop(self) -> None:
        self._running = False

    def _poll(self) -> None:
        if not self._running or not self.node.alive:
            return
        measured = self.reference_us() - self.node.clock.read_us()
        measured += int(self.rng.gauss(0.0, self.error_std_us))
        correction = int(self.gain * measured)
        self.node.clock.step(correction)
        self.polls += 1
        self.corrections_us.append(correction)
        self.node.sim.schedule(self.poll_interval_s, self._poll)


class NtpDisciplinedSource(LocalClockSource):
    """Reads the local clock — which an :class:`NtpDaemon` disciplines.

    Identical read path to :class:`LocalClockSource`; the difference is
    operational (run a daemon per node).  Kept as its own class so
    experiment reports can name the configuration.
    """

    name = "ntp-disciplined"


def install_ntp_daemons(
    nodes,
    rng_factory: Callable[[str], random.Random],
    **daemon_kwargs,
) -> List[NtpDaemon]:
    """Start one daemon per node; returns them for inspection."""
    daemons = []
    for node in nodes:
        daemon = NtpDaemon(node, rng_factory(node.node_id), **daemon_kwargs)
        daemon.start()
        daemons.append(daemon)
    return daemons
