"""Baseline: raw local clocks — no time service at all.

Each replica answers clock-related calls from its own physical hardware
clock.  This is the status quo the paper's Figure 1 motivates against:
replicas execute the same logical operation at different real times on
differently-set clocks, so they return *different* values and replica
consistency is lost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.interposition import resolve_call
from ..replication.timesource import TimeSource
from ..sim.clock import ClockValue
from ..sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..replication.replica import Replica


class LocalClockSource(TimeSource):
    """Reads the hosting node's physical clock, nothing more."""

    name = "local-clock"

    def __init__(self, replica: "Replica"):
        self.replica = replica
        self.node = replica.node
        self.sim = replica.sim
        #: (sim_time, thread_id, call, ClockValue) values handed to the
        #: app — the same shape the consistent time service records.
        self.readings = []

    def read(self, thread_id: str, call_name: str = "gettimeofday") -> Event:
        call = resolve_call(call_name)
        value = ClockValue(call.quantize(self.node.read_clock_us()))
        self.readings.append((self.sim.now, thread_id, call.name, value))
        event = Event(self.sim)
        event.succeed(value)
        return event
