"""Baseline: primary/backup clock reading (related work [9], [3]).

The primary replica answers clock-related operations from *its own*
physical hardware clock and conveys each value to the backups, which use
the conveyed values instead of their own clocks.  This solves agreement
for individual readings, but — as the paper argues in Section 1 — it
does **not** keep the clock monotone across a primary failure: the new
primary starts answering from its own physical clock, which may be
*behind* the old primary's (clock roll-back, breaking causality) or far
ahead (fast-forward, spurious timeouts).

The consistent time service exists precisely to remove this hazard; this
module is the comparator that exhibits it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from ..core.interposition import resolve_call
from ..replication.codec import _pack_str, _unpack_str, register_body_codec
from ..replication.envelope import Envelope, MsgType, make_envelope
from ..replication.timesource import TimeSource
from ..sim.clock import ClockValue
from ..sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..replication.group import GroupView
    from ..replication.replica import Replica


@dataclass(frozen=True)
class ConveyedClockValue:
    """The primary's clock value, conveyed to the backups."""

    thread_id: str
    seq: int
    micros: int
    call_type_id: int

    def wire_size(self) -> int:
        return 32


def _encode_conveyed(body: ConveyedClockValue) -> bytes:
    return _pack_str(body.thread_id) + struct.pack(
        "<qqB", body.seq, body.micros, body.call_type_id)


def _decode_conveyed(buffer: bytes, offset: int):
    thread_id, offset = _unpack_str(buffer, offset)
    seq, micros, call_type_id = struct.unpack_from("<qqB", buffer, offset)
    return ConveyedClockValue(thread_id, seq, micros, call_type_id), offset + 17


# Self-registration keeps the baseline transmittable over the live wire
# without the codec importing this module.
register_body_codec(16, ConveyedClockValue, _encode_conveyed, _decode_conveyed)


class _ThreadBuffer:
    """Conveyed values for one logical thread, with one blocked waiter."""

    def __init__(self):
        self.items: List[int] = []
        self.waiters: List[Event] = []

    def put(self, micros: int) -> None:
        while self.waiters:
            waiter = self.waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed(micros)
                return
        self.items.append(micros)

    def get(self, sim) -> Event:
        event = Event(sim)
        if self.items:
            event.succeed(self.items.pop(0))
        else:
            self.waiters.append(event)
        return event

    @property
    def blocked(self) -> int:
        return sum(1 for w in self.waiters if not w.triggered)


class PrimaryBackupClockSource(TimeSource):
    """Primary reads its physical clock; backups adopt conveyed values."""

    name = "primary-backup-clock"

    def __init__(self, replica: "Replica"):
        self.replica = replica
        self.node = replica.node
        self.sim = replica.sim
        self._buffers: Dict[str, _ThreadBuffer] = {}
        self._seq: Dict[str, int] = {}
        #: (sim_time, thread_id, call, ClockValue) readings handed to the
        #: app — the same shape the consistent time service records.
        self.readings: List[tuple] = []
        self.conveyed_sent = 0
        self.conveyed_consumed = 0

    # ------------------------------------------------------------------

    def read(self, thread_id: str, call_name: str = "gettimeofday") -> Event:
        call = resolve_call(call_name)
        if self.replica.is_primary:
            micros = self.node.read_clock_us()
            self._convey(thread_id, micros, call.type_id)
            value = ClockValue(call.quantize(micros))
            self.readings.append((self.sim.now, thread_id, call.name, value))
            event = Event(self.sim)
            event.succeed(value)
            return event
        # Backup: adopt the next value the primary conveyed for this thread.
        buffer = self._buffer(thread_id)
        raw = buffer.get(self.sim)
        result = Event(self.sim)

        def _finish(event: Event) -> None:
            self.conveyed_consumed += 1
            value = ClockValue(call.quantize(event.value))
            self.readings.append((self.sim.now, thread_id, call.name, value))
            if not result.triggered:
                result.succeed(value)

        raw._add_callback(_finish)
        return result

    def _convey(self, thread_id: str, micros: int, call_type_id: int) -> None:
        seq = self._seq.get(thread_id, 0) + 1
        self._seq[thread_id] = seq
        self.conveyed_sent += 1
        self.replica.endpoint.mcast(
            make_envelope(
                MsgType.CCS,
                self.replica.group,
                self.replica.group,
                0,
                seq,
                self.node.node_id,
                body=ConveyedClockValue(thread_id, seq, micros, call_type_id),
            )
        )

    def handle_ccs(self, envelope: Envelope) -> None:
        conveyed = envelope.body
        if not isinstance(conveyed, ConveyedClockValue):
            return
        if envelope.sender == self.node.node_id:
            return  # our own conveyance echoed back
        self._buffer(conveyed.thread_id).put(conveyed.micros)

    def on_view_change(self, view: "GroupView") -> None:
        """Failover: a backup that just became primary must answer any
        blocked reads from its own clock — this is the moment the clock
        can roll back or jump forward."""
        if view.primary != self.node.node_id:
            return
        for buffer in self._buffers.values():
            while buffer.blocked > len(buffer.items):
                buffer.put(self.node.read_clock_us())

    def finish_recovery(self) -> None:
        """State transfer completed: values conveyed before this point
        are reflected in the transferred application state (every request
        ordered after our GET_STATE is queued and its values are conveyed
        after the STATE message), so the buffers start empty."""
        for buffer in self._buffers.values():
            buffer.items.clear()

    def _buffer(self, thread_id: str) -> _ThreadBuffer:
        if thread_id not in self._buffers:
            self._buffers[thread_id] = _ThreadBuffer()
        return self._buffers[thread_id]
