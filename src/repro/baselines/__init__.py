"""Baseline time sources the paper compares against (S12-S14 in DESIGN.md)."""

from .local_clock import LocalClockSource
from .ntp import NtpDaemon, NtpDisciplinedSource, install_ntp_daemons
from .primary_backup import ConveyedClockValue, PrimaryBackupClockSource

__all__ = [
    "ConveyedClockValue",
    "LocalClockSource",
    "NtpDaemon",
    "NtpDisciplinedSource",
    "PrimaryBackupClockSource",
    "install_ntp_daemons",
]
