"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class ProcessKilled(SimulationError):
    """Raised inside a simulated process that has been forcibly killed.

    Processes are killed when their hosting node crashes (fail-stop model).
    Application code generally should not catch this.
    """


class Interrupt(SimulationError):
    """Raised inside a simulated process that was interrupted.

    Carries the interrupting ``cause`` so the process can decide how to
    react (e.g. a timer firing while blocked on a message queue).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class NodeDown(SimulationError):
    """An operation was attempted on a crashed node (fail-stop model)."""


class NetworkError(SimulationError):
    """A network-level operation failed (e.g. sending from a detached
    interface)."""


class TotemError(ReproError):
    """The Totem single-ring protocol detected a violation of its own
    invariants (sequencing, ring state, token handling)."""


class MembershipError(TotemError):
    """The Totem membership protocol reached an inconsistent state."""


class ReplicationError(ReproError):
    """The replication infrastructure detected an inconsistency."""


class NotPrimaryError(ReplicationError):
    """A primary-only operation was invoked on a backup replica."""


class StateTransferError(ReplicationError):
    """State transfer to a joining/recovering replica failed."""


class ReconfigurationError(ReplicationError):
    """A control-plane reconfiguration (join/drain/rolling restart)
    could not be carried out safely — e.g. draining the last serving
    replica, or a joiner that never caught up within its deadline."""


class RpcError(ReproError):
    """A remote method invocation failed."""


class RpcTimeout(RpcError):
    """A remote method invocation did not complete within its deadline."""


class OverloadedError(RpcError):
    """The gateway shed the request before it entered the total order.

    Raised client-side when a daemon answers with the typed
    ``Overloaded`` result instead of queueing the operation: the
    admission controller judged that accepting it would push queueing
    delay past the point where the reply could still be useful.
    ``retry_after_s`` is the server's backoff hint — the earliest time
    at which retrying has a realistic chance of being admitted.
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.1):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TimeServiceError(ReproError):
    """The consistent time service detected a protocol violation."""


class ClockRollbackError(TimeServiceError):
    """A clock source returned a value earlier than a previous reading.

    The consistent time service guarantees this never happens for the
    group clock; baselines may raise or record it depending on policy.
    """


class ConfigurationError(ReproError):
    """Invalid configuration supplied to a component."""


class TransportError(NetworkError):
    """A live-transport operation failed (socket setup, closed port)."""


class FrameError(ReproError):
    """A wire frame failed to parse (bad magic, bad version, truncation).

    ``reason`` is a stable machine-readable code (``truncated``,
    ``magic``, ``version``, ``length``, ``source``, ``trace``,
    ``payload``, ``trailing``, and the authenticated-mode codes
    ``auth-missing``, ``auth-truncated``, ``auth-forged``,
    ``auth-replay``) used to label the per-reason rejection counters on
    live UDP ports.
    """

    def __init__(self, message: str, *, reason: str = "malformed"):
        super().__init__(message)
        self.reason = reason
