"""Command-line experiment runner: ``python -m repro <experiment>``.

Runs the paper's experiments without pytest and prints the same reports
the benchmark harness produces.  Intended for quick exploration::

    python -m repro fig1                 # replica clock divergence
    python -m repro fig5 --rounds 2000   # latency PDF with/without CTS
    python -m repro ccs  --rounds 5000   # duplicate-suppression counts
    python -m repro fig6 --rounds 1500   # skew & drift series
    python -m repro failover --seeds 8   # roll-back comparison
    python -m repro drift --rounds 800   # compensation ablation
    python -m repro recovery             # new-clock integration
    python -m repro metrics              # observability smoke / cross-check
    python -m repro loadgen --compare    # coalesced vs per-op throughput
    python -m repro all                  # everything, quick scale

Live mode (see ``docs/live_mode.md``) — real UDP sockets instead of the
simulator::

    python -m repro serve --node n0 \\
        --peers n0=127.0.0.1:9000,n1=127.0.0.1:9001,n2=127.0.0.1:9002
    python -m repro call gettimeofday --connect 127.0.0.1:9000 --expect 3

Chaos (see ``docs/chaos.md``) — seeded fault injection against a live
in-process cluster, judged by the invariant oracle::

    python -m repro chaos --scenario examples/chaos_partition.yaml --seed 7 \\
        --artifacts-dir chaos-artifacts
    python -m repro trace --shards chaos-artifacts
    python -m repro loadgen --chaos --assert-counters

Sharded time domains (see ``docs/sharding.md``) — N rings, a routing
tier, and the gradient sync overlay bounding inter-shard skew::

    python -m repro loadgen --shards 4 --bench-json BENCH_throughput.json
    python -m repro loadgen --shards 4 --zipf 1.2 --assert-counters
    python -m repro chaos --scenario examples/chaos_shards.yaml --seed 7

Elastic control plane (see ``docs/operations.md``) — live
reconfiguration and overload drills::

    python -m repro control rolling-restart --nodes 3
    python -m repro control sequence --verdict-json verdict.json
    python -m repro loadgen --open-loop --bench-json BENCH_throughput.json

Observability: every experiment accepts ``--metrics out.jsonl`` (enable
the metrics registry and dump a JSONL + Prometheus-text export) and
``--trace`` (stream protocol trace events to stderr); see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from . import obs, trace
from .analysis import format_table, probability_density, summarize
from .obs import export as obs_export
from .core import (
    AlignedReferenceSteering,
    MeanDelayCompensation,
    NoCompensation,
)
from .sim import US_PER_SEC
from .testbed import STYLES
from .workloads import (
    failover_comparison,
    run_latency_workload,
    run_recovery_workload,
    run_skew_drift_workload,
)


def cmd_fig1(args) -> int:
    from .replication import Application
    from .testbed import Testbed
    from .sim import ClusterConfig

    class App(Application):
        def get_time(self, ctx):
            yield ctx.compute(30e-6)
            value = yield ctx.gettimeofday()
            return value.micros

    rows = []
    for label, source, use_ntp in (
        ("local clocks", "local", False),
        ("NTP-disciplined", "ntp", True),
        ("consistent time service", "cts", False),
    ):
        bed = Testbed(seed=args.seed, cluster_config=ClusterConfig(
            num_nodes=4, clock_epoch_spread_s=10.0))
        if use_ntp:
            bed.install_ntp(poll_interval_s=0.5, gain=0.7)
        bed.deploy("svc", App, ["n1", "n2", "n3"], time_source=source)
        client = bed.client("n0")
        bed.start()
        if use_ntp:
            bed.run(20.0)

        def scenario():
            for _ in range(30):
                result, _ = yield from client.timed_call("svc", "get_time",
                                                         timeout=3.0)
            return None

        bed.run_process(scenario())
        bed.run(0.1)
        per_replica = [
            [v.micros for _, _, _, v in r.time_source.readings][-30:]
            for r in bed.replicas("svc").values()
        ]
        divergences = [max(vs) - min(vs) for vs in zip(*per_replica)]
        s = summarize(divergences)
        rows.append([label, f"{s.mean:.1f}", f"{s.maximum:.0f}"])
    print(format_table(["clock source", "mean divergence us", "max us"],
                       rows, title="FIG1 replica clock divergence"))
    return 0


def cmd_fig5(args) -> int:
    without = run_latency_workload(
        time_source="local", invocations=args.rounds, seed=args.seed)
    with_cts = run_latency_workload(
        time_source="cts", invocations=args.rounds, seed=args.seed)
    rows = []
    for name, run in (("without CTS", without), ("with CTS", with_cts)):
        s = summarize(run.latencies_us)
        rows.append([name, f"{s.mean:.1f}", f"{s.p50:.0f}", f"{s.p90:.0f}"])
    print(format_table(["configuration", "mean us", "p50", "p90"], rows,
                       title=f"FIG5 end-to-end latency ({args.rounds} calls)"))
    overhead = summarize(with_cts.latencies_us).mean - summarize(
        without.latencies_us).mean
    print(f"overhead: {overhead:+.1f} us  (paper: ≈ +300 us)")
    return 0


def cmd_ccs(args) -> int:
    run = run_latency_workload(
        time_source="cts", invocations=args.rounds, seed=args.seed,
        coalesce=args.coalesce)
    rows = [[node, count, f"{count / max(1, run.rounds):.2%}"]
            for node, count in sorted(run.ccs_transmitted.items())]
    rows.append(["total", sum(run.ccs_transmitted.values()),
                 f"rounds={run.rounds}"])
    print(format_table(["node", "CCS transmitted", "share"], rows,
                       title="TAB-CCS duplicate suppression "
                             "(paper: 1 / 9977 / 22)"))
    per_op = (sum(run.ccs_transmitted.values()) / run.ops_completed
              if run.ops_completed else 0.0)
    print(f"clock ops per replica: {run.ops_completed}  "
          f"coalesced: {run.ops_coalesced}  "
          f"CCS messages/op: {per_op:.3f}")
    return 0


def cmd_loadgen(args) -> int:
    """Closed-loop load generator: ops/sec, tails, and CCS economy."""
    from .workloads import (
        record_benchmark,
        run_loadgen,
        run_loadgen_chaos,
        run_loadgen_comparison,
    )

    if args.open_loop:
        return _loadgen_open_loop(args)
    if args.shards is not None and not args.chaos:
        try:
            shards = int(args.shards)
        except ValueError:
            print(f"loadgen: --shards expects a shard count, got "
                  f"{args.shards!r}", file=sys.stderr)
            return 2
        if shards < 1:
            print("loadgen: --shards must be >= 1", file=sys.stderr)
            return 2
        return _loadgen_sharded(args, shards)
    if args.duration is None:
        args.duration = 0.3
    if args.chaos:
        args.duration = max(args.duration, 0.6)
        single = run_loadgen_chaos(
            concurrency=args.concurrency,
            duration_s=args.duration,
            seed=args.seed,
            max_staleness_us=args.max_staleness_us)
        results = {single.mode: single}
    elif args.compare or args.bench_json:
        results = run_loadgen_comparison(
            concurrency=args.concurrency, duration_s=args.duration,
            seed=args.seed, fast_path=args.fast_path,
            max_staleness_us=args.max_staleness_us)
    else:
        single = run_loadgen(
            concurrency=args.concurrency, duration_s=args.duration,
            seed=args.seed, coalesce=args.coalesce,
            fast_path=args.fast_path,
            max_staleness_us=args.max_staleness_us)
        results = {single.mode: single}
    rows = [
        [r.mode, f"{r.ops_per_s:.0f}", f"{r.p50_us:.0f}",
         f"{r.p99_us:.0f}", f"{r.p999_us:.0f}", f"{r.ccs_per_op:.3f}",
         r.ops_coalesced, r.fast_path_hits]
        for r in results.values()
    ]
    print(format_table(
        ["mode", "ops/s", "p50 us", "p99 us", "p99.9 us", "CCS/op",
         "coalesced", "fast hits"],
        rows,
        title=f"LOADGEN closed loop, {args.concurrency} workers x "
              f"{args.duration:.2f} s"))
    per_op = results.get("per-op-rounds")
    amortized = (results.get("coalesced+fast-path")
                 or results.get("coalesced"))
    if per_op is not None and amortized is not None and per_op.ops_per_s:
        print(f"speedup vs per-op rounds: "
              f"x{amortized.ops_per_s / per_op.ops_per_s:.2f}")
    chaos = results.get("chaos")
    if chaos is not None:
        rate = chaos.errors / max(1, chaos.completed + chaos.errors)
        print(f"faults on: {chaos.errors} errors over "
              f"{chaos.completed + chaos.errors} calls "
              f"({rate:.2%} client-visible), {chaos.retries} retries")
    if args.bench_json:
        record_benchmark(args.bench_json, results)
        print(f"benchmark trajectory appended to {args.bench_json}",
              file=sys.stderr)
    if args.assert_counters:
        failures = []
        if chaos is not None:
            # Under faults the bar is a *bounded* client-visible error
            # rate — retries and backoff mask the crash, not luck.
            rate = chaos.errors / max(1, chaos.completed + chaos.errors)
            if chaos.completed <= 0:
                failures.append("no chaos-mode calls completed")
            if rate > 0.05:
                failures.append(
                    f"chaos error rate {rate:.2%} exceeds the 5% bound")
            if chaos.ops_coalesced <= 0:
                failures.append("no operations were coalesced")
        else:
            target = amortized or next(iter(results.values()))
            if target.ops_coalesced <= 0:
                failures.append("no operations were coalesced")
            if args.fast_path and target.fast_path_hits <= 0:
                failures.append("the fast path never served a read")
            if target.errors:
                failures.append(f"{target.errors} client calls failed")
        for failure in failures:
            print(f"ASSERT: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _loadgen_open_loop(args) -> int:
    """``loadgen --open-loop``: the shed-before-collapse measurement.

    Boots a live cluster behind admission-controlled gateways,
    calibrates closed-loop capacity, then drives Poisson arrivals at
    1x/2x/4x capacity (zipf-skewed identities).  Goodput must hold near
    capacity beyond saturation while the excess is answered with typed
    ``Overloaded`` + retry-after; see docs/operations.md.
    """
    from .control.admission import AdmissionConfig
    from .workloads import record_overload_benchmark, run_overload_suite

    config = AdmissionConfig(
        max_inflight=args.max_inflight,
        max_global_queue=32,
        max_client_queue=4,
        max_queue_delay_s=args.max_queue_delay,
    )
    duration = args.duration if args.duration is not None else 2.0
    suite = run_overload_suite(
        seed=args.seed, duration_s=duration,
        calibration_s=max(1.5, duration),
        admission_config=config,
        max_staleness_us=args.max_staleness_us)
    rows = []
    base = suite["baseline"]
    rows.append(["baseline", f"{base['offered_rate_ops_s']:.0f}",
                 f"{base['goodput_ops_s']:.0f}",
                 f"{base['shed_rate']:.2%}", f"{base['timeouts']}",
                 f"{base['p50_us'] / 1000:.1f}",
                 f"{base['p99_us'] / 1000:.1f}"])
    for label, point in suite["points"].items():
        rows.append([label, f"{point['offered_rate_ops_s']:.0f}",
                     f"{point['goodput_ops_s']:.0f}",
                     f"{point['shed_rate']:.2%}", f"{point['timeouts']}",
                     f"{point['p50_us'] / 1000:.1f}",
                     f"{point['p99_us'] / 1000:.1f}"])
    print(format_table(
        ["point", "offered/s", "goodput/s", "shed", "timeouts",
         "p50 ms", "p99 ms"],
        rows,
        title=f"LOADGEN open loop, capacity "
              f"{suite['capacity_ops_s']:.0f} ops/s "
              f"(admission max_inflight={config.max_inflight}, "
              f"queue_delay={config.max_queue_delay_s * 1000:.0f}ms)"))
    print(f"served p99: 4x vs unloaded x{suite['p99_ratio_vs_baseline']:.2f}"
          f", 4x vs saturation x"
          f"{suite.get('p99_ratio_vs_saturation', 0.0):.2f}")
    if args.bench_json:
        record_overload_benchmark(args.bench_json, suite)
        print(f"benchmark trajectory appended to {args.bench_json}",
              file=sys.stderr)
    if args.assert_counters:
        failures = []
        top = suite["points"][max(suite["points"])]
        if top["shed"] <= 0:
            failures.append("overload shed nothing — admission inactive")
        if top["mean_retry_after_s"] <= 0:
            failures.append("shed replies carried no retry-after hint")
        if top["timeouts"] > 0.01 * top["sent"]:
            failures.append(
                f"{top['timeouts']} deadline misses — admitted work "
                "is not being served (collapse, not shed)")
        if top["goodput_ops_s"] < 0.5 * suite["capacity_ops_s"]:
            failures.append(
                f"goodput {top['goodput_ops_s']:.0f} ops/s collapsed "
                f"below half of capacity {suite['capacity_ops_s']:.0f}")
        # The recorded acceptance bound is 2x at the benchmark seed; the
        # CI smoke allows headroom for shared-runner timing noise while
        # still catching an unbounded-tail regression.
        ratio = suite.get("p99_ratio_vs_saturation")
        if ratio is not None and ratio > 3.0:
            failures.append(
                f"served p99 grew x{ratio:.2f} from saturation to "
                "overload — the tail is not bounded")
        for failure in failures:
            print(f"ASSERT: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _loadgen_sharded(args, shards: int) -> int:
    """``loadgen --shards N``: aggregate scaling over sharded domains.

    Runs the single-shard baseline and the N-shard fleet at the *same
    per-shard concurrency*, prints per-shard ops/s plus the measured
    inter-shard skew envelope, and (with ``--bench-json``) appends the
    scaling measurement to the benchmark trajectory.
    """
    from .workloads import record_shard_benchmark, run_loadgen_sharded

    duration = args.duration if args.duration is not None else 0.5
    concurrency = args.concurrency
    if concurrency > 8 and shards > 1:
        # 16 closed-loop workers *per shard* would make the simulated
        # fleet run for minutes; the default flat-mode concurrency is
        # not a sensible per-shard population.
        concurrency = 8
    single = run_loadgen_sharded(
        shards=1, shard_size=args.shard_size, concurrency=concurrency,
        duration_s=duration, seed=args.seed, zipf_s=0.0,
        fast_path=True, max_staleness_us=args.max_staleness_us)
    sharded = run_loadgen_sharded(
        shards=shards, shard_size=args.shard_size, concurrency=concurrency,
        duration_s=duration, seed=args.seed, zipf_s=args.zipf,
        fast_path=True, max_staleness_us=args.max_staleness_us)

    ops = sharded.per_shard_ops_per_s()
    rows = [["single-shard", "-", f"{single.completed}",
             f"{single.ops_per_s:.0f}", f"{single.p50_us:.0f}",
             f"{single.p99_us:.0f}"]]
    for shard in sorted(sharded.per_shard_completed):
        rows.append([f"shard {shard}", f"{shards}",
                     f"{sharded.per_shard_completed[shard]}",
                     f"{ops[shard]:.0f}", "-", "-"])
    rows.append(["aggregate", f"{shards}", f"{sharded.completed}",
                 f"{sharded.ops_per_s:.0f}", f"{sharded.p50_us:.0f}",
                 f"{sharded.p99_us:.0f}"])
    print(format_table(
        ["population", "shards", "completed", "ops/s", "p50 us", "p99 us"],
        rows,
        title=f"LOADGEN sharded, {concurrency} workers/shard x "
              f"{duration:.2f} s" + (f", zipf s={args.zipf}" if args.zipf
                                     else "")))
    scaling = (sharded.ops_per_s / single.ops_per_s
               if single.ops_per_s else 0.0)
    envelope = sharded.skew_envelope
    print(f"aggregate scaling vs single shard: x{scaling:.2f}")
    print(f"skew envelope (post-warmup, {envelope.get('samples', 0)} "
          f"samples): max inter-shard {envelope.get('max_skew_us', 0)} us, "
          f"max ring-hop {envelope.get('max_hop_skew_us', 0)} us")
    if sharded.zipf_s:
        print(f"zipf imbalance: hottest shard at x{sharded.imbalance:.2f} "
              f"of fair share")
    oracle = sharded.oracle_report or {}
    violations = oracle.get("violations", [])
    print(f"oracle: {'OK' if oracle.get('ok') else 'VIOLATIONS'} "
          f"({oracle.get('replies_checked', 0)} replies, "
          f"{oracle.get('shard_summaries_checked', 0)} summaries checked)")
    if args.bench_json:
        record_shard_benchmark(args.bench_json, single, sharded)
        print(f"benchmark trajectory appended to {args.bench_json}",
              file=sys.stderr)
    if args.assert_counters:
        failures = []
        if not oracle.get("ok"):
            failures.append(
                f"oracle flagged {len(violations)} violations")
        if envelope.get("samples", 0) <= 0:
            failures.append("skew envelope has no post-warmup samples")
        if len(sharded.per_shard_completed) < (shards if not sharded.zipf_s
                                               else 1):
            failures.append("some shards served no calls")
        if any(n <= 0 for n in sharded.per_shard_completed.values()):
            failures.append("a shard served zero calls")
        if sharded.errors:
            failures.append(f"{sharded.errors} client calls failed")
        if shards > 1 and scaling < 0.6 * shards:
            failures.append(
                f"aggregate scaling x{scaling:.2f} below 0.6 x {shards}")
        for failure in failures:
            print(f"ASSERT: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def cmd_fig6(args) -> int:
    result = run_skew_drift_workload(rounds=args.rounds, seed=args.seed)
    print(f"FIG6 skew & drift over {args.rounds} rounds")
    print(f"  synchronizer totals: {result.winner_counts()}")
    first_winner = result.winners[0]
    offsets = result.series[first_winner].offsets()
    print(f"  offset of first-round winner {first_winner}: "
          f"{offsets[0]} -> {offsets[-1]} us")
    print(f"  group clock drift vs real time: "
          f"{result.group_drift_ppm() / 1e4:+.2f}%")
    print(f"  CCS transmitted: {result.ccs_transmitted} "
          f"(total {result.total_transmitted} == rounds)")
    return 0


def cmd_failover(args) -> int:
    summary = failover_comparison(range(args.seed, args.seed + args.seeds))
    rows = []
    for source in ("primary-backup", "cts"):
        data = summary[source]
        rows.append([source, data["rollbacks"], data["fast_forwards"],
                     f"{data['worst_step_us'] / 1e6:+.3f}"])
    print(format_table(
        ["time source", "roll-backs", "fast-forwards", "worst step (s)"],
        rows, title=f"EXT-FAILOVER over {args.seeds} seeds"))
    return 0


def cmd_drift(args) -> int:
    plain = run_skew_drift_workload(rounds=args.rounds, seed=args.seed,
                                    drift=NoCompensation())
    series = next(iter(plain.series.values()))
    real = (series.times_s[-1] - series.times_s[0]) * US_PER_SEC
    group = series.history[-1][0] - series.history[0][0]
    mean_delay = max(1, int((real - group) / args.rounds))
    compensated = run_skew_drift_workload(
        rounds=args.rounds, seed=args.seed,
        drift=MeanDelayCompensation(mean_delay))
    steered = run_skew_drift_workload(
        rounds=args.rounds, seed=args.seed,
        drift_factory=lambda bed: AlignedReferenceSteering(
            lambda: int(bed.sim.now * US_PER_SEC), proportion=0.2))
    rows = [
        ["none", f"{plain.group_drift_ppm() / 1e4:+.2f}%"],
        [f"mean-delay ({mean_delay} us)",
         f"{compensated.group_drift_ppm() / 1e4:+.2f}%"],
        ["reference steering", f"{steered.group_drift_ppm() / 1e4:+.2f}%"],
    ]
    print(format_table(["strategy", "drift vs real time"], rows,
                       title=f"EXT-DRIFT ablation ({args.rounds} rounds)"))
    return 0


def cmd_recovery(args) -> int:
    result = run_recovery_workload(seed=args.seed)
    print("EXT-RECOVERY new-clock integration")
    print(f"  monotone across join:   {result.monotone}")
    print(f"  joiner consistent:      {result.joiner_consistent}")
    print(f"  offset adoptions:       {result.recovery_adoptions}")
    print(f"  integration time:       {result.integration_time_s * 1000:.1f} ms")
    return 0


def cmd_partition(args) -> int:
    from .replication import Application
    from .sim import ClusterConfig
    from .testbed import Testbed

    class App(Application):
        def __init__(self):
            self.count = 0

        def tick(self, ctx):
            value = yield ctx.gettimeofday()
            self.count += 1
            return (self.count, value.micros)

        def get_state(self):
            return self.count

        def set_state(self, state):
            self.count = state

    bed = Testbed(seed=args.seed, cluster_config=ClusterConfig(num_nodes=4))
    bed.deploy("svc", App, ["n1", "n2", "n3"], time_source="cts")
    client = bed.client("n0")
    bed.start()

    def calls(n):
        def scenario():
            values = []
            for _ in range(n):
                result, _ = yield from client.timed_call("svc", "tick",
                                                         timeout=3.0)
                values.append(result.value[1])
            return values
        return bed.run_process(scenario())

    print("EXT-PARTITION primary-component cycle")
    before = calls(3)
    bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
    bed.run(0.4)
    minority = bed.replicas("svc")["n3"]
    print(f"  n3 partitioned away; suspended: {minority.suspended}")
    during = calls(3)
    bed.cluster.network.heal()
    bed.run(1.5)
    after = calls(3)
    sequence = before + during + after
    monotone = all(b > a for a, b in zip(sequence, sequence[1:]))
    print(f"  clock monotone through the cycle: {monotone}")
    print(f"  n3 rejoined with state {minority.app.count} "
          f"(majority {bed.replicas('svc')['n1'].app.count})")
    return 0


def cmd_scale(args) -> int:
    from .replication import Application
    from .sim import ClusterConfig
    from .testbed import Testbed

    class App(Application):
        def get_time(self, ctx):
            yield ctx.compute(40e-6)
            value = yield ctx.gettimeofday()
            return value.micros

    rows = []
    for replicas in (2, 3, 4, 5):
        bed = Testbed(seed=args.seed, cluster_config=ClusterConfig(
            num_nodes=replicas + 1))
        nodes = [f"n{i}" for i in range(1, replicas + 1)]
        bed.deploy("svc", App, nodes, time_source="cts")
        client = bed.client("n0")
        bed.start(settle=0.3)

        def scenario():
            for _ in range(60):
                result, _ = yield from client.timed_call("svc", "get_time",
                                                         timeout=5.0)
            return None

        bed.run_process(scenario())
        latency = summarize(client.stats.latencies_us)
        rows.append([replicas, f"{latency.p50:.0f}", f"{latency.p90:.0f}"])
    print(format_table(["replicas", "p50 latency (us)", "p90 (us)"], rows,
                       title="EXT-SCALE group-size sweep"))
    return 0


def cmd_metrics(args) -> int:
    """Observability smoke test.

    Runs the CCS workload with the metrics registry and span tracker
    enabled, then cross-checks the registry-derived per-node transmitted
    counts (``ccs_sent_total`` − ``ccs_suppressed_total``) against the
    wire-level counts the benchmark harness reports.  Exit status 0 only
    if they agree and the latency histogram is populated.
    """
    tracker = obs.RoundSpanTracker()
    with obs.REGISTRY.session(), tracker:
        run = run_latency_workload(
            time_source="cts", invocations=args.rounds, seed=args.seed)
    sent = obs.REGISTRY.get("ccs_sent_total")
    suppressed = obs.REGISTRY.get("ccs_suppressed_total")
    derived = {
        node: int(sent.value(node=node) - suppressed.value(node=node))
        for node in run.ccs_transmitted
    }
    rows = []
    for node in sorted(run.ccs_transmitted):
        ok = derived[node] == run.ccs_transmitted[node]
        rows.append([node, run.ccs_transmitted[node], derived[node],
                     "ok" if ok else "MISMATCH"])
    print(format_table(
        ["node", "wire count", "sent - suppressed", "check"], rows,
        title="OBS-SMOKE CCS transmission cross-check"))
    print()
    print(obs_export.summary_table(obs.REGISTRY,
                                   title="registry after the run"))
    spans = tracker.completed()
    print(f"round spans: {len(spans)} completed; "
          f"synchronizers: {tracker.winner_counts()}")
    histogram = obs.REGISTRY.get("cts_round_latency_us")
    populated = histogram is not None and histogram.total_count() > 0
    matched = derived == dict(run.ccs_transmitted)
    if not matched:
        print("FAIL: registry-derived counts diverge from the wire counts")
    if not populated:
        print("FAIL: round-latency histogram is empty")
    if not spans:
        print("FAIL: no round spans were assembled")
    return 0 if (matched and populated and spans) else 1


def _parse_peer_map(spec: str):
    """``n0=127.0.0.1:9000,n1=...`` -> {node_id: (host, port)}."""
    peers = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            node_id, address = entry.split("=", 1)
            host, port = address.rsplit(":", 1)
            peers[node_id.strip()] = (host.strip(), int(port))
        except ValueError:
            raise ValueError(
                f"bad peer entry {entry!r}; expected name=host:port") from None
    if not peers:
        raise ValueError("empty peer map")
    return peers


def _parse_addresses(spec: str):
    """``host:port[,host:port...]`` -> [(host, port), ...]."""
    addresses = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            host, port = entry.rsplit(":", 1)
            addresses.append((host.strip(), int(port)))
        except ValueError:
            raise ValueError(
                f"bad address {entry!r}; expected host:port") from None
    if not addresses:
        raise ValueError("no server addresses")
    return addresses


def cmd_serve(args) -> int:
    from .net.daemon import DaemonConfig, NodeDaemon

    if not args.node or not args.peers:
        print("serve requires --node and --peers (name=host:port,...)",
              file=sys.stderr)
        return 2
    try:
        peers = _parse_peer_map(args.peers)
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    config = DaemonConfig(
        node_id=args.node,
        peers=peers,
        group=args.group,
        style=args.style,
        coalesce=args.coalesce,
        fast_path=args.fast_path,
        max_staleness_us=args.max_staleness_us,
        clock_epoch_us=args.clock_offset_us,
        clock_drift_ppm=args.clock_drift_ppm,
        join_existing=args.join,
        metrics_port=args.metrics_port,
        trace_dir=args.trace_dir,
        auth_key=args.auth_key,
    )
    try:
        daemon = NodeDaemon(config)
    except KeyError as error:
        print(f"serve: {error.args[0]}", file=sys.stderr)
        return 2
    daemon.serve_forever()
    return 0


def cmd_call(args) -> int:
    from .net.client import LiveCaller

    if not args.connect:
        print("call requires --connect host:port[,host:port...]",
              file=sys.stderr)
        return 2
    method = args.target or "gettimeofday"
    try:
        servers = _parse_addresses(args.connect)
    except ValueError as error:
        print(f"call: {error}", file=sys.stderr)
        return 2
    from .errors import RpcTimeout

    caller = LiveCaller(servers, group=args.group)
    status = 0
    previous_micros = None
    try:
        for index in range(args.calls):
            try:
                outcome = caller.call(method, timeout=args.timeout,
                                      expect_replies=args.expect)
            except RpcTimeout as error:
                print(f"call {index}: TIMEOUT ({error})")
                status = 1
                continue
            values = outcome.values
            agreed = "agree" if outcome.agreed else "DISAGREE"
            if not outcome.agreed or len(values) < args.expect:
                status = 1
            detail = ", ".join(
                f"{sender}={value}" for sender, value in sorted(values.items()))
            print(f"call {index}: {method} -> {len(values)} replies "
                  f"[{agreed}] in {outcome.latency_us} us  {detail}")
            # Group-clock reads must also advance monotonically.
            sample = next(iter(values.values()))
            if isinstance(sample, dict) and "micros" in sample:
                micros = sample["micros"]
                if previous_micros is not None and micros <= previous_micros:
                    print(f"call {index}: NOT MONOTONIC "
                          f"({micros} <= {previous_micros})")
                    status = 1
                previous_micros = micros
    finally:
        caller.close()
    return status


def cmd_chaos(args) -> int:
    """Run a chaos scenario against a live in-process cluster.

    Prints the JSON verdict (schedule hash, fault tallies, client
    tallies, oracle judgement) to stdout; exit status 0 iff the
    invariant oracle saw zero violations and every fault was injected.
    """
    import json

    from .chaos import load_scenario, run_chaos
    from .errors import ConfigurationError

    if not args.scenario:
        print("chaos requires --scenario FILE (see docs/chaos.md)",
              file=sys.stderr)
        return 2
    try:
        scenario = load_scenario(args.scenario)
    except (OSError, ConfigurationError, ValueError) as error:
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    if scenario.shards is not None:
        from .shard import run_shard_chaos

        verdict = run_shard_chaos(
            scenario,
            seed=args.seed,
            duration_s=args.duration,
            clients=args.clients,
            max_staleness_us=args.max_staleness_us,
            artifacts_dir=args.artifacts_dir,
        )
    else:
        verdict = run_chaos(
            scenario,
            seed=args.seed,
            duration_s=args.duration,
            clients=args.clients,
            max_staleness_us=args.max_staleness_us,
            artifacts_dir=args.artifacts_dir,
        )
    text = json.dumps(verdict, indent=2, sort_keys=True)
    print(text)
    if args.verdict_json:
        path = Path(args.verdict_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
    return 0 if verdict["ok"] else 1


def cmd_control(args) -> int:
    """Elastic-control-plane drivers against a live in-process cluster.

    ``control rolling-restart`` cycles every daemon of a live group
    under sustained client load, each restart gated on full
    re-admission; ``control sequence`` runs the acceptance script (join
    a 4th replica, drain the original primary, rolling-restart the
    rest).  Prints the JSON verdict; exit status 0 iff every step
    completed and the invariant oracle saw zero violations.
    """
    import json

    from .control.rolling import run_reconfig_sequence, run_rolling_restart

    action = args.target or "rolling-restart"
    clients = args.clients if args.clients is not None else 4
    common = dict(
        seed=args.seed,
        clients=clients,
        require_rounds=args.require_rounds,
        fast_path=args.fast_path,
        max_staleness_us=args.max_staleness_us,
    )
    if action == "rolling-restart":
        verdict = run_rolling_restart(num_nodes=args.nodes, **common)
    elif action == "sequence":
        verdict = run_reconfig_sequence(**common)
    else:
        print(f"control: unknown action {action!r} "
              "(expected rolling-restart or sequence)", file=sys.stderr)
        return 2
    text = json.dumps(verdict, indent=2, sort_keys=True)
    print(text)
    if args.verdict_json:
        path = Path(args.verdict_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
    return 0 if verdict["ok"] else 1


def cmd_trace(args) -> int:
    """Render cross-node op timelines assembled from trace shards.

    Reads the per-node ``trace-*.jsonl`` shard files a chaos run (with
    ``--artifacts-dir``) or a daemon (with ``--trace-dir``) wrote,
    stitches them with the :class:`~repro.obs.crossnode.CrossNodeSpanAssembler`,
    and prints one timeline per trace id — as a table, or as JSONL with
    ``--jsonl`` for downstream tooling.
    """
    import json

    from .obs.crossnode import assemble_timelines

    if not args.shards:
        print("trace requires --shards DIR (a chaos --artifacts-dir or "
              "serve --trace-dir directory)", file=sys.stderr)
        return 2
    if not Path(args.shards).is_dir():
        print(f"trace: {args.shards} is not a directory", file=sys.stderr)
        return 2
    timelines = assemble_timelines(args.shards)
    if args.trace_id:
        timelines = [t for t in timelines if t.trace_id == args.trace_id]
        if not timelines:
            print(f"trace: no timeline with id {args.trace_id}",
                  file=sys.stderr)
            return 1
    complete = sum(1 for t in timelines if t.complete)
    shown = timelines[:args.limit] if args.limit else timelines
    if args.jsonl:
        for timeline in shown:
            print(json.dumps(timeline.to_dict(), sort_keys=True))
        return 0 if timelines else 1
    rows = []
    for timeline in shown:
        rows.append([
            timeline.trace_id,
            timeline.client,
            timeline.method or "-",
            "yes" if timeline.complete else "no",
            len(timeline.hops),
            " > ".join(f"{h.stage}@{h.node}" for h in timeline.hops),
        ])
    if not rows:
        print(f"no timelines assembled from {args.shards}", file=sys.stderr)
        return 1
    print(format_table(
        ["trace id", "client", "method", "complete", "hops", "path"],
        rows,
        title=f"TRACE {len(timelines)} op timelines "
              f"({complete} complete) from {args.shards}"))
    if args.limit and len(timelines) > args.limit:
        print(f"... {len(timelines) - args.limit} more "
              f"(raise --limit or use --jsonl)", file=sys.stderr)
    return 0


def cmd_all(args) -> int:
    status = 0
    for command in (cmd_fig1, cmd_fig5, cmd_ccs, cmd_fig6, cmd_failover,
                    cmd_drift, cmd_recovery, cmd_partition, cmd_scale):
        print()
        status |= command(args)
    return status


COMMANDS = {
    "fig1": cmd_fig1,
    "fig5": cmd_fig5,
    "ccs": cmd_ccs,
    "fig6": cmd_fig6,
    "failover": cmd_failover,
    "drift": cmd_drift,
    "recovery": cmd_recovery,
    "partition": cmd_partition,
    "scale": cmd_scale,
    "metrics": cmd_metrics,
    "loadgen": cmd_loadgen,
    "all": cmd_all,
    "serve": cmd_serve,
    "call": cmd_call,
    "chaos": cmd_chaos,
    "control": cmd_control,
    "trace": cmd_trace,
}


@contextmanager
def _observability(args):
    """Wrap one command in the telemetry the flags asked for.

    ``--metrics PATH`` enables the registry, collects trace events and
    round spans, and on exit writes a JSONL export to PATH plus a
    Prometheus text exposition next to it.  ``--trace`` streams every
    protocol trace event to stderr as it happens.
    """
    metrics_path = getattr(args, "metrics", None)
    tracing = getattr(args, "trace", False)
    if not metrics_path and not tracing:
        yield
        return
    events: List[trace.TraceEvent] = []
    tracker = obs.RoundSpanTracker()
    unsubscribes = []
    if metrics_path:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
        tracker.attach()
        unsubscribes.append(trace.subscribe(events.append))
    if tracing:
        unsubscribes.append(trace.subscribe(
            lambda event: print(str(event), file=sys.stderr)))
    try:
        yield
    finally:
        for unsubscribe in unsubscribes:
            unsubscribe()
        tracker.detach()
        if metrics_path:
            obs.REGISTRY.disable()
            path = Path(metrics_path)
            written = obs_export.write_jsonl(
                obs.REGISTRY, path,
                trace_events=events, spans=tracker.completed())
            prom_path = path.with_suffix(".prom")
            prom_path.write_text(obs_export.prometheus_text(obs.REGISTRY))
            print(f"[obs] wrote {written} records to {path} and a "
                  f"Prometheus exposition to {prom_path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiments (DSN 2003 consistent "
                    "time service reproduction).",
    )
    parser.add_argument("experiment", choices=sorted(COMMANDS),
                        help="which experiment to run (or 'serve'/'call' "
                             "for live mode)")
    parser.add_argument("target", nargs="?", default=None,
                        help="method name for 'call' (default gettimeofday)")
    parser.add_argument("--rounds", type=int, default=500,
                        help="workload size (invocations / rounds)")
    parser.add_argument("--seeds", type=int, default=6,
                        help="seed-sweep width (failover)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="enable the metrics registry and write a JSONL "
                             "export to PATH (plus PATH with a .prom suffix "
                             "in Prometheus text exposition format)")
    parser.add_argument("--trace", action="store_true",
                        help="stream protocol trace events to stderr")
    svc = parser.add_argument_group(
        "time service tuning", "CTS options for 'serve', 'ccs' and 'loadgen'")
    svc.add_argument("--no-coalesce", dest="coalesce", action="store_false",
                     help="one CCS round per clock operation (disable "
                          "round coalescing)")
    svc.add_argument("--fast-path", action="store_true",
                     help="serve drift-bounded reads locally between "
                          "rounds (relaxes cross-replica agreement within "
                          "the staleness budget)")
    svc.add_argument("--max-staleness-us", type=int, default=2_000,
                     help="fast path staleness budget in microseconds")
    load = parser.add_argument_group(
        "load generator", "options for 'loadgen'")
    load.add_argument("--concurrency", type=int, default=16,
                      help="closed-loop worker count")
    load.add_argument("--duration", type=float, default=None,
                      help="measurement window in seconds (loadgen default "
                           "0.3 virtual s; chaos default comes from the "
                           "scenario file)")
    load.add_argument("--compare", action="store_true",
                      help="run per-op-rounds and coalesced modes back "
                           "to back and report the speedup")
    load.add_argument("--chaos", action="store_true",
                      help="loadgen: run the faults-on mode (lossy LAN + "
                           "mid-run replica crash/recovery, retrying "
                           "clients) and report throughput under faults")
    load.add_argument("--bench-json", metavar="PATH", default=None,
                      help="append the comparison to the persisted "
                           "benchmark trajectory at PATH (implies "
                           "--compare)")
    load.add_argument("--assert-counters", action="store_true",
                      help="exit nonzero unless coalescing (and, with "
                           "--fast-path, fast path) counters are nonzero "
                           "— the CI perf smoke check; in sharded mode, "
                           "requires a clean oracle, a measured skew "
                           "envelope and near-linear aggregate scaling")
    load.add_argument("--shard-size", type=int, default=3,
                      help="loadgen --shards: replicas per shard ring")
    load.add_argument("--zipf", type=float, default=0.0,
                      help="loadgen --shards: zipf exponent for the "
                           "client population (0 = uniform; ~1.2 gives "
                           "a visibly hot shard)")
    load.add_argument("--open-loop", action="store_true",
                      help="loadgen: open-loop overload suite — Poisson "
                           "arrivals at 1x/2x/4x calibrated capacity "
                           "against admission-controlled gateways "
                           "(shed-before-collapse, see docs/operations.md)")
    load.add_argument("--max-inflight", type=int, default=4,
                      help="open-loop: admitted operations concurrently "
                           "inside the total order, per gateway")
    load.add_argument("--max-queue-delay", type=float, default=0.02,
                      help="open-loop: admission queue delay budget in "
                           "seconds (longer predicted waits are shed)")
    chaos = parser.add_argument_group(
        "chaos", "options for 'chaos' (see docs/chaos.md)")
    chaos.add_argument("--scenario", default=None, metavar="FILE",
                       help="chaos: scenario file (YAML subset or JSON)")
    chaos.add_argument("--clients", type=int, default=None,
                       help="chaos: gateway client threads (default from "
                            "the scenario file)")
    chaos.add_argument("--artifacts-dir", default=None, metavar="DIR",
                       help="chaos: write trace shards and flight-recorder "
                            "dumps into DIR and add the assembled cross-"
                            "node timelines to the verdict")
    chaos.add_argument("--verdict-json", default=None, metavar="PATH",
                       help="chaos: also write the verdict JSON to PATH "
                            "(for CI artifact upload)")
    control = parser.add_argument_group(
        "control plane",
        "options for 'control' (rolling-restart | sequence; "
        "see docs/operations.md)")
    control.add_argument("--nodes", type=int, default=3,
                         help="control rolling-restart: cluster size")
    control.add_argument("--require-rounds", type=int, default=1,
                         help="control: CCS rounds a re-admitted node "
                              "must complete before the next step")
    tracecmd = parser.add_argument_group(
        "trace", "options for 'trace' (cross-node timeline rendering)")
    tracecmd.add_argument("--shards", default=None, metavar="N|DIR",
                          help="loadgen: shard count for the sharded bench "
                               "(time domains, see docs/sharding.md); "
                               "trace: directory of trace-*.jsonl shards "
                               "(chaos --artifacts-dir / serve --trace-dir)")
    tracecmd.add_argument("--jsonl", action="store_true",
                          help="trace: emit one JSON timeline per line "
                               "instead of a table")
    tracecmd.add_argument("--trace-id", default=None,
                          help="trace: show only this trace id")
    tracecmd.add_argument("--limit", type=int, default=20,
                          help="trace: timelines to render (0 = all)")
    live = parser.add_argument_group(
        "live mode", "options for 'serve' and 'call' (see docs/live_mode.md)")
    live.add_argument("--node", default=None,
                      help="serve: this daemon's node id (must be in --peers)")
    live.add_argument("--peers", default=None, metavar="MAP",
                      help="serve: ring address book, "
                           "n0=host:port,n1=host:port,... (same on every node)")
    live.add_argument("--connect", default=None, metavar="ADDRS",
                      help="call: daemon addresses, host:port[,host:port...]")
    live.add_argument("--calls", type=int, default=5,
                      help="call: number of sequential invocations")
    live.add_argument("--expect", type=int, default=1,
                      help="call: replies to wait for per invocation "
                           "(set to the group size with active replication)")
    live.add_argument("--timeout", type=float, default=2.0,
                      help="call: per-invocation timeout in seconds")
    live.add_argument("--style", default="active",
                      choices=sorted(STYLES),
                      help="serve: replication style")
    live.add_argument("--group", default="timesvc",
                      help="group name served / called")
    live.add_argument("--clock-offset-us", type=int, default=0,
                      help="serve: injected wall-clock epoch offset (us)")
    live.add_argument("--clock-drift-ppm", type=float, default=0.0,
                      help="serve: injected wall-clock drift (ppm)")
    live.add_argument("--join", action="store_true",
                      help="serve: join an already-running group "
                           "(recovering replica)")
    live.add_argument("--metrics-port", type=int, default=None,
                      help="serve: expose /metrics (Prometheus text), "
                           "/metrics.json and /healthz on this port")
    live.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="serve: write this node's trace shard "
                           "(trace-<node>.jsonl) into DIR and keep the "
                           "flight recorder running (dumped on crash)")
    live.add_argument("--auth-key", default=None, metavar="SECRET",
                      help="serve: shared secret for the authenticated "
                           "Byzantine-tolerant mode — ring frames carry "
                           "HMACs and the time service filters implausible "
                           "round winners (same secret on every daemon)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.metrics is not None:
        # Fail before the experiment runs, not after: an unwritable
        # export path would otherwise waste the whole run.
        if not args.metrics:
            parser.error("argument --metrics: path must not be empty")
        path = Path(args.metrics)
        try:
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
        except OSError as error:
            parser.error(f"cannot write metrics file {path}: {error}")
    with _observability(args):
        return COMMANDS[args.experiment](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
