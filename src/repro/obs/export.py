"""Exporters: JSONL dumps, Prometheus text exposition, summary tables.

Three independent views over the same :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`write_jsonl` — one JSON record per metric series (plus,
  optionally, one per trace event and per round span): the machine-
  readable dump downstream analysis ingests.
* :func:`prometheus_text` — the classic ``text/plain; version=0.0.4``
  exposition format, so a snapshot can be diffed against what a real
  Prometheus scrape of a production deployment would return.
* :func:`summary_table` — the human-readable roll-up the CLI prints,
  reusing the benchmark harness's table formatter.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Iterable, List, Optional, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import RoundSpan
from ..trace import TraceEvent

PathOrFile = Union[str, Path, IO[str]]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def trace_event_record(event: TraceEvent) -> dict:
    """The JSONL encoding of one trace event."""
    record = {"record": "trace", "kind": event.kind, "node": event.node}
    record.update(event.fields)
    return record


def write_jsonl(
    registry: MetricsRegistry,
    target: PathOrFile,
    *,
    trace_events: Optional[Iterable[TraceEvent]] = None,
    spans: Optional[Iterable[RoundSpan]] = None,
) -> int:
    """Dump the registry (and optional traces/spans) as JSON lines.

    Returns the number of records written.  Record types are
    distinguished by the ``record`` field: ``metric``, ``trace``,
    ``span``.
    """
    records: List[dict] = []
    for sample in registry.collect():
        records.append({"record": "metric", **sample})
    for event in trace_events or ():
        records.append(trace_event_record(event))
    for span in spans or ():
        records.append({"record": "span", **span.to_dict()})

    if hasattr(target, "write"):
        out = target
        close = False
    else:
        out = open(target, "w", encoding="utf-8")
        close = True
    try:
        for record in records:
            out.write(json.dumps(record, default=str) + "\n")
    finally:
        if close:
            out.close()
    return len(records)


def read_jsonl(source: PathOrFile, *, strict: bool = False) -> List[dict]:
    """Parse a dump produced by :func:`write_jsonl`.

    By default malformed lines are skipped — dumps written by a crashing
    process are routinely truncated mid-line, and trace shards from a
    killed daemon must still assemble.  Pass ``strict=True`` to raise
    ``json.JSONDecodeError`` on the first bad line instead.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    records: List[dict] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if strict:
                raise
    return records


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    out = io.StringIO()
    for metric in registry.metrics():
        header_needed = True

        def header():
            if metric.help:
                out.write(f"# HELP {metric.name} {metric.help}\n")
            out.write(f"# TYPE {metric.name} {metric.kind}\n")

        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.items():
                if header_needed:
                    header()
                    header_needed = False
                out.write(f"{metric.name}{_format_labels(labels)} "
                          f"{_format_value(value)}\n")
        elif isinstance(metric, Histogram):
            for labels, snap in metric.items():
                if header_needed:
                    header()
                    header_needed = False
                for bound, cumulative in snap.cumulative():
                    le = _format_value(float(bound))
                    out.write(
                        f"{metric.name}_bucket"
                        f"{_format_labels(labels, {'le': le})} "
                        f"{cumulative}\n"
                    )
                out.write(f"{metric.name}_sum{_format_labels(labels)} "
                          f"{_format_value(snap.sum)}\n")
                out.write(f"{metric.name}_count{_format_labels(labels)} "
                          f"{snap.count}\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------

def summary_table(registry: MetricsRegistry, *, title: str = "metrics") -> str:
    """A terminal-friendly roll-up of every recorded series."""
    from ..analysis.tables import format_table  # local: avoid import cycle

    rows = []
    for metric in registry.metrics():
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.items():
                rows.append([
                    metric.name,
                    metric.kind,
                    _format_labels(labels) or "-",
                    _format_value(value),
                ])
        elif isinstance(metric, Histogram):
            for labels, snap in metric.items():
                detail = (f"count={snap.count} mean={snap.mean:.1f} "
                          f"min={_format_value(snap.minimum or 0)} "
                          f"max={_format_value(snap.maximum or 0)}")
                rows.append([
                    metric.name, metric.kind,
                    _format_labels(labels) or "-", detail,
                ])
    if not rows:
        return f"{title}: (no samples recorded)"
    return format_table(["metric", "type", "labels", "value"], rows,
                        title=title)
