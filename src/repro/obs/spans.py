"""Round spans: one record per CCS round, assembled from trace events.

A *round span* follows a single consistent-clock-synchronization round
from the ``gettimeofday()`` interposition point through multicast, total
ordering and delivery:

* ``round.start``      — the clock operation began (proposal computed);
* ``round.sent``       — our CCS message was handed to Totem;
* ``round.won``        — the round's winning CCS message was ordered and
  delivered here (fields carry the synchronizer's identity);
* ``round.suppressed`` — our queued CCS message was withdrawn because
  another replica's proposal beat it to the wire;
* ``round.adopted``    — a recovering replica adopted the group value;
* ``round.complete``   — the group clock value was returned to the
  application (fields carry latency and the recomputed offset).

The tracker subscribes to :data:`repro.trace.TRACER` and merges these
events by ``(node, thread, round)`` key, in whatever order they arrive —
on a slow replica the winner is often ordered *before* the local round
starts (the input-buffer short-circuit of Figure 2, line 11).

Usage::

    from repro.obs import RoundSpanTracker

    with RoundSpanTracker() as tracker:
        ...run a scenario...
    for span in tracker.completed():
        print(span.node, span.round_number, span.latency_us, span.winner)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import trace


@dataclass
class RoundSpan:
    """The lifecycle of one CCS round at one replica."""

    node: str
    thread: str
    round_number: int
    #: Simulated-time bounds (seconds); None until observed.
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: The local proposal and the winning group value (microseconds).
    proposal_us: Optional[int] = None
    group_us: Optional[int] = None
    #: The round's synchronizer (the sender of the winning CCS message).
    winner: Optional[str] = None
    #: my_clock_offset after the round committed (microseconds).
    offset_us: Optional[int] = None
    #: The interposed call that started the round (gettimeofday, ...).
    call: Optional[str] = None
    #: True if our CCS message was handed to Totem.
    sent: bool = False
    #: True if our queued CCS message was withdrawn (duplicate suppression).
    suppressed: bool = False
    #: True if the winner was already buffered when the round started
    #: (no CCS message constructed at all).
    from_buffer: bool = False
    #: True for special recovery rounds (offset adopted mid-recovery).
    adopted: bool = False
    #: Raw constituent events (populated only with ``keep_events=True``).
    events: List[trace.TraceEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def won_locally(self) -> bool:
        """True if this replica was the round's synchronizer."""
        return self.winner == self.node

    @property
    def latency_us(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return (self.completed_at - self.started_at) * 1e6

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "thread": self.thread,
            "round": self.round_number,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "latency_us": self.latency_us,
            "proposal_us": self.proposal_us,
            "group_us": self.group_us,
            "winner": self.winner,
            "won_locally": self.won_locally,
            "offset_us": self.offset_us,
            "call": self.call,
            "sent": self.sent,
            "suppressed": self.suppressed,
            "from_buffer": self.from_buffer,
            "adopted": self.adopted,
        }


SpanKey = Tuple[str, str, int]


class RoundSpanTracker:
    """Builds :class:`RoundSpan` records from the live trace stream."""

    def __init__(self, *, keep_events: bool = False,
                 tracer: Optional[trace.Tracer] = None):
        self.keep_events = keep_events
        self.tracer = tracer or trace.TRACER
        self._open: Dict[SpanKey, RoundSpan] = {}
        self._completed: List[RoundSpan] = []
        self._unsubscribe = None

    # -- lifecycle ------------------------------------------------------

    def attach(self) -> "RoundSpanTracker":
        if self._unsubscribe is None:
            self._unsubscribe = self.tracer.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __enter__(self) -> "RoundSpanTracker":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- reading --------------------------------------------------------

    def completed(self) -> List[RoundSpan]:
        """Spans whose round returned a value to the application."""
        return list(self._completed)

    def open_spans(self) -> List[RoundSpan]:
        """Rounds still in flight (or observed only via delivery)."""
        return list(self._open.values())

    def all_spans(self) -> List[RoundSpan]:
        return self.completed() + self.open_spans()

    def latencies_us(self) -> List[float]:
        return [s.latency_us for s in self._completed
                if s.latency_us is not None]

    def winner_counts(self) -> Dict[str, int]:
        """Rounds decided per synchronizer, over completed spans."""
        counts: Dict[str, int] = {}
        for span in self._completed:
            if span.winner is not None:
                counts[span.winner] = counts.get(span.winner, 0) + 1
        return counts

    # -- event assembly -------------------------------------------------

    def _span(self, event: trace.TraceEvent) -> Optional[RoundSpan]:
        thread = event.fields.get("thread")
        round_number = event.fields.get("round")
        if thread is None or round_number is None:
            return None
        key = (event.node, thread, round_number)
        span = self._open.get(key)
        if span is None:
            span = self._open[key] = RoundSpan(event.node, thread,
                                               round_number)
        return span

    def _on_event(self, event: trace.TraceEvent) -> None:
        if not event.kind.startswith("round."):
            return
        span = self._span(event)
        if span is None:
            return
        if self.keep_events:
            span.events.append(event)
        fields = event.fields
        kind = event.kind
        if kind == "round.start":
            span.started_at = fields.get("t")
            span.proposal_us = fields.get("proposal_us")
            span.call = fields.get("call")
            span.from_buffer = bool(fields.get("buffered"))
        elif kind == "round.sent":
            span.sent = True
        elif kind == "round.won":
            span.winner = fields.get("winner")
            span.group_us = fields.get("group_us")
        elif kind == "round.suppressed":
            span.suppressed = True
        elif kind == "round.adopted":
            span.adopted = True
            span.offset_us = fields.get("offset_us")
        elif kind == "round.complete":
            span.completed_at = fields.get("t")
            if fields.get("group_us") is not None:
                span.group_us = fields.get("group_us")
            span.offset_us = fields.get("offset_us", span.offset_us)
            key = (span.node, span.thread, span.round_number)
            self._open.pop(key, None)
            self._completed.append(span)
