"""The flight recorder: a bounded ring of recent telemetry per node.

Post-mortem debugging of a live cluster needs the *last* few hundred
events, not all of them: when a daemon crashes or the chaos oracle flags
an invariant violation, the interesting state is what the node saw just
before.  The recorder keeps two rings:

* **trace events** — every :mod:`repro.trace` event (round lifecycle,
  cross-node op hops), subscribed like any other sink;
* **wire-frame digests** — one compact record per datagram a live UDP
  port sent or received (direction, peer, payload kind, size, trace id),
  fed by :class:`~repro.net.udp.UdpPort`.

Both rings are ``deque(maxlen=...)``: recording is O(1), memory is
bounded, and the GIL makes appends safe from the client worker threads
that emit ``op.send`` events.  :meth:`FlightRecorder.dump` writes the
rings to a JSON artifact; the daemon dumps on crash and on unhandled
protocol failures, the chaos runner hands the recorder to the
:class:`~repro.chaos.oracle.InvariantOracle` so every violation links to
a dump of the window that explains it.

The process-wide :data:`RECORDER` is disabled by default; hot paths pay
one attribute read (``RECORDER.enabled``) when it is off.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .. import trace


class FlightRecorder:
    """Bounded rings of recent trace events and wire-frame digests."""

    def __init__(self, events_capacity: int = 512,
                 frames_capacity: int = 256):
        self.events_capacity = events_capacity
        self.frames_capacity = frames_capacity
        self._events: deque = deque(maxlen=events_capacity)
        self._frames: deque = deque(maxlen=frames_capacity)
        self._unsubscribe = None
        self.enabled = False
        #: Paths of every artifact written so far (newest last).
        self.dumps: List[str] = []

    # -- lifecycle -------------------------------------------------------

    def start(self, tracer: Optional[trace.Tracer] = None) -> "FlightRecorder":
        """Begin recording (idempotent): subscribe to the tracer and
        accept frame digests."""
        if self._unsubscribe is None:
            self._unsubscribe = (tracer or trace.TRACER).subscribe(
                self._on_event)
        self.enabled = True
        return self

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self.enabled = False

    def reset(self) -> None:
        self._events.clear()
        self._frames.clear()
        self.dumps.clear()

    # -- recording -------------------------------------------------------

    def _on_event(self, event: trace.TraceEvent) -> None:
        record = {"kind": event.kind, "node": event.node,
                  "wall": time.time()}
        record.update(event.fields)
        self._events.append(record)

    def record_frame(self, node: str, direction: str, peer: Any,
                     kind: str, size: int,
                     trace_id: Optional[str] = None) -> None:
        """One wire-frame digest (``direction`` is ``tx`` or ``rx``)."""
        if not self.enabled:
            return
        self._frames.append({
            "node": node, "dir": direction, "peer": str(peer),
            "kind": kind, "size": size, "trace": trace_id,
            "wall": time.time(),
        })

    # -- artifacts -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The rings as JSON-able lists (oldest first)."""
        return {
            "events": list(self._events),
            "frames": list(self._frames),
            "events_capacity": self.events_capacity,
            "frames_capacity": self.frames_capacity,
        }

    def dump(self, path: Union[str, Path], *, reason: str,
             context: Optional[Dict[str, Any]] = None) -> str:
        """Write the recorder window to ``path`` as a JSON artifact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "artifact": "flight-recorder",
            "reason": reason,
            "dumped_at": time.time(),
            "context": context or {},
        }
        artifact.update(self.snapshot())
        path.write_text(json.dumps(artifact, indent=2, default=str) + "\n",
                        encoding="utf-8")
        self.dumps.append(str(path))
        return str(path)


#: The process-wide recorder live ports and daemons feed.
RECORDER = FlightRecorder()
