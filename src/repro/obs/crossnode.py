"""Cross-node causal tracing: trace shards and the span assembler.

One client call to the live stack touches many processes: the caller
(``op.send``), a daemon's client gateway (``op.gateway``), every replica
that executes it (``op.execute``), the time service that hands it a
group-clock value (``op.served``), the CCS round that produced the value
(``round.won``) and the gateway that forwards each reply (``op.reply``
on the daemon, ``op.reply_recv`` on the client).  Each hop stamps its
trace events with the trace id carried in the v3 wire format
(:class:`~repro.trace.TraceContext`), so the per-node event streams can
be re-joined after the fact:

* :class:`TraceShardWriter` — subscribes to a tracer and appends every
  event to one JSONL *shard* per emitting node (the files a daemon
  writes with ``repro serve --trace-dir``, or a chaos run collects in
  its artifacts directory);
* :class:`CrossNodeSpanAssembler` — reads shard records back and
  stitches them into :class:`OpTimeline` objects, one per trace id,
  joining by trace id where it is carried and by replica-independent
  operation identity (``(client_group, conn_id, seq)`` →
  ``(node, request_index)`` → round) where it is not;
* ``python -m repro trace --shards DIR`` renders the result.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from .. import trace
from .export import read_jsonl, trace_event_record

#: Canonical hop order within one operation; cross-process timestamps
#: share no epoch, so ordering is causal (by stage), not temporal.
STAGE_ORDER = (
    "client.send",
    "gateway.dedup",
    "gateway.inject",
    "execute",
    "round.won",
    "served",
    "reply.forward",
    "reply.recv",
)

_SHARD_PREFIX = "trace-"


def _safe_node(node: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", node) or "unknown"


def shard_path(directory: Union[str, Path], node: str) -> Path:
    """The shard file one node's events land in."""
    return Path(directory) / f"{_SHARD_PREFIX}{_safe_node(node)}.jsonl"


class TraceShardWriter:
    """Streams trace events into per-node JSONL shard files.

    Thread-safe: client workers emit ``op.send`` from their own threads
    while the kernel thread emits protocol events.  Files are opened
    lazily (one per node seen) and flushed on :meth:`close`.
    """

    def __init__(self, directory: Union[str, Path],
                 tracer: Optional[trace.Tracer] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._files: Dict[str, IO[str]] = {}
        self._lock = threading.Lock()
        self._unsubscribe = (tracer or trace.TRACER).subscribe(self._on_event)
        self.events_written = 0

    def _on_event(self, event: trace.TraceEvent) -> None:
        record = trace_event_record(event)
        import json

        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            handle = self._files.get(event.node)
            if handle is None:
                handle = open(shard_path(self.directory, event.node), "a",
                              encoding="utf-8")
                self._files[event.node] = handle
            handle.write(line)
            self.events_written += 1

    def shards(self) -> List[Path]:
        with self._lock:
            return sorted(shard_path(self.directory, node)
                          for node in self._files)

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        with self._lock:
            for handle in self._files.values():
                handle.close()
            self._files.clear()

    def __enter__(self) -> "TraceShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_shards(directory: Union[str, Path]) -> List[dict]:
    """Every trace record from every shard file in ``directory``.

    Tolerant of truncated shards (a crashed daemon may have died
    mid-line): malformed lines are skipped, matching
    :func:`~repro.obs.export.read_jsonl`.
    """
    records: List[dict] = []
    for path in sorted(Path(directory).glob(f"{_SHARD_PREFIX}*.jsonl")):
        records.extend(r for r in read_jsonl(path)
                       if r.get("record") == "trace")
    return records


@dataclass
class Hop:
    """One stage of an operation's journey, on one node."""

    stage: str
    node: str
    t: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "node": self.node, "t": self.t,
                **self.detail}


@dataclass
class OpTimeline:
    """One client operation, end to end, across every node it touched."""

    trace_id: str
    client: str = "?"
    method: Optional[str] = None
    #: Replica-independent operation identity (client group, conn, seq).
    op: Optional[Tuple[str, int, int]] = None
    hops: List[Hop] = field(default_factory=list)

    def stages(self) -> List[str]:
        return [hop.stage for hop in self.hops]

    @property
    def complete(self) -> bool:
        """The full acceptance chain was observed: client send → gateway
        inject → replica serve → CCS round won → reply received."""
        seen = set(self.stages())
        return {"client.send", "gateway.inject", "served",
                "round.won", "reply.recv"} <= seen

    @property
    def nodes(self) -> List[str]:
        ordered: List[str] = []
        for hop in self.hops:
            if hop.node not in ordered:
                ordered.append(hop.node)
        return ordered

    def sort(self) -> None:
        rank = {stage: i for i, stage in enumerate(STAGE_ORDER)}
        self.hops.sort(key=lambda hop: (rank.get(hop.stage, len(rank)),
                                        hop.node,
                                        hop.t if hop.t is not None else 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "client": self.client,
            "method": self.method,
            "op": list(self.op) if self.op else None,
            "complete": self.complete,
            "nodes": self.nodes,
            "hops": [hop.to_dict() for hop in self.hops],
        }


class CrossNodeSpanAssembler:
    """Stitches per-node trace records into end-to-end op timelines.

    Joins, in order of preference:

    1. by **trace id** where the event carries one (``op.send``,
       ``op.gateway``, ``op.reply``, ``op.reply_recv``, and
       ``op.execute`` when the baggage propagated);
    2. by **operation identity** ``(client_group, conn_id, seq)`` for
       ``op.execute`` events whose trace did not survive;
    3. by **request index** ``(node, req)`` to bind ``op.served`` (the
       time service knows the request, not the client), and then by
       ``(node, thread, round)`` to bind the round's ``round.won``.
    """

    def __init__(self):
        self._records: List[dict] = []

    def add(self, record: dict) -> None:
        self._records.append(record)

    def add_events(self, records: Iterable[dict]) -> None:
        for record in records:
            self.add(record)

    # -- assembly --------------------------------------------------------

    def assemble(self) -> List[OpTimeline]:
        timelines: Dict[str, OpTimeline] = {}
        op_to_trace: Dict[Tuple[str, int, int], str] = {}
        req_to_trace: Dict[Tuple[str, Any], str] = {}
        round_won: Dict[Tuple[str, Any, Any], dict] = {}

        def timeline(trace_id: str) -> OpTimeline:
            entry = timelines.get(trace_id)
            if entry is None:
                entry = timelines[trace_id] = OpTimeline(trace_id)
            return entry

        def op_key(record: dict) -> Optional[Tuple[str, int, int]]:
            group = record.get("op_group")
            if group is None:
                return None
            return (group, record.get("conn"), record.get("seq"))

        # Pass 1: index round winners; create timelines from traced hops.
        for r in self._records:
            kind = r.get("kind")
            if kind == "round.won":
                round_won[(r.get("node"), r.get("thread"),
                           r.get("round"))] = r
                continue
            if kind == "op.send" and r.get("trace"):
                entry = timeline(r["trace"])
                entry.client = r.get("node", "?")
                entry.method = r.get("method")
                key = op_key(r)
                if key is not None:
                    entry.op = key
                    op_to_trace[key] = r["trace"]
                entry.hops.append(Hop("client.send", r.get("node", "?"),
                                      r.get("t"),
                                      {"method": r.get("method")}))
            elif kind == "op.gateway" and r.get("trace"):
                stage = ("gateway.dedup" if r.get("dedup")
                         else "gateway.inject")
                entry = timeline(r["trace"])
                key = op_key(r)
                if key is not None:
                    entry.op = entry.op or key
                    op_to_trace.setdefault(key, r["trace"])
                entry.hops.append(Hop(stage, r.get("node", "?"), r.get("t")))
            elif kind == "op.reply" and r.get("trace"):
                timeline(r["trace"]).hops.append(
                    Hop("reply.forward", r.get("node", "?"), r.get("t"),
                        {"replica": r.get("replica")}))
            elif kind == "op.reply_recv" and r.get("trace"):
                timeline(r["trace"]).hops.append(
                    Hop("reply.recv", r.get("node", "?"), r.get("t"),
                        {"replies": r.get("replies")}))

        # Pass 2: executions join by trace id or operation identity and
        # publish the (node, request_index) -> trace mapping.
        for r in self._records:
            if r.get("kind") != "op.execute":
                continue
            trace_id = r.get("trace") or op_to_trace.get(op_key(r))
            if trace_id is None:
                continue
            node = r.get("node", "?")
            if r.get("req") is not None:
                req_to_trace[(node, r["req"])] = trace_id
            timeline(trace_id).hops.append(
                Hop("execute", node, r.get("t"),
                    {"req": r.get("req"), "method": r.get("method")}))

        # Pass 3: serves join by request index; each non-fast serve pulls
        # in the CCS round that produced its value.
        for r in self._records:
            if r.get("kind") != "op.served":
                continue
            node = r.get("node", "?")
            trace_id = req_to_trace.get((node, r.get("req")))
            if trace_id is None:
                continue
            entry = timeline(trace_id)
            entry.hops.append(
                Hop("served", node, r.get("t"),
                    {"round": r.get("round"), "fast": r.get("fast"),
                     "group_us": r.get("group_us")}))
            if r.get("round") is not None:
                winner = round_won.get((node, r.get("thread"),
                                        r.get("round")))
                if winner is not None:
                    entry.hops.append(
                        Hop("round.won", node, winner.get("t"),
                            {"round": winner.get("round"),
                             "winner": winner.get("winner"),
                             "group_us": winner.get("group_us")}))

        for entry in timelines.values():
            entry.sort()
        return sorted(timelines.values(), key=lambda t: t.trace_id)


def assemble_timelines(directory: Union[str, Path]) -> List[OpTimeline]:
    """Convenience: load every shard in ``directory`` and assemble."""
    assembler = CrossNodeSpanAssembler()
    assembler.add_events(load_shards(directory))
    return assembler.assemble()
