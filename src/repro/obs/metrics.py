"""Metrics registry: counters, gauges and fixed-bucket histograms.

A Prometheus-flavoured, dependency-free instrument set for the CTS
stack.  Design constraints:

* **Zero-cost when disabled.**  Instruments are created at import time
  (cheap handles on the process-wide :data:`REGISTRY`), but every
  mutator begins with a single ``registry.enabled`` check and returns
  immediately when observability is off — the hot protocol paths pay
  one attribute read and a branch.
* **Simulated time.**  Samples are timestamped with the *virtual* clock
  of the discrete-event kernel: the :class:`~repro.testbed.Testbed`
  binds ``registry.set_clock(lambda: sim.now)`` when it builds a
  cluster, so exported series line up with trace events and the
  latencies the benchmarks report.
* **Labels.**  Every instrument is a family; series are keyed by label
  sets (typically ``node="n2"``), mirroring the per-node tables of the
  paper's evaluation.

Usage::

    from repro.obs import REGISTRY

    ROUNDS = REGISTRY.counter("ccs_rounds_total", "CCS rounds completed")

    with REGISTRY.session():
        ...run a scenario...          # instruments record
    ROUNDS.value(node="n1")           # read back after the run
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ReproError

#: Canonical label-set key: sorted (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(ReproError):
    """Invalid metric registration or update."""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: one named family of labelled series."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", unit: str = ""):
        self.registry = registry
        self.name = name
        self.help = help
        self.unit = unit

    def clear(self) -> None:
        raise NotImplementedError

    def samples(self) -> List[dict]:
        """Flattened per-series records for the exporters."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, registry, name, help="", unit=""):
        super().__init__(registry, name, help, unit)
        #: label key -> [value, last_updated_sim_time]
        self._series: Dict[LabelKey, List[float]] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        registry = self.registry
        if not registry._enabled:
            return
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        entry = self._series.get(key)
        if entry is None:
            entry = self._series[key] = [0.0, 0.0]
        entry[0] += amount
        entry[1] = registry.now()

    def value(self, **labels: Any) -> float:
        entry = self._series.get(_label_key(labels))
        return entry[0] if entry else 0.0

    def total(self) -> float:
        """Sum over every label set."""
        return sum(entry[0] for entry in self._series.values())

    def items(self) -> Iterator[Tuple[Dict[str, str], float]]:
        for key, entry in sorted(self._series.items()):
            yield dict(key), entry[0]

    def clear(self) -> None:
        self._series.clear()

    def samples(self) -> List[dict]:
        return [
            {"name": self.name, "type": self.kind, "labels": dict(key),
             "value": entry[0], "t": entry[1]}
            for key, entry in sorted(self._series.items())
        ]


class Gauge(Metric):
    """A value that can go up and down (e.g. a clock offset)."""

    kind = "gauge"

    def __init__(self, registry, name, help="", unit=""):
        super().__init__(registry, name, help, unit)
        self._series: Dict[LabelKey, List[float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        registry = self.registry
        if not registry._enabled:
            return
        key = _label_key(labels)
        self._series[key] = [float(value), registry.now()]

    def set_max(self, value: float, **labels: Any) -> None:
        """High-watermark update: keep the largest value seen.

        Used for envelope-style series (e.g. the worst inter-shard skew
        observed) where a plain :meth:`set` would let a benign sample
        erase the violation-relevant peak between scrapes.
        """
        registry = self.registry
        if not registry._enabled:
            return
        key = _label_key(labels)
        entry = self._series.get(key)
        if entry is not None and entry[0] >= value:
            return
        self._series[key] = [float(value), registry.now()]

    def add(self, amount: float, **labels: Any) -> None:
        registry = self.registry
        if not registry._enabled:
            return
        key = _label_key(labels)
        entry = self._series.get(key)
        if entry is None:
            entry = self._series[key] = [0.0, 0.0]
        entry[0] += amount
        entry[1] = registry.now()

    def value(self, **labels: Any) -> float:
        entry = self._series.get(_label_key(labels))
        return entry[0] if entry else 0.0

    def items(self) -> Iterator[Tuple[Dict[str, str], float]]:
        for key, entry in sorted(self._series.items()):
            yield dict(key), entry[0]

    def clear(self) -> None:
        self._series.clear()

    def samples(self) -> List[dict]:
        return [
            {"name": self.name, "type": self.kind, "labels": dict(key),
             "value": entry[0], "t": entry[1]}
            for key, entry in sorted(self._series.items())
        ]


@dataclass
class HistogramSnapshot:
    """Read-back view of one histogram series."""

    count: int
    sum: float
    minimum: Optional[float]
    maximum: Optional[float]
    #: Parallel to ``bounds`` plus a final +Inf bucket: per-bucket counts
    #: (NOT cumulative).
    bucket_counts: Tuple[int, ...]
    bounds: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(
            list(self.bounds) + [float("inf")], self.bucket_counts
        ):
            running += count
            out.append((bound, running))
        return out


class _HistSeries:
    __slots__ = ("counts", "sum", "count", "minimum", "maximum", "updated")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.updated = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution (latencies, sizes)."""

    kind = "histogram"

    #: Powers-of-two microsecond-ish ladder; override per instrument.
    DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                       500.0, 1000.0, 2500.0, 5000.0, 10000.0)

    def __init__(self, registry, name, help="", unit="",
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(registry, name, help, unit)
        bounds = tuple(sorted(buckets if buckets is not None
                              else self.DEFAULT_BUCKETS))
        if not bounds:
            raise MetricsError(f"histogram {self.name} needs buckets")
        self.bounds = bounds
        self._series: Dict[LabelKey, _HistSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        registry = self.registry
        if not registry._enabled:
            return
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.bounds) + 1)
        value = float(value)
        series.counts[bisect_left(self.bounds, value)] += 1
        series.sum += value
        series.count += 1
        if series.minimum is None or value < series.minimum:
            series.minimum = value
        if series.maximum is None or value > series.maximum:
            series.maximum = value
        series.updated = registry.now()

    def snapshot(self, **labels: Any) -> HistogramSnapshot:
        series = self._series.get(_label_key(labels))
        if series is None:
            return HistogramSnapshot(0, 0.0, None, None,
                                     (0,) * (len(self.bounds) + 1), self.bounds)
        return HistogramSnapshot(
            series.count, series.sum, series.minimum, series.maximum,
            tuple(series.counts), self.bounds,
        )

    def total_count(self) -> int:
        return sum(series.count for series in self._series.values())

    def items(self) -> Iterator[Tuple[Dict[str, str], HistogramSnapshot]]:
        for key in sorted(self._series):
            yield dict(key), self.snapshot(**dict(key))

    def clear(self) -> None:
        self._series.clear()

    def samples(self) -> List[dict]:
        out = []
        for key in sorted(self._series):
            series = self._series[key]
            snap = self.snapshot(**dict(key))
            out.append({
                "name": self.name, "type": self.kind, "labels": dict(key),
                "count": snap.count, "sum": snap.sum,
                "min": snap.minimum, "max": snap.maximum,
                "buckets": [[b, c] for b, c in snap.cumulative()],
                "t": series.updated,
            })
        return out


class MetricsRegistry:
    """The process-wide instrument collection.

    Disabled by default; :meth:`enable` / :meth:`session` turn recording
    on.  Instruments survive across sessions (they are module-level
    handles); :meth:`reset` clears recorded series without forgetting
    the registrations.
    """

    def __init__(self):
        self._enabled = False
        self._clock: Optional[Callable[[], float]] = None
        self._metrics: Dict[str, Metric] = {}

    # -- lifecycle ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, clock: Optional[Callable[[], float]] = None) -> None:
        if clock is not None:
            self._clock = clock
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the (simulated) time source used to stamp samples."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def reset(self) -> None:
        """Clear all recorded series (registrations are kept)."""
        for metric in self._metrics.values():
            metric.clear()

    @contextmanager
    def session(
        self, clock: Optional[Callable[[], float]] = None
    ) -> Iterator["MetricsRegistry"]:
        """Record within a ``with`` block: reset, enable, then disable.

        Recorded series stay readable after the block exits.
        """
        self.reset()
        self.enable(clock)
        try:
            yield self
        finally:
            self.disable()

    # -- registration ---------------------------------------------------

    def _register(self, cls, name: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricsError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(self, name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._register(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._register(Gauge, name, help=help, unit=unit)

    def histogram(self, name: str, help: str = "", unit: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(Histogram, name, help=help, unit=unit,
                              buckets=buckets)

    # -- reading --------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def collect(self) -> List[dict]:
        """Every series of every instrument, flattened for export."""
        out: List[dict] = []
        for metric in self.metrics():
            out.extend(metric.samples())
        return out


#: The process-wide registry the protocol layers record into.
REGISTRY = MetricsRegistry()
