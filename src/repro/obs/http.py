"""A tiny asyncio HTTP endpoint exposing the metrics registry.

Runs on the daemon's own event loop (``repro serve --metrics-port``), so
a real Prometheus can scrape a live node without any extra thread or
dependency.  Deliberately minimal: GET-only, one connection at a time
per reader task, no keep-alive.

Routes:

* ``/metrics`` — Prometheus text exposition of the registry;
* ``/metrics.json`` — the same samples as a JSON array;
* ``/healthz`` — liveness probe (``ok``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from .export import prometheus_text
from .metrics import REGISTRY, MetricsRegistry

_MAX_REQUEST_BYTES = 8192
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHttpServer:
    """Serves the registry over HTTP from an asyncio loop."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 registry: Optional[MetricsRegistry] = None):
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else REGISTRY
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    @property
    def bound_port(self) -> Optional[int]:
        """The actual listening port (useful when configured with 0)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "MetricsHttpServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        try:
            parts = request.decode("latin-1").split()
            method, path = (parts[0], parts[1]) if len(parts) >= 2 else ("", "")
            # Drain (and ignore) the header block, bounded.
            drained = 0
            while drained < _MAX_REQUEST_BYTES:
                line = await reader.readline()
                drained += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._route(method, path)
            payload = body.encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1"))
            writer.write(payload)
            await writer.drain()
            self.requests_served += 1
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def _route(self, method: str, path: str):
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", "method not allowed\n"
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return "200 OK", _PROM_CONTENT_TYPE, prometheus_text(self.registry)
        if path == "/metrics.json":
            samples = list(self.registry.collect())
            return ("200 OK", "application/json",
                    json.dumps(samples, default=str) + "\n")
        if path == "/healthz":
            return "200 OK", "text/plain", "ok\n"
        return "404 Not Found", "text/plain", "not found\n"
