"""Observability for the CTS stack: metrics, round spans, exporters.

The subsystem has three parts (see ``docs/observability.md`` for the
full catalogue):

* :mod:`repro.obs.metrics` — the process-wide :data:`REGISTRY` of
  counters, gauges and fixed-bucket histograms.  Zero-cost when
  disabled; samples are stamped with *simulated* time.
* :mod:`repro.obs.spans` — :class:`RoundSpanTracker`, which assembles a
  per-round lifecycle record for every CCS round from the trace stream.
* :mod:`repro.obs.export` — JSONL dumps, Prometheus text exposition and
  human-readable summary tables.
* :mod:`repro.obs.crossnode` — per-node trace shards and the
  :class:`CrossNodeSpanAssembler` that stitches them into end-to-end op
  timelines across the live stack.
* :mod:`repro.obs.flight` — the bounded :class:`FlightRecorder` ring
  dumped on daemon crash or invariant violation.
* :mod:`repro.obs.http` — :class:`MetricsHttpServer`, the scrape
  endpoint behind ``repro serve --metrics-port``.

Quick start::

    from repro import obs

    with obs.REGISTRY.session(), obs.RoundSpanTracker() as spans:
        ...run a scenario...
    print(obs.export.summary_table(obs.REGISTRY))
    sent = obs.REGISTRY.get("ccs_sent_total").total()
"""

from . import export
from .crossnode import (
    CrossNodeSpanAssembler,
    Hop,
    OpTimeline,
    TraceShardWriter,
    assemble_timelines,
    load_shards,
)
from .flight import RECORDER, FlightRecorder
from .http import MetricsHttpServer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsError,
    MetricsRegistry,
    REGISTRY,
)
from .spans import RoundSpan, RoundSpanTracker

__all__ = [
    "Counter",
    "CrossNodeSpanAssembler",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Hop",
    "MetricsError",
    "MetricsHttpServer",
    "MetricsRegistry",
    "OpTimeline",
    "RECORDER",
    "REGISTRY",
    "RoundSpan",
    "RoundSpanTracker",
    "TraceShardWriter",
    "assemble_timelines",
    "export",
    "load_shards",
]
