"""Chaos engineering for the live runtime.

The paper's claim is that the group clock stays consistent and monotone
*across replica failures and recoveries*.  This package makes that claim
testable against real sockets, reproducibly:

* :mod:`repro.chaos.transport` — :class:`ChaosTransport`, a decorator
  over the :class:`repro.net.transport.Transport` contract that injects
  deterministic, seeded packet loss, delay, jitter, duplication,
  reordering and directional partitions per peer pair;
* :mod:`repro.chaos.scenario` — the scenario-file DSL (a small YAML
  subset, JSON also accepted) compiled into the
  :class:`repro.sim.faults.FaultPlan` event schedule, plus the
  byte-identical schedule hash that pins reproducibility;
* :mod:`repro.chaos.oracle` — the always-on invariant oracle that tails
  replies and telemetry during a run and checks the paper's guarantees
  online (per-client monotonicity, cross-replica agreement per round,
  bounded staleness, offset re-derivation after failover);
* :mod:`repro.chaos.byzantine` — replicas that *lie* instead of
  crashing: seeded ``lie``/``equivocate`` wire perturbation and the
  ``corrupt-state`` scrambler exercised by the authenticated Byzantine
  mode (``auth: true`` in a scenario);
* :mod:`repro.chaos.runner` — the ``python -m repro chaos`` harness: a
  live cluster on loopback UDP under a scenario, gateway clients
  hammering it, the oracle watching, a JSON verdict out.
"""

from .byzantine import ByzantineRules, corrupt_time_state
from .oracle import InvariantOracle, Violation
from .scenario import ChaosScenario, compile_plan, load_scenario
from .transport import ChaosTransport
from .runner import run_chaos

__all__ = [
    "ByzantineRules",
    "ChaosScenario",
    "ChaosTransport",
    "InvariantOracle",
    "Violation",
    "compile_plan",
    "corrupt_time_state",
    "load_scenario",
    "run_chaos",
]
