"""Byzantine fault injection: replicas that *lie* instead of crashing.

The rest of the chaos subsystem injects crash/omission faults — frames
are dropped, delayed, duplicated, or the node stops.  This module makes
a chosen replica actively adversarial at the wire boundary:

* **lie** — every CCS proposal the node transmits carries a fixed bias
  added to ``proposed_micros`` (the same wrong value to every receiver,
  including the node's own loopback leg, so the liar stays internally
  consistent with what it said);
* **equivocate** — the bias differs per *destination*, derived
  deterministically from the seed and the ``(src, dst)`` pair, so
  different receivers are told different values for the same totally
  ordered message slot;
* **corrupt-state** — :func:`corrupt_time_state` scrambles a replica's
  *local* protocol state in place (clock offset, round counters,
  duplicate-detection watermarks, the fast-path floor), modelling a
  transient memory fault the self-stabilization path must repair.

Perturbation happens in :class:`~repro.chaos.transport.ChaosTransport`'s
send path, before the fault decision procedure, and descends through the
nested payload (``RegularMessage`` → ``Envelope`` → ``CCSMessage``)
returning replaced *copies* — every protocol dataclass is frozen and
shared, so in-place mutation would corrupt the sender's own buffers.

Everything is seeded: the per-destination equivocation bias is a pure
function of ``(seed, src, dst)``, and the state scrambling draws from
the caller's ``random.Random`` — two runs with the same seed inject
byte-identical lies.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Dict

from ..core.messages import CCSMessage
from ..replication.envelope import Envelope
from ..totem.messages import RegularMessage


class ByzantineRules:
    """Per-node lie/equivocation rules applied on the send side."""

    def __init__(self, *, seed: int = 0):
        self.seed = seed
        #: src -> fixed bias added to every CCS proposal (us).
        self._lies: Dict[str, int] = {}
        #: src -> equivocation spread (us); per-dst bias derived from it.
        self._equivocations: Dict[str, int] = {}
        #: Injection tally for verdicts and tests.
        self.frames_perturbed = 0

    # -- rule control (driven by an armed FaultPlan) --------------------

    def set_lie(self, node_id: str, bias_us: int) -> None:
        """From now on, ``node_id`` adds ``bias_us`` to every CCS
        proposal it transmits (0 stops the lying)."""
        if bias_us:
            self._lies[node_id] = int(bias_us)
        else:
            self._lies.pop(node_id, None)

    def set_equivocate(self, node_id: str, spread_us: int) -> None:
        """From now on, ``node_id`` tells each receiver a different
        value: destination ``dst`` sees the proposal raised by a
        deterministic amount in ``[spread/2, 3*spread/2)`` derived from
        ``(seed, node_id, dst)`` (0 stops the equivocation)."""
        if spread_us:
            self._equivocations[node_id] = int(spread_us)
        else:
            self._equivocations.pop(node_id, None)

    def clear(self) -> None:
        self._lies.clear()
        self._equivocations.clear()

    @property
    def faulty_nodes(self) -> frozenset:
        """Nodes with an active lie or equivocation rule."""
        return frozenset(self._lies) | frozenset(self._equivocations)

    # -- the perturbation -----------------------------------------------

    def bias_for(self, src: str, dst: str) -> int:
        """The total bias ``src`` applies when talking to ``dst``."""
        bias = self._lies.get(src, 0)
        spread = self._equivocations.get(src)
        if spread:
            digest = hashlib.sha256(
                f"{self.seed}|{src}|{dst}".encode("utf-8")).digest()
            frac = int.from_bytes(digest[:4], "little") / 2 ** 32
            bias += int(spread * (0.5 + frac))
        return bias

    def perturb(self, src: str, dst: str, payload: Any) -> Any:
        """Return ``payload`` with any nested CCS proposal biased for
        this ``(src, dst)`` leg; the original objects are never touched."""
        bias = self.bias_for(src, dst)
        if not bias:
            return payload
        perturbed = _bias_ccs(payload, bias)
        if perturbed is not payload:
            self.frames_perturbed += 1
        return perturbed


def _bias_ccs(payload: Any, bias_us: int) -> Any:
    """Rebuild ``payload`` with every nested CCSMessage biased; returns
    the original object when there is nothing to perturb."""
    if isinstance(payload, Envelope) and isinstance(payload.body, CCSMessage):
        body = replace(
            payload.body,
            proposed_micros=payload.body.proposed_micros + bias_us)
        return replace(payload, body=body)
    if isinstance(payload, RegularMessage):
        inner = _bias_ccs(payload.payload, bias_us)
        if inner is not payload.payload:
            return replace(payload, payload=inner)
    return payload


def corrupt_time_state(service, rng) -> Dict[str, int]:
    """Scramble one replica's consistent-time-service state in place.

    Models a transient fault (bit flips, a bad restore) hitting exactly
    the state the self-stabilization path claims to repair: the clock
    offset, the per-thread round counters, the duplicate-detection
    watermarks, and the fast-path floor.  The commit ``history`` is left
    alone — it is the audit trail the invariant oracle re-derives
    offsets from, not live protocol state.

    Returns what was scrambled (for the chaos verdict).  Draws only from
    ``rng``, so a seeded schedule corrupts identically across runs.
    """
    state = getattr(service, "clock_state", None)
    if state is None:
        return {}  # baseline time source; nothing to corrupt
    details: Dict[str, int] = {}
    # An offset wrong by about an hour: every proposal and fast read fed
    # by it is implausible against the certified window.
    offset_bump = rng.randrange(3_600_000_000, 7_200_000_000)
    state.offset_us += offset_bump
    details["offset_bump_us"] = offset_bump
    # A fast floor far above anything a real round produced.
    anchor = state.last_group_us or 0
    floor_bump = rng.randrange(3_600_000_000, 7_200_000_000)
    state.fast_floor_us = anchor + floor_bump
    details["fast_floor_bump_us"] = floor_bump
    # Round counters and watermarks jumped far ahead of live traffic.
    round_bump = rng.randrange(1_000_000, 2_000_000)
    for handler in service._handlers.values():
        handler.my_round_number += round_bump
    for thread_id in list(service._accepted):
        service._accepted[thread_id] += round_bump
    details["round_bump"] = round_bump
    return details
