"""The ``python -m repro chaos`` harness.

Runs one scenario end to end, in process but over real sockets:

1. boot a :class:`~repro.net.testbed.LiveTestbed` whose UDP transport is
   wrapped in a seeded :class:`~repro.chaos.transport.ChaosTransport`;
2. deploy the daemon's :class:`~repro.net.daemon.TimeApp` on every node
   (active replication, CTS time source, fast path on so the staleness
   invariant is exercised) and interpose a
   :class:`~repro.net.daemon.ClientGateway` on each, exactly as
   ``repro serve`` does — crash/recover of a node is therefore the
   in-process equivalent of stopping and restarting a daemon;
3. compile the scenario into a :class:`~repro.sim.faults.FaultPlan`, arm
   it, and — for every ``recover`` event — schedule the daemon-restart
   half (gateway re-interposition + replica re-add via state transfer)
   in the same kernel tick, so no client frame can reach a bare Totem
   receiver;
4. hammer the cluster from threaded :class:`~repro.net.client.LiveCaller`
   gateway clients riding the session floor (``after_us``), feeding
   every reply to the :class:`~repro.chaos.oracle.InvariantOracle`;
5. emit a JSON-able verdict: the seeded schedule and its hash, injection
   and client tallies, and the oracle's judgement.

Everything that varies is pinned by ``--seed``: the testbed's clock
spread, the transport's per-pair fault streams, and the fault schedule
itself (hashed into the verdict, regression-tested byte-identical).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from .. import trace
from ..control.plane import ControlPlane
from ..errors import RpcTimeout
from ..net.client import LiveCaller
from ..net.daemon import ClientGateway, TimeApp
from ..net.testbed import LiveTestbed
from ..obs import flight
from ..obs.crossnode import CrossNodeSpanAssembler, TraceShardWriter, load_shards
from ..replication.envelope import Envelope
from .oracle import InvariantOracle
from .scenario import ChaosScenario, compile_plan

GROUP = "timesvc"


class _ChaosClient:
    """One threaded gateway client feeding the oracle."""

    def __init__(self, index: int, servers, oracle: InvariantOracle,
                 stop: threading.Event, *, timeout: float = 1.5):
        self.client_id = f"chaos{index}"
        self.caller = LiveCaller(servers, client_id=self.client_id)
        self.oracle = oracle
        self.stop = stop
        self.timeout = timeout
        self.calls = 0
        self.errors = 0
        self.thread = threading.Thread(
            target=self._run, name=self.client_id, daemon=True)

    def _run(self) -> None:
        last_us: Optional[int] = None
        while not self.stop.is_set():
            started = time.monotonic()
            self.calls += 1
            try:
                outcome = self.caller.call("gettimeofday", last_us,
                                           timeout=self.timeout)
            except RpcTimeout:
                self.errors += 1
                continue
            finished = time.monotonic()
            result = outcome.first()
            if not result.ok:
                self.errors += 1
                continue
            value_us = result.value["micros"]
            self.oracle.observe_reply(
                self.client_id, value_us,
                wall_s=finished, rtt_s=finished - started,
                trace_id=outcome.trace_id)
            last_us = value_us
            time.sleep(0.005)  # ~100 req/s per client is plenty of load

    def close(self) -> None:
        self.caller.close()


def _install_gateway(bed: LiveTestbed, node_id: str,
                     gateways: list) -> None:
    """Interpose a client gateway in front of the node's Totem receiver
    (the NodeDaemon dispatch, applied to an in-process testbed node).
    A recovered node gets a fresh gateway (daemon restart semantics);
    the old one stays in ``gateways`` so its tallies survive."""
    node = bed.node(node_id)
    totem_receiver = node._receiver
    gateway = ClientGateway(bed.runtimes[node_id], node.iface,
                            node_id=node_id)
    gateways.append(gateway)

    def dispatch(frame) -> None:
        if isinstance(frame.payload, Envelope):
            gateway.handle(frame)
        else:
            totem_receiver(frame)

    node.set_receiver(dispatch)


def run_chaos(
    scenario: ChaosScenario,
    *,
    seed: int = 0,
    duration_s: Optional[float] = None,
    clients: Optional[int] = None,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
    artifacts_dir: Optional[str] = None,
) -> Dict:
    """Run one chaos scenario; return the JSON-able verdict.

    With ``artifacts_dir`` set, the run also writes per-node trace
    shards (``trace-*.jsonl``), keeps the flight recorder running (every
    oracle violation dumps its window as ``flight-violation-*.json``),
    and the verdict gains a ``trace`` section with the assembled
    cross-node op timelines.
    """
    duration = duration_s if duration_s is not None else scenario.duration_s
    n_clients = clients if clients is not None else scenario.clients
    plan = compile_plan(scenario)
    shard_writer: Optional[TraceShardWriter] = None
    recorder = None
    if artifacts_dir is not None:
        # Stale contexts from an earlier in-process run must not bleed
        # into this run's timelines.
        trace.BAGGAGE.clear()
        shard_writer = TraceShardWriter(artifacts_dir)
        recorder = flight.RECORDER.start()
        recorder.reset()
    oracle = InvariantOracle(staleness_budget_us=max_staleness_us,
                             flight_recorder=recorder,
                             dump_dir=artifacts_dir)
    gateways: list = []

    byzantine = scenario.auth
    bed = LiveTestbed(node_ids=scenario.node_ids, seed=seed,
                      chaos_seed=seed,
                      auth_secret=f"chaos-{seed}" if byzantine else None)
    try:
        bed.deploy(GROUP, TimeApp, nodes=scenario.node_ids,
                   style="active", time_source="cts",
                   fast_path=fast_path, max_staleness_us=max_staleness_us,
                   byzantine=byzantine)
        bed.start()
        for node_id in scenario.node_ids:
            _install_gateway(bed, node_id, gateways)
        oracle.attach()
        # A replica scripted to lie or equivocate is Byzantine for the
        # whole run: the oracle judges agreement among the others.
        for event in plan.schedule():
            if event.kind in ("lie", "equivocate"):
                oracle.mark_faulty(event.target[0])

        # Control plane behind the scenario's drain/join events.  A join
        # that first recovers a crashed node rebuilds its runtime, so the
        # gateway is re-interposed and the oracle told, exactly as for a
        # scripted recover.
        def _node_ready(node_id: str) -> None:
            oracle.note_recovery(node_id)
            _install_gateway(bed, node_id, gateways)

        plane = ControlPlane(bed, group=GROUP, app_factory=TimeApp,
                             on_node_ready=_node_ready,
                             style="active", time_source="cts",
                             fast_path=fast_path,
                             max_staleness_us=max_staleness_us,
                             byzantine=byzantine)
        def _drain(node_id: str) -> bool:
            oracle.note_reconfig(node_id)
            return plane.drain_async(node_id)

        def _join(node_id: str) -> bool:
            oracle.note_reconfig(node_id)
            return plane.join_async(node_id)

        bed.control_drain = _drain
        bed.control_join = _join

        plan.arm(bed)
        # The daemon-restart half of every recover event: re-add the
        # replica (state transfer) and re-interpose the gateway on the
        # rebuilt runtime.  Scheduled *after* arming at the same event
        # time, so it runs in the same kernel tick as bed.recover().
        def _restart(node_id: str) -> None:
            oracle.note_recovery(node_id)
            _install_gateway(bed, node_id, gateways)
            bed.add_replica(GROUP, node_id, TimeApp,
                            style="active", time_source="cts",
                            fast_path=fast_path,
                            max_staleness_us=max_staleness_us,
                            byzantine=byzantine)

        for event in plan.schedule():
            if event.kind == "recover":
                bed.sim.schedule(event.at_s, _restart, event.target[0])
            elif event.kind == "corrupt-state":
                # The plan's injection (same tick, armed first) scrambles
                # the state; this opens the oracle's repair window.
                bed.sim.schedule(event.at_s, oracle.note_corruption,
                                 event.target[0])

        servers = [bed.node(node_id).address
                   for node_id in scenario.node_ids]
        stop = threading.Event()
        workers = [_ChaosClient(i, servers, oracle, stop)
                   for i in range(n_clients)]
        for worker in workers:
            worker.thread.start()

        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            bed.run(0.05)
        grace = time.monotonic() + 10.0
        while not plan.done and time.monotonic() < grace:
            bed.run(0.05)
        stop.set()
        for worker in workers:
            worker.thread.join(timeout=self_timeout(worker))
        bed.run(0.2)  # let in-flight replies drain before judging
        oracle.finish(bed, group=GROUP)

        calls = sum(w.calls for w in workers)
        errors = sum(w.errors for w in workers)
        retries = sum(w.caller.stats.retries for w in workers)
        verdict = {
            "scenario": scenario.name,
            "seed": seed,
            "nodes": list(scenario.node_ids),
            "duration_s": duration,
            "schedule_hash": plan.schedule_hash(),
            "schedule": [event.canonical() for event in plan.schedule()],
            "faults_injected": len(plan.injected),
            "faults_pending": len(plan.events) - len(plan.injected),
            "chaos": {
                "frames_dropped": bed.chaos.frames_dropped,
                "frames_delayed": bed.chaos.frames_delayed,
                "frames_duplicated": bed.chaos.frames_duplicated,
                "frames_blocked": bed.chaos.frames_blocked,
                "frames_perturbed": bed.chaos.frames_perturbed,
            },
            "byzantine": {
                "enabled": byzantine,
                "frames_signed": (
                    bed.auth.frames_signed if bed.auth else 0),
                "frames_verified": (
                    bed.auth.frames_verified if bed.auth else 0),
                "winners_rejected": sum(
                    getattr(getattr(r.time_source, "stats", None),
                            "winners_rejected", 0)
                    for r in bed.replicas(GROUP).values()),
                "stabilizations": sum(
                    getattr(getattr(r.time_source, "stats", None),
                            "stabilizations", 0)
                    for r in bed.replicas(GROUP).values()),
            },
            "clients": {
                "count": n_clients,
                "calls": calls,
                "errors": errors,
                "retries": retries,
                "breaker_skips": sum(
                    w.caller.stats.breaker_skips for w in workers),
                "error_rate": (errors / calls) if calls else 1.0,
            },
            "gateway": {
                "requests_injected": sum(
                    g.requests_injected for g in gateways),
                "requests_deduplicated": sum(
                    g.requests_deduplicated for g in gateways),
                "replies_replayed": sum(
                    g.replies_replayed for g in gateways),
            },
            "reconfig": list(plane.log),
            "oracle": oracle.report(),
        }
        verdict["ok"] = (oracle.ok
                         and plan.done
                         and oracle.replies_checked > 0)
        if shard_writer is not None:
            shard_writer.close()
            shard_writer = None
            verdict["trace"] = _trace_section(artifacts_dir)
            verdict["flight_dumps"] = list(recorder.dumps)
        for worker in workers:
            worker.close()
        return verdict
    finally:
        oracle.detach()
        if shard_writer is not None:
            shard_writer.close()
        if recorder is not None:
            recorder.stop()
        bed.shutdown()


def _trace_section(artifacts_dir: str) -> Dict:
    """Assemble the run's shards into the verdict's ``trace`` section."""
    assembler = CrossNodeSpanAssembler()
    records = load_shards(artifacts_dir)
    assembler.add_events(records)
    timelines = assembler.assemble()
    complete = [t for t in timelines if t.complete]
    example = None
    if complete:
        # One fully-stitched end-to-end timeline, spelled out: the
        # acceptance artifact reviewers (and CI) look at first.
        example = complete[0].to_dict()
    return {
        "shard_dir": artifacts_dir,
        "records": len(records),
        "timelines": len(timelines),
        "complete": len(complete),
        "example": example,
    }


def self_timeout(worker: _ChaosClient) -> float:
    """A worker blocked in one last call returns within its call timeout
    plus scheduling slack."""
    return worker.timeout + 2.0
