"""The invariant oracle: online checking of the paper's guarantees.

During a chaos run the oracle watches two streams — client-visible
replies (fed by the workload) and the ``round.complete`` telemetry
(subscribed from :mod:`repro.trace`) — and checks, *while faults are
being injected*:

* **Per-client monotonicity** — every client's observed group-clock
  values are strictly increasing, across retries, replica crashes and
  failovers (the paper's Property 1, extended to the session floor).
* **Cross-replica agreement per round** — all replicas that complete a
  CCS round ``(thread, round)`` commit the identical group value
  (Property 2: the round's winner is totally ordered, so every replica
  derives the same group clock).
* **Bounded staleness** — successive values a client sees advance at
  wall-clock rate, within a slack of the configured staleness budget,
  the two calls' own latencies, and a drift allowance; the fast path
  must never serve a value staler than ``max_staleness_us``.
* **Offset re-derivation** — after the run, every live replica's commit
  history satisfies the paper's defining identity
  ``offset = group − physical`` exactly, and every replica that was
  recovered mid-run completed at least one round afterwards (its clock
  offset was re-derived from the special integration round rather than
  inherited stale).

In Byzantine runs the guarantees are judged among the *correct*
replicas only: :meth:`InvariantOracle.mark_faulty` excludes a liar's
commits from the agreement check entirely (f < n/3 faulty tolerated),
and :meth:`InvariantOracle.note_corruption` opens a bounded repair
window for a correct replica whose state was scrambled — agreement is
re-enforced once the window closes, and a replica that never completes
a round beyond it is flagged as failing to self-stabilize.

Violations carry the offending transcript; the oracle never raises
mid-run, so one broken invariant cannot mask later ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import trace


@dataclass
class Violation:
    """One broken invariant, with enough transcript to debug it."""

    check: str          # monotonicity|agreement|staleness|offset|recovery
    subject: str        # client id or node id
    detail: str
    transcript: List[Any] = field(default_factory=list)
    #: Trace ids of the operations around the violation (the subject's
    #: recent calls first, then other recent traffic) — join keys into
    #: the cross-node timelines of :mod:`repro.obs.crossnode`.
    trace_ids: List[str] = field(default_factory=list)
    #: Flight-recorder artifact dumped when the violation was flagged.
    flight_dump: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "subject": self.subject,
            "detail": self.detail,
            "transcript": [repr(entry) for entry in self.transcript[-16:]],
            "trace_ids": list(self.trace_ids),
            "flight_dump": self.flight_dump,
        }


class InvariantOracle:
    """Tails replies and telemetry during a chaos run; judges at the end.

    Wire-up::

        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.attach()                       # subscribes to trace
        ...
        oracle.observe_reply("c0", value_us, wall_s=t, rtt_s=dt)
        oracle.note_recovery("n2")
        ...
        oracle.finish(bed, group="timesvc")   # post-run history checks
        assert oracle.ok, oracle.violations
    """

    def __init__(self, *, staleness_budget_us: int = 2_000,
                 drift_ppm: float = 200.0,
                 max_transient_lag_us: int = 1_000_000,
                 flight_recorder=None,
                 dump_dir: Optional[str] = None):
        self.staleness_budget_us = staleness_budget_us
        self.drift_ppm = drift_ppm
        #: Staleness debt (lag behind the anchor mapping) the service
        #: may carry *transiently* — reconfiguration stalls rounds, and
        #: a consistency-first service answers queued operations with
        #: agreed-but-stale time until the backlog drains.  Debt beyond
        #: this flags immediately; smaller debt must still be repaid by
        #: the end of the run (checked in :meth:`finish`).
        self.max_transient_lag_us = max_transient_lag_us
        #: When both are set, every violation dumps the recorder's window
        #: to ``dump_dir`` and carries the artifact path.
        self.flight_recorder = flight_recorder
        self.dump_dir = dump_dir
        self.violations: List[Violation] = []
        #: client -> trace ids of its recent calls (newest last).
        self._traces: Dict[str, List[str]] = {}
        #: Trace ids of the most recent calls across all clients.
        self._recent_traces: List[str] = []
        #: client -> (last value_us, last wall_s, last rtt_s)
        self._last: Dict[str, Tuple[int, float, float]] = {}
        #: client -> rolling reply transcript (value, wall, rtt)
        self._replies: Dict[str, List[Tuple[int, float, float]]] = {}
        self.replies_checked = 0
        #: (thread, round) -> (group_us, first node to commit it)
        self._rounds: Dict[Tuple[str, int], Tuple[int, str]] = {}
        self.rounds_checked = 0
        #: node -> rounds completed (split by recovery marks)
        self._rounds_by_node: Dict[str, int] = {}
        self._recovered: Dict[str, int] = {}  # node -> rounds at recovery
        #: Byzantine replicas: their commits are excluded from the
        #: agreement check entirely — with f < n/3 faulty the guarantees
        #: hold among the correct replicas only.
        self._faulty: set = set()
        #: node -> (rounds at corruption, allowed repair rounds).  While
        #: a corrupted-but-correct replica is inside its repair window
        #: its commits are excluded; afterwards agreement is re-enforced.
        self._corrupted: Dict[str, Tuple[int, int]] = {}
        #: client -> shard that served its last reply (sharded runs).
        self._shard_of: Dict[str, Any] = {}
        #: shard (None = whole group) -> (best observed value-to-wall
        #: offset in us, wall_s when it was set).  Service time may
        #: *catch back up* to this mapping after lagging through an
        #: outage, but may never run ahead of it.
        self._offset_anchor: Dict[Any, Tuple[float, float]] = {}
        #: fast advances exempted as catch-up to the anchor (counted,
        #: not judged).
        self.catchups_allowed = 0
        #: fast advances beyond the anchor tolerated because a
        #: reconfiguration was on record (bounded by the transient lag).
        self.overshoots_tolerated = 0
        #: shard -> (subject, worst debt us, wall_s, transcript) for a
        #: transient lag that has not yet been repaid.
        self._stall_debt: Dict[Any, Tuple[str, float, float, list]] = {}
        self.stalls_tolerated = 0
        #: Reconfigurations (join/drain/restart) the harness told us
        #: about.  Each membership change stalls rounds, and the lost
        #: time is never recouped — group time continues from the
        #: agreed value, so the value-to-wall mapping legitimately
        #: shifts down by up to the stall length.  With reconfigs on
        #: record, open debt below the transient bound is accepted at
        #: :meth:`finish`; without any, it flags.
        self.reconfigs_noted = 0
        self.migrations_checked = 0
        self.shard_summaries_checked = 0
        self.shard_resyncs = 0
        self._unsubscribe = None

    # -- lifecycle -------------------------------------------------------

    def attach(self):
        """Subscribe to telemetry (enables the tracer if it was off)."""
        if self._unsubscribe is None:
            self._unsubscribe = trace.subscribe(self._on_trace)
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- online checks ---------------------------------------------------

    def observe_reply(self, client_id: str, value_us: int, *,
                      wall_s: float, rtt_s: float = 0.0,
                      trace_id: Optional[str] = None,
                      shard: Optional[Any] = None,
                      rate_slack_us: float = 0.0) -> None:
        """Feed one successful client call (reply received at ``wall_s``
        on the monotonic clock, after ``rtt_s`` seconds in flight).
        ``trace_id`` links the reply to its cross-node timeline.

        ``shard`` identifies which shard served the reply (sharded
        runs).  A shard change is a **migration**: strict monotonicity
        is still enforced — that is exactly the cross-shard guarantee
        the session floor provides — but the staleness/rate check is
        reset, because the destination group's clock legitimately sits
        up to the inter-shard skew away from the source's (and the
        floor ramp may stall the first reply).

        ``rate_slack_us`` widens the staleness/rate window — sharded
        runs pass the overlay's hop bound here, because gradient
        steering legitimately advances a trailing shard's clock faster
        than wall time while it converges on a neighbor."""
        if trace_id is not None:
            traces = self._traces.setdefault(client_id, [])
            traces.append(trace_id)
            del traces[:-8]
            self._recent_traces.append(trace_id)
            del self._recent_traces[:-16]
        log = self._replies.setdefault(client_id, [])
        log.append((value_us, wall_s, rtt_s))
        if len(log) > 64:
            del log[:-64]
        self.replies_checked += 1
        prev = self._last.get(client_id)
        self._last[client_id] = (value_us, wall_s, rtt_s)
        prev_shard = self._shard_of.get(client_id)
        if shard is not None:
            self._shard_of[client_id] = shard
        migrated = (shard is not None and prev_shard is not None
                    and shard != prev_shard)
        if prev is None:
            self._raise_anchor(shard, value_us, wall_s, rtt_s)
            return
        prev_value, prev_wall, prev_rtt = prev
        if migrated:
            self.migrations_checked += 1
            if value_us <= prev_value:
                self._flag("migration", client_id,
                           f"migrating {prev_shard} -> {shard} went "
                           f"{prev_value} -> {value_us} (the carried "
                           f"session floor must keep values strictly "
                           f"increasing across shards)",
                           list(log))
            self._raise_anchor(shard, value_us, wall_s, rtt_s)
            return  # rate baseline resets across shards
        if value_us <= prev_value:
            self._flag("monotonicity", client_id,
                       f"value went {prev_value} -> {value_us} "
                       f"(must be strictly increasing)",
                       list(log))
            return
        # Staleness/rate bound.  Each value was generated somewhere inside
        # its call window, so the generation gap differs from the
        # reply-to-reply wall gap by at most the two calls' latencies;
        # beyond that, only the staleness budget (fast path may serve a
        # value up to budget old) and clock drift separate value time from
        # wall time.
        dv_us = value_us - prev_value
        dw_us = (wall_s - prev_wall) * 1e6
        slack_us = (self.staleness_budget_us
                    + rate_slack_us
                    + (rtt_s + prev_rtt) * 1e6
                    + abs(dw_us) * self.drift_ppm * 1e-6
                    + 1_000.0)  # floor for scheduling noise
        if dv_us > dw_us + slack_us:
            # A fast advance that merely restores the best previously
            # observed value-to-wall mapping is the service *catching
            # up* after lagging through an outage (membership churn
            # stalls rounds, so served values fall behind wall, then
            # the first post-reformation round snaps time back to
            # real).  Monotone and converging-to-true-time is the
            # contract; only running ahead of the known mapping is a
            # violation.
            if self._is_catchup(shard, value_us, wall_s, rate_slack_us):
                self.catchups_allowed += 1
            elif self._reconfig_overshoot_ok(shard, value_us, wall_s,
                                             rate_slack_us):
                self.overshoots_tolerated += 1
            else:
                self._flag("staleness", client_id,
                           f"values advanced {dv_us:.0f} us over "
                           f"{dw_us:.0f} us of wall time "
                           f"(allowed slack {slack_us:.0f} us)",
                           list(log))
        elif dv_us < dw_us - slack_us:
            # Falling behind is staleness *debt*: tolerable while a
            # reconfiguration drains its backlog of agreed-but-stale
            # rounds, a violation if it is deep or never repaid.
            self._note_stall(shard, client_id, value_us, wall_s, rtt_s,
                             dv_us, dw_us, slack_us, list(log))
        self._clear_repaid_stall(shard, value_us, wall_s, rtt_s,
                                 rate_slack_us)
        self._raise_anchor(shard, value_us, wall_s, rtt_s)

    def _raise_anchor(self, shard, value_us: int, wall_s: float,
                      rtt_s: float) -> None:
        # A reply *proves* the mapping reached value-minus-receive-time
        # (the value was generated no later than receipt).  Anything
        # more generous (crediting the call's in-flight window) would
        # let one long-parked call overstate the anchor by its whole
        # RTT and manufacture unrepayable debt; the uncertainty is kept
        # with the anchor and spent on the *claims* side instead.
        offset_us = value_us - wall_s * 1e6
        anchor = self._offset_anchor.get(shard)
        if anchor is None or offset_us > anchor[0]:
            self._offset_anchor[shard] = (offset_us, wall_s, rtt_s)

    def _anchor_allowance_us(self, anchor, wall_s: float,
                             rate_slack_us: float) -> float:
        anchor_offset_us, anchor_wall_s, anchor_rtt_s = anchor
        return (self.staleness_budget_us
                + rate_slack_us
                + anchor_rtt_s * 1e6  # the proving reply's own window
                + abs(wall_s - anchor_wall_s) * self.drift_ppm
                + 1_000.0)

    def _is_catchup(self, shard, value_us: int, wall_s: float,
                    rate_slack_us: float) -> bool:
        anchor = self._offset_anchor.get(shard)
        if anchor is None:
            return False
        # Strictest mapping this reply can claim: generated no later
        # than the receive instant.
        offset_us = value_us - wall_s * 1e6
        allowance_us = self._anchor_allowance_us(anchor, wall_s,
                                                 rate_slack_us)
        return offset_us <= anchor[0] + allowance_us

    def _reconfig_overshoot_ok(self, shard, value_us: int, wall_s: float,
                               rate_slack_us: float) -> bool:
        # A reformation re-anchors group time to the new ring's winning
        # view, which can land *above* any previously proven mapping: a
        # restarted member's round repays stalls the shrunk ring had
        # already written off.  With a reconfiguration on record the
        # overshoot is tolerated up to the transient bound — the same
        # budget the stall side gets; past it the jump is a frozen
        # clock's mirror image, time from the future.
        if not self.reconfigs_noted:
            return False
        anchor = self._offset_anchor.get(shard)
        if anchor is None:
            return False
        offset_us = value_us - wall_s * 1e6
        allowance_us = self._anchor_allowance_us(anchor, wall_s,
                                                 rate_slack_us)
        return (offset_us
                <= anchor[0] + allowance_us + self.max_transient_lag_us)

    def _note_stall(self, shard, client_id: str, value_us: int,
                    wall_s: float, rtt_s: float, dv_us: float,
                    dw_us: float, slack_us: float, log: list) -> None:
        anchor = self._offset_anchor.get(shard)
        # Most generous interpretation: the value was generated at the
        # call's send instant, so the lag is smaller by the RTT.
        debt_us = (anchor[0] - (value_us - (wall_s - rtt_s) * 1e6)
                   if anchor is not None else float("inf"))
        if debt_us > self.max_transient_lag_us:
            self._flag("staleness", client_id,
                       f"values advanced {dv_us:.0f} us over "
                       f"{dw_us:.0f} us of wall time "
                       f"(allowed slack {slack_us:.0f} us; "
                       f"lag behind the observed mapping "
                       f"exceeds the {self.max_transient_lag_us} us "
                       f"transient bound)",
                       log)
            return
        self.stalls_tolerated += 1
        open_debt = self._stall_debt.get(shard)
        if open_debt is None or debt_us > open_debt[1]:
            self._stall_debt[shard] = (client_id, debt_us, wall_s, log)

    def _clear_repaid_stall(self, shard, value_us: int, wall_s: float,
                            rtt_s: float, rate_slack_us: float) -> None:
        if shard not in self._stall_debt:
            return
        anchor = self._offset_anchor.get(shard)
        if anchor is None:
            return
        offset_us = value_us - (wall_s - rtt_s) * 1e6
        tolerance_us = self._anchor_allowance_us(anchor, wall_s,
                                                 rate_slack_us)
        if offset_us >= anchor[0] - tolerance_us:
            del self._stall_debt[shard]  # the service caught back up

    def observe_shard_summary(self, src_shard, dst_shard, delta_us: int, *,
                              bound_us: int, error_us: int = 0,
                              resync: bool = False) -> None:
        """Feed one overlay summary delivery: ``delta_us`` is the
        sender's advertised group clock minus the receiver's estimate.

        The gradient bound says ring neighbors stay within the per-hop
        envelope, so ``|delta| <= bound + error`` must hold at every
        delivery — except the first one after a silence (``resync``:
        partition heal, primary failover), where the backlog is being
        steered away and is counted but not judged."""
        self.shard_summaries_checked += 1
        if resync:
            self.shard_resyncs += 1
            return
        if abs(delta_us) > bound_us + error_us:
            self._flag("shard-skew", f"{src_shard}->{dst_shard}",
                       f"neighbor delta {delta_us} us exceeds the hop "
                       f"envelope ({bound_us} us + {error_us} us error "
                       f"bound)",
                       [(src_shard, dst_shard, delta_us, bound_us, error_us)])

    def note_recovery(self, node_id: str) -> None:
        """Record that ``node_id`` was recovered (its post-recovery rounds
        are checked by :meth:`finish`)."""
        self._recovered[node_id] = self._rounds_by_node.get(node_id, 0)

    def note_reconfig(self, node_id: Optional[str] = None) -> None:
        """Record a membership change (join/drain/restart).  The stall
        it causes loses group time permanently, so staleness debt open
        at :meth:`finish` is accepted (up to the transient bound) once
        any reconfiguration is on record."""
        self.reconfigs_noted += 1

    def mark_faulty(self, node_id: str) -> None:
        """Declare ``node_id`` Byzantine for the whole run: none of its
        commits participate in the agreement check (neither as the
        reference value nor as a comparand), and its post-run history is
        not audited — a liar owes us nothing.  The correct replicas must
        still agree among themselves."""
        self._faulty.add(node_id)

    def note_corruption(self, node_id: str, *, round_bound: int = 2) -> None:
        """Record that a *correct* replica's state was scrambled now.

        For the next ``round_bound`` completed rounds the replica is in
        its self-stabilization window and its commits are excluded from
        agreement; after that the oracle re-enforces agreement, and
        :meth:`finish` flags a ``stabilization`` violation if the node
        never completed a round beyond the window (it failed to
        reconverge)."""
        self._corrupted[node_id] = (
            self._rounds_by_node.get(node_id, 0), round_bound)

    def _excluded(self, node: str) -> bool:
        """True while ``node``'s commits sit outside the agreement set."""
        if node in self._faulty:
            return True
        window = self._corrupted.get(node)
        if window is not None:
            rounds_at, bound = window
            if self._rounds_by_node.get(node, 0) - rounds_at <= bound:
                return True
        return False

    def _on_trace(self, event) -> None:
        if event.kind != "round.complete":
            return
        node = event.node
        group_us = event.fields.get("group_us")
        # The group is part of the round identity: a sharded run
        # completes independent rounds with identical (thread, round)
        # coordinates in every shard.
        key = (event.fields.get("group"), event.fields.get("thread"),
               event.fields.get("round"))
        self.rounds_checked += 1
        self._rounds_by_node[node] = self._rounds_by_node.get(node, 0) + 1
        if self._excluded(node):
            return
        seen = self._rounds.get(key)
        if seen is None:
            self._rounds[key] = (group_us, node)
        elif seen[0] != group_us:
            self._flag("agreement", node,
                       f"round {key[2]} of thread {key[1]!r}: {node} "
                       f"committed group={group_us} but {seen[1]} "
                       f"committed group={seen[0]}",
                       [seen, (group_us, node)])

    # -- post-run checks -------------------------------------------------

    def finish(self, bed=None, *, group: Optional[str] = None,
               groups: Optional[List[str]] = None) -> None:
        """Run the end-of-run checks against the testbed's replicas.

        ``group`` audits one group; ``groups`` audits several (one per
        shard in sharded runs).  The recovery/stabilization checks are
        per node and run once either way.
        """
        self.detach()
        audit = list(groups) if groups is not None else (
            [group] if group is not None else [])
        if bed is not None:
            for audited in audit:
                if audited not in bed.services:
                    continue
                for node_id, replica in bed.replicas(audited).items():
                    if node_id in self._faulty:
                        continue  # a Byzantine replica owes no identity
                    state = getattr(replica.time_source, "clock_state", None)
                    if state is None:
                        continue  # baseline source; nothing to re-derive
                    for entry in state.history:
                        group_us, physical_us, offset_us = entry
                        if offset_us != group_us - physical_us:
                            self._flag(
                                "offset", node_id,
                                f"commit {entry} violates "
                                f"offset = group - physical "
                                f"({offset_us} != {group_us - physical_us})",
                                list(state.history[-8:]))
                            break
        if not self.reconfigs_noted and not self._recovered:
            # Membership changes (and crash recoveries) stall rounds
            # and permanently shift the mapping down by the stall; with
            # none on record, lag that was never repaid is a frozen or
            # slow clock, not reconfiguration turbulence.
            for shard, (subject, debt_us, wall_s, log) in sorted(
                    self._stall_debt.items(), key=lambda kv: str(kv[0])):
                where = f" (shard {shard})" if shard is not None else ""
                self._flag(
                    "staleness", subject,
                    f"served values fell {debt_us:.0f} us behind the "
                    f"observed value-to-wall mapping{where} and never "
                    f"caught back up — with no reconfiguration or "
                    f"recovery on record the lag cannot be membership "
                    f"turbulence",
                    log)
        for node_id, rounds_before in self._recovered.items():
            if self._rounds_by_node.get(node_id, 0) <= rounds_before:
                self._flag(
                    "recovery", node_id,
                    "recovered replica completed no CCS round after "
                    "recovery — its clock offset was never re-derived",
                    [("rounds_before_recovery", rounds_before)])
        for node_id, (rounds_at, bound) in self._corrupted.items():
            if node_id in self._faulty:
                continue  # corruption of a liar proves nothing
            completed = self._rounds_by_node.get(node_id, 0) - rounds_at
            if completed <= bound:
                self._flag(
                    "stabilization", node_id,
                    f"corrupted replica completed only {completed} round(s) "
                    f"afterwards — never left its {bound}-round repair "
                    f"window, so reconvergence was not demonstrated",
                    [("rounds_at_corruption", rounds_at),
                     ("round_bound", bound)])

    # -- results ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def _flag(self, check: str, subject: str, detail: str,
              transcript: List[Any]) -> None:
        # The subject's own recent traces lead; other recent traffic
        # follows (an agreement violation's subject is a node, whose
        # relevant operations are whatever clients were running).
        trace_ids = list(self._traces.get(subject, []))
        for trace_id in self._recent_traces:
            if trace_id not in trace_ids:
                trace_ids.append(trace_id)
        violation = Violation(check, subject, detail, transcript,
                              trace_ids=trace_ids[-16:])
        if self.flight_recorder is not None and self.dump_dir is not None:
            from pathlib import Path

            index = len(self.violations)
            try:
                violation.flight_dump = self.flight_recorder.dump(
                    Path(self.dump_dir) / f"flight-violation-{index}.json",
                    reason=f"oracle-violation:{check}",
                    context={"check": check, "subject": subject,
                             "detail": detail,
                             "trace_ids": violation.trace_ids})
            except OSError:
                pass  # a full disk must not mask the violation itself
        self.violations.append(violation)

    def report(self) -> Dict[str, Any]:
        """The oracle's half of the JSON verdict."""
        return {
            "ok": self.ok,
            "replies_checked": self.replies_checked,
            "rounds_checked": self.rounds_checked,
            "clients": len(self._replies),
            "migrations_checked": self.migrations_checked,
            "catchups_allowed": self.catchups_allowed,
            "overshoots_tolerated": self.overshoots_tolerated,
            "stalls_tolerated": self.stalls_tolerated,
            "reconfigs_noted": self.reconfigs_noted,
            "shard_summaries_checked": self.shard_summaries_checked,
            "shard_resyncs": self.shard_resyncs,
            "faulty": sorted(self._faulty),
            "corrupted": sorted(self._corrupted),
            "violations": [v.as_dict() for v in self.violations],
        }
