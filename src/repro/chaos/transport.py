"""Fault-injecting decorator over the transport contract.

:class:`ChaosTransport` wraps any :class:`repro.net.transport.Transport`
— the live :class:`~repro.net.udp.UdpTransport` is the intended target,
the simulated LAN works too — and impairs traffic *on the send side*:
every unicast and every per-peer leg of a multicast consults the
directional ``(src, dst)`` rule set and is then dropped, delayed,
jittered, duplicated, reordered, or blocked by a partition before the
inner transport ever sees it.

Determinism: every directed pair draws from its own
:class:`random.Random` stream seeded from ``(seed, src, dst)`` as a
string (string seeding is stable across processes and platforms, unlike
``hash()``), so two runs with the same seed and the same per-pair
traffic order make identical drop/delay/duplicate decisions.  The fault
*schedule* (when rules change) comes from the armed
:class:`~repro.sim.faults.FaultPlan` and is byte-identical by
construction.

Delays are implemented by scheduling the real send on the kernel
(:class:`~repro.net.kernel.LiveKernel` or the simulator — both expose
``schedule``), so a delayed frame whose sender has crashed in the
meantime is silently lost, exactly like a frame on a real wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .. import obs
from ..errors import NetworkError
from ..net.transport import Transport, TransportPort
from .byzantine import ByzantineRules

M_CHAOS_DROPPED = obs.REGISTRY.counter(
    "chaos_frames_dropped_total", "frames lost to injected loss")
M_CHAOS_DELAYED = obs.REGISTRY.counter(
    "chaos_frames_delayed_total", "frames held back by injected delay")
M_CHAOS_DUPLICATED = obs.REGISTRY.counter(
    "chaos_frames_duplicated_total", "extra copies injected")
M_CHAOS_BLOCKED = obs.REGISTRY.counter(
    "chaos_frames_blocked_total", "frames blocked by partition/isolation")


@dataclass
class PairRules:
    """Impairment knobs for one directed pair (``None`` = inherit)."""

    drop_rate: Optional[float] = None
    delay_s: Optional[float] = None
    jitter_s: Optional[float] = None
    duplicate_rate: Optional[float] = None
    reorder_rate: Optional[float] = None
    reorder_window_s: Optional[float] = None


#: Wildcard key component: "applies to every node".
ANY = None


class ChaosPort(TransportPort):
    """One node's port with the chaos rules interposed on every send."""

    def __init__(self, transport: "ChaosTransport", inner: TransportPort):
        self.transport = transport
        self.inner = inner
        self.node_id = inner.node_id

    # -- delegated state ------------------------------------------------

    @property
    def up(self) -> bool:  # type: ignore[override]
        return self.inner.up

    @up.setter
    def up(self, value: bool) -> None:
        self.inner.up = value

    @property
    def frames_sent(self) -> int:  # type: ignore[override]
        return self.inner.frames_sent

    @property
    def frames_received(self) -> int:  # type: ignore[override]
        return self.inner.frames_received

    @property
    def bytes_sent(self) -> int:  # type: ignore[override]
        return self.inner.bytes_sent

    @property
    def address(self):
        """Bound socket address (live backend only)."""
        return self.inner.address

    def sendto(self, addr, payload) -> None:
        """Direct addressed send (gateway replies).  Client traffic is
        impaired on the request path and by the group's own stalls; the
        reply leg stays clean so the caller's dedupe/retry machinery is
        exercised by *protocol* faults, not by a lying harness."""
        self.inner.sendto(addr, payload)

    # -- impaired sends -------------------------------------------------

    def unicast(self, dst: str, payload: Any, size_bytes: int = 128) -> None:
        if not self.inner.up:
            raise NetworkError(f"interface {self.node_id!r} is down")
        self.transport._send(self.inner, self.node_id, dst, payload, size_bytes)

    def multicast(self, payload: Any, size_bytes: int = 128) -> None:
        """Fan out as per-peer unicasts so each leg is impaired
        independently (matching how the UDP backend emulates multicast)."""
        if not self.inner.up:
            raise NetworkError(f"interface {self.node_id!r} is down")
        for dst in self.transport.peer_ids():
            self.transport._send(self.inner, self.node_id, dst, payload,
                                 size_bytes)


class ChaosTransport(Transport):
    """A transport decorator injecting seeded faults per directed pair.

    Rules resolve most-specific-first: ``(src, dst)`` overrides
    ``(src, ANY)`` overrides ``(ANY, dst)`` overrides ``(ANY, ANY)``.
    Partitions and isolation are topology state, kept separately and
    checked before any probabilistic rule.  Self-delivery (a node's own
    multicast loopback) is never impaired — Totem's singleton ring
    depends on hearing itself, and a real host's loopback does not cross
    the faulty wire.
    """

    def __init__(self, inner: Transport, kernel, *, seed: int = 0):
        self.inner = inner
        self.kernel = kernel
        self.seed = seed
        self._rules: Dict[Tuple[Optional[str], Optional[str]], PairRules] = {}
        self._component: Dict[str, int] = {}
        self._isolated: Set[str] = set()
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        self._attached: List[str] = []
        #: Byzantine lie/equivocation rules, applied to every outgoing
        #: leg *including self-delivery* (a liar hears its own lie) and
        #: *before* the crash/omission decision procedure.
        self.byzantine = ByzantineRules(seed=seed)
        # Injection tally for verdicts and tests.
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_duplicated = 0
        self.frames_blocked = 0

    # -- topology (Transport contract) ----------------------------------

    def attach(self, node_id: str, deliver: Callable[[Any], None]) -> ChaosPort:
        port = ChaosPort(self, self.inner.attach(node_id, deliver))
        self._attached.append(node_id)
        return port

    def detach(self, node_id: str) -> None:
        self.inner.detach(node_id)
        if node_id in self._attached:
            self._attached.remove(node_id)

    def close(self) -> None:
        self.inner.close()

    def peer_ids(self) -> List[str]:
        """Every reachable destination, self included.

        The UDP backend keeps an address book (``peers``); the simulated
        LAN and test doubles fall back to the attach registry.
        """
        peers = getattr(self.inner, "peers", None)
        if peers:
            return list(peers)
        return list(self._attached)

    # -- fault control (driven by an armed FaultPlan) -------------------

    def set_drop(self, rate: float, *, src: Optional[str] = None,
                 dst: Optional[str] = None) -> None:
        """Lose each matching frame independently with probability
        ``rate`` (0 disables)."""
        self._rule(src, dst).drop_rate = rate

    def set_delay(self, delay_s: float, *, jitter_s: float = 0.0,
                  src: Optional[str] = None, dst: Optional[str] = None) -> None:
        """Hold each matching frame for ``delay_s`` plus uniform jitter
        in ``[0, jitter_s]`` (jitter > one frame gap reorders)."""
        rules = self._rule(src, dst)
        rules.delay_s = delay_s
        rules.jitter_s = jitter_s

    def set_duplicate(self, rate: float, *, src: Optional[str] = None,
                      dst: Optional[str] = None) -> None:
        """Send an extra copy of each matching frame with probability
        ``rate``."""
        self._rule(src, dst).duplicate_rate = rate

    def set_reorder(self, rate: float, *, window_s: float = 0.01,
                    src: Optional[str] = None, dst: Optional[str] = None) -> None:
        """With probability ``rate``, hold a frame an extra uniform
        ``[0, window_s]`` so later frames overtake it."""
        rules = self._rule(src, dst)
        rules.reorder_rate = rate
        rules.reorder_window_s = window_s

    def partition(self, *components) -> None:
        """Split the network; unlisted nodes form component 0 (same
        semantics as the simulated LAN)."""
        self._component = {}
        for index, group in enumerate(components, start=1):
            for node_id in group:
                self._component[node_id] = index

    def isolate(self, node_id: str) -> None:
        """Cut one node off from every peer in both directions (its own
        loopback survives, as on a real host)."""
        self._isolated.add(node_id)

    def heal(self) -> None:
        """Remove all partitions and isolation (impairment rules stay)."""
        self._component = {}
        self._isolated = set()

    def clear(self) -> None:
        """Reset every impairment, partition and lie — the quiet wire."""
        self.heal()
        self._rules = {}
        self.byzantine.clear()

    # -- Byzantine rules (delegation sugar for FaultPlan._inject) -------

    def set_lie(self, node_id: str, bias_us: int) -> None:
        self.byzantine.set_lie(node_id, bias_us)

    def set_equivocate(self, node_id: str, spread_us: int) -> None:
        self.byzantine.set_equivocate(node_id, spread_us)

    @property
    def frames_perturbed(self) -> int:
        return self.byzantine.frames_perturbed

    def reachable(self, src: str, dst: str) -> bool:
        if src == dst:
            return True
        if src in self._isolated or dst in self._isolated:
            return False
        return self._component.get(src, 0) == self._component.get(dst, 0)

    # -- the decision procedure -----------------------------------------

    def _rule(self, src: Optional[str], dst: Optional[str]) -> PairRules:
        key = (src, dst)
        rules = self._rules.get(key)
        if rules is None:
            rules = self._rules[key] = PairRules()
        return rules

    def _effective(self, src: str, dst: str, field: str, default: float) -> float:
        for key in ((src, dst), (src, ANY), (ANY, dst), (ANY, ANY)):
            rules = self._rules.get(key)
            if rules is not None:
                value = getattr(rules, field)
                if value is not None:
                    return value
        return default

    def _rng(self, src: str, dst: str) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._rngs[key] = random.Random(f"{self.seed}|{src}->{dst}")
        return rng

    def decide(self, src: str, dst: str) -> Optional[List[float]]:
        """One frame's fate on the directed pair: ``None`` when blocked
        or dropped, else the delay of each copy to deliver (usually one;
        two when duplicated).  Self-delivery is always ``[0.0]``."""
        if src == dst:
            return [0.0]
        if not self.reachable(src, dst):
            self.frames_blocked += 1
            if obs.REGISTRY.enabled:
                M_CHAOS_BLOCKED.inc(node=src)
            return None
        rng = self._rng(src, dst)
        if rng.random() < self._effective(src, dst, "drop_rate", 0.0):
            self.frames_dropped += 1
            if obs.REGISTRY.enabled:
                M_CHAOS_DROPPED.inc(node=src)
            return None
        delay = self._effective(src, dst, "delay_s", 0.0)
        jitter = self._effective(src, dst, "jitter_s", 0.0)
        if jitter > 0.0:
            delay += rng.uniform(0.0, jitter)
        if rng.random() < self._effective(src, dst, "reorder_rate", 0.0):
            delay += rng.uniform(
                0.0, self._effective(src, dst, "reorder_window_s", 0.01))
        delays = [delay]
        if rng.random() < self._effective(src, dst, "duplicate_rate", 0.0):
            self.frames_duplicated += 1
            if obs.REGISTRY.enabled:
                M_CHAOS_DUPLICATED.inc(node=src)
            delays.append(delay + rng.uniform(0.0, max(jitter, 0.001)))
        if delay > 0.0:
            self.frames_delayed += 1
            if obs.REGISTRY.enabled:
                M_CHAOS_DELAYED.inc(node=src)
        return delays

    def _send(self, inner_port: TransportPort, src: str, dst: str,
              payload: Any, size_bytes: int) -> None:
        # Byzantine perturbation applies before — and regardless of —
        # the crash/omission decision: the self-delivery leg is exempt
        # from drops but NOT from the node's own lie, so a faulty node
        # processes exactly the proposal it multicast and its local
        # state stays consistent with its observable behaviour.
        payload = self.byzantine.perturb(src, dst, payload)
        delays = self.decide(src, dst)
        if delays is None:
            return
        for delay in delays:
            if delay <= 0.0:
                self._deliver(inner_port, dst, payload, size_bytes)
            else:
                self.kernel.schedule(
                    delay, self._deliver, inner_port, dst, payload, size_bytes)

    @staticmethod
    def _deliver(inner_port: TransportPort, dst: str, payload: Any,
                 size_bytes: int) -> None:
        if not inner_port.up:
            return  # sender crashed while the frame was "in flight"
        try:
            inner_port.unicast(dst, payload, size_bytes)
        except NetworkError:
            pass  # raced a crash between the check and the send
