"""Chaos scenario files: a small declarative DSL over ``FaultPlan``.

A scenario is a mapping with a cluster shape and a timed event list::

    name: partition-and-crash
    nodes: 3                  # or an explicit list: [n0, n1, n2]
    duration: 10.0            # seconds of wall time to run
    clients: 2                # gateway clients hammering the cluster
    events:
      - at: 1.0
        drop: 0.05            # 5% seeded loss on every pair
      - at: 2.0
        partition: [[n0, n1], [n2]]
      - at: 4.0
        heal: true
      - at: 5.0
        crash: n0
      - at: 7.0
        recover: n0

Event keys map one-to-one onto :class:`~repro.sim.faults.FaultPlan`
builders: ``crash``, ``recover``, ``isolate`` (node id), ``heal``
(ignored value), ``partition`` (list of disjoint node lists), ``drop`` /
``duplicate`` / ``reorder`` (probability, optional ``src``/``dst``,
``reorder`` also takes ``window``), ``delay`` (seconds, optional
``jitter``/``src``/``dst``), ``lie`` (node id plus ``bias`` in
microseconds; 0 stops it), ``equivocate`` (node id plus ``spread`` in
microseconds; 0 stops it), ``corrupt-state`` (node id), and the
control-plane reconfigurations ``drain`` / ``join`` (node id — graceful
replica retirement and re-admission through the total order).  A
top-level
``auth: true`` turns on the authenticated-Byzantine mode: ring frames
carry HMACs and the time service arms its winner sanity filter and
self-stabilization path.

Files are parsed with a built-in YAML *subset* — block mappings, block
lists, inline flow lists, plain scalars, comments — because the
toolchain deliberately has no third-party dependencies.  JSON is a
subset of that subset in spirit and is accepted too (``.json`` files are
handed to :mod:`json` directly).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..shard.cluster import shard_nodes
from ..sim.faults import FaultPlan

# ---------------------------------------------------------------------------
# Minimal YAML-subset parser (no external dependencies).
# ---------------------------------------------------------------------------


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text == "" or text in ("~", "null", "Null", "NULL"):
        return None
    if text in ("true", "True", "TRUE"):
        return True
    if text in ("false", "False", "FALSE"):
        return False
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        return _parse_flow_list(text)
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_flow_items(body: str) -> List[str]:
    """Split a flow-list body on top-level commas."""
    items, depth, start = [], 0, 0
    for i, ch in enumerate(body):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append(body[start:i])
            start = i + 1
    tail = body[start:]
    if tail.strip() or items:
        items.append(tail)
    return [item for item in items if item.strip()]


def _parse_flow_list(text: str) -> List[Any]:
    body = text.strip()[1:-1]
    return [_parse_scalar(item) for item in _split_flow_items(body)]


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (quote-aware)."""
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in (" ", "\t")):
            return line[:i]
    return line


def _split_key(content: str, where: str) -> Tuple[str, str]:
    """Split ``key: value`` at the first colon outside quotes/brackets."""
    depth, quote = 0, None
    for i, ch in enumerate(content):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ":" and depth == 0 and (
                i + 1 == len(content) or content[i + 1] in (" ", "\t")):
            return content[:i].strip(), content[i + 1:].strip()
    raise ConfigurationError(f"expected 'key: value' at {where}: {content!r}")


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset described in the module docstring."""
    lines: List[Tuple[int, str, int]] = []  # (indent, content, line number)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ConfigurationError(
                f"line {lineno}: tabs are not allowed in indentation")
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        lines.append((len(stripped) - len(stripped.lstrip()), stripped.strip(),
                      lineno))
    if not lines:
        return {}
    value, index = _parse_block(lines, 0, lines[0][0])
    if index != len(lines):
        indent, content, lineno = lines[index]
        raise ConfigurationError(
            f"line {lineno}: unexpected indentation for {content!r}")
    return value


def _parse_block(lines, index: int, indent: int):
    if lines[index][1].startswith("- ") or lines[index][1] == "-":
        return _parse_list(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_list(lines, index: int, indent: int):
    items: List[Any] = []
    while index < len(lines) and lines[index][0] == indent:
        line_indent, content, lineno = lines[index]
        if not (content.startswith("- ") or content == "-"):
            break
        body = content[2:].strip() if content.startswith("- ") else ""
        if not body:
            index += 1
            if index < len(lines) and lines[index][0] > indent:
                value, index = _parse_block(lines, index, lines[index][0])
                items.append(value)
            else:
                items.append(None)
        elif ":" in body and not body.startswith("["):
            # "- key: value" opens an inline mapping; continuation keys sit
            # at the column of `key`, i.e. indent + 2.
            key, value_text = _split_key(body, f"line {lineno}")
            mapping: Dict[str, Any] = {}
            index += 1
            if value_text:
                mapping[key] = _parse_scalar(value_text)
            elif index < len(lines) and lines[index][0] > indent + 2:
                mapping[key], index = _parse_block(lines, index,
                                                   lines[index][0])
            else:
                mapping[key] = None
            if index < len(lines) and lines[index][0] == indent + 2 \
                    and not lines[index][1].startswith("- "):
                rest, index = _parse_mapping(lines, index, indent + 2)
                mapping.update(rest)
            items.append(mapping)
        else:
            items.append(_parse_scalar(body))
            index += 1
    return items, index


def _parse_mapping(lines, index: int, indent: int):
    mapping: Dict[str, Any] = {}
    while index < len(lines) and lines[index][0] == indent:
        line_indent, content, lineno = lines[index]
        if content.startswith("- "):
            break
        key, value_text = _split_key(content, f"line {lineno}")
        if key in mapping:
            raise ConfigurationError(f"line {lineno}: duplicate key {key!r}")
        index += 1
        if value_text:
            mapping[key] = _parse_scalar(value_text)
        elif index < len(lines) and lines[index][0] > indent:
            mapping[key], index = _parse_block(lines, index, lines[index][0])
        else:
            mapping[key] = None
    return mapping, index


# ---------------------------------------------------------------------------
# Scenario model
# ---------------------------------------------------------------------------

#: Event keys that identify the fault kind within an event mapping.
_KIND_KEYS = ("crash", "recover", "isolate", "heal", "partition", "drop",
              "delay", "duplicate", "reorder", "lie", "equivocate",
              "corrupt-state", "drain", "join")


@dataclass
class ChaosScenario:
    """A parsed, validated scenario ready to compile into a plan."""

    name: str
    node_ids: List[str]
    duration_s: float
    clients: int = 2
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Authenticated-Byzantine mode: sign/verify ring frames with HMAC
    #: and enable the CTS winner sanity filter + self-stabilization.
    auth: bool = False
    #: Sharded topology: run this many CCS groups (shards) of
    #: ``shard_size`` servers each instead of one flat ring.  Node ids
    #: become ``s{g}n{r}`` (servers) / ``s{g}c`` (shard client), and
    #: shard-scoped event targets (``partition: {shards: [...]}``)
    #: become available.  None = the classic single-group run.
    shards: Optional[int] = None
    shard_size: int = 3

    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)


def load_scenario(path: Union[str, os.PathLike]) -> ChaosScenario:
    """Load and validate a scenario file (YAML subset or JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if str(path).endswith(".json"):
        data = json.loads(text)
    else:
        data = parse_simple_yaml(text)
    return scenario_from_dict(data, source=str(path))


def scenario_from_dict(data: Any, *, source: str = "<scenario>") -> ChaosScenario:
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{source}: scenario must be a mapping, got {type(data).__name__}")
    known = {"name", "nodes", "duration", "duration_s", "clients", "events",
             "auth", "shards", "shard_size"}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown scenario key(s) {sorted(unknown)}; "
            f"expected {sorted(known)}")

    shards = data.get("shards")
    shard_size = data.get("shard_size", 3)
    if shards is not None and (not isinstance(shards, int) or shards < 1):
        raise ConfigurationError(f"{source}: shards must be a positive int")
    if not isinstance(shard_size, int) or shard_size < 1:
        raise ConfigurationError(f"{source}: shard_size must be a positive int")

    if shards is not None:
        if "nodes" in data:
            raise ConfigurationError(
                f"{source}: 'nodes' and 'shards' are mutually exclusive — "
                f"a sharded topology derives its node ids")
        node_ids = []
        for shard in range(shards):
            node_ids.extend(shard_nodes(shard, shard_size))
    else:
        nodes = data.get("nodes", 3)
        if isinstance(nodes, int):
            if nodes < 1:
                raise ConfigurationError(f"{source}: nodes must be >= 1")
            node_ids = [f"n{i}" for i in range(nodes)]
        elif isinstance(nodes, list) and all(isinstance(n, str) for n in nodes):
            node_ids = list(nodes)
        else:
            raise ConfigurationError(
                f"{source}: nodes must be an int or a list of node ids")

    duration = data.get("duration", data.get("duration_s", 10.0))
    if not isinstance(duration, (int, float)) or duration <= 0:
        raise ConfigurationError(f"{source}: duration must be a positive number")

    clients = data.get("clients", 2)
    if not isinstance(clients, int) or clients < 1:
        raise ConfigurationError(f"{source}: clients must be a positive int")

    events = data.get("events", [])
    if not isinstance(events, list):
        raise ConfigurationError(f"{source}: events must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ConfigurationError(
                f"{source}: event #{i} must be a mapping, got "
                f"{type(event).__name__}")
        if "at" not in event:
            raise ConfigurationError(f"{source}: event #{i} is missing 'at'")
        kinds = [k for k in _KIND_KEYS if k in event]
        if len(kinds) != 1:
            raise ConfigurationError(
                f"{source}: event #{i} must have exactly one of {_KIND_KEYS}, "
                f"got {kinds or sorted(set(event) - {'at'})}")

    return ChaosScenario(
        name=str(data.get("name", "chaos")),
        node_ids=node_ids,
        duration_s=float(duration),
        clients=clients,
        events=events,
        auth=bool(data.get("auth", False)),
        shards=shards,
        shard_size=shard_size,
    )


def compile_plan(scenario: ChaosScenario) -> FaultPlan:
    """Compile the scenario's event list into an (unarmed) fault plan.

    Compilation is pure — no randomness, no clock reads — so the same
    scenario always produces the same plan and the same
    :meth:`~repro.sim.faults.FaultPlan.schedule_hash`.
    """
    plan = FaultPlan()
    for i, event in enumerate(scenario.events):
        at = float(event["at"])
        src = event.get("src")
        dst = event.get("dst")
        try:
            if "crash" in event:
                plan.crash(str(event["crash"]), at=at)
            elif "recover" in event:
                plan.recover(str(event["recover"]), at=at)
            elif "isolate" in event:
                plan.isolate(str(event["isolate"]), at=at)
            elif "heal" in event:
                plan.heal(at=at)
            elif "partition" in event:
                components = event["partition"]
                if isinstance(components, dict) and "shards" in components:
                    # Shard-scoped target: each listed shard becomes its
                    # own component (servers + shard client); everyone
                    # else stays connected in a final component.  Pure
                    # expansion from scenario fields, so the schedule
                    # hash stays canonical.
                    if scenario.shards is None:
                        raise ConfigurationError(
                            "partition by shards requires a sharded "
                            "scenario (top-level 'shards')")
                    listed = components["shards"]
                    if (not isinstance(listed, list) or not listed
                            or not all(isinstance(s, int) for s in listed)):
                        raise ConfigurationError(
                            "partition shards must be a non-empty list of "
                            "shard indices, e.g. {shards: [0, 2]}")
                    expanded, covered = [], set()
                    for shard in listed:
                        if not 0 <= shard < scenario.shards:
                            raise ConfigurationError(
                                f"shard {shard} out of range "
                                f"(scenario has {scenario.shards})")
                        nodes = shard_nodes(shard, scenario.shard_size)
                        expanded.append(set(nodes))
                        covered.update(nodes)
                    rest = [n for n in scenario.node_ids if n not in covered]
                    if rest:
                        expanded.append(set(rest))
                    plan.partition(*expanded, at=at)
                elif not isinstance(components, list) or not all(
                        isinstance(c, list) for c in components):
                    raise ConfigurationError(
                        "partition must be a list of node lists, e.g. "
                        "[[n0, n1], [n2]], or {shards: [...]} in a "
                        "sharded scenario")
                else:
                    plan.partition(*[set(map(str, c)) for c in components],
                                   at=at)
            elif "drop" in event:
                plan.drop(float(event["drop"]), at=at, src=src, dst=dst)
            elif "delay" in event:
                plan.delay(float(event["delay"]), at=at,
                           jitter_s=float(event.get("jitter", 0.0)),
                           src=src, dst=dst)
            elif "duplicate" in event:
                plan.duplicate(float(event["duplicate"]), at=at,
                               src=src, dst=dst)
            elif "reorder" in event:
                plan.reorder(float(event["reorder"]), at=at,
                             window_s=float(event.get("window", 0.01)),
                             src=src, dst=dst)
            elif "lie" in event:
                plan.lie(str(event["lie"]),
                         bias_us=int(event.get("bias", 0)), at=at)
            elif "equivocate" in event:
                plan.equivocate(str(event["equivocate"]),
                                spread_us=int(event.get("spread", 0)), at=at)
            elif "corrupt-state" in event:
                plan.corrupt_state(str(event["corrupt-state"]), at=at)
            elif "drain" in event:
                plan.drain(str(event["drain"]), at=at)
            elif "join" in event:
                plan.join(str(event["join"]), at=at)
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"{scenario.name}: event #{i}: {exc}") from exc
    return plan
