"""The replica runtime: one replicated application instance on a node.

A :class:`Replica` binds together

* a :class:`~repro.replication.group.GroupEndpoint` (ordered messaging
  and views),
* the application object (methods written as generators taking a
  :class:`~repro.replication.context.ReplicaContext`),
* a :class:`~repro.replication.timesource.TimeSource` (the consistent
  time service or a baseline), and
* a deterministic :class:`~repro.replication.scheduler.ThreadManager`.

Requests are processed by a single *main* logical thread in delivery
order (the paper's model: "one and only one thread is assigned to
process incoming remote method invocations"), which is what makes the
replicas' visible behaviour deterministic given deterministic clock
readings.  Subclasses implement the three replication styles the paper
targets: active, passive (primary/backup) and semi-active.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from .. import trace
from ..errors import ReplicationError
from ..sim.kernel import AnyOf, Event
from ..sim.process import Store
from .context import ReplicaContext
from .envelope import Envelope, MsgType, make_envelope
from .group import GroupRuntime, GroupView
from .scheduler import ThreadManager
from .state_transfer import StateTransferManager
from .timesource import TimeSource
from ..rpc.messages import Result


class Application:
    """Base class for replicated application objects.

    Methods are generators: ``def ping(self, ctx, x): yield ctx.compute(..);
    return x``.  ``get_state``/``set_state`` support checkpointing and
    state transfer; override them if the application holds state.
    """

    def get_state(self) -> Any:
        """Return a deep-copyable snapshot of application state."""
        return None

    def set_state(self, state: Any) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""


@dataclass
class ReplicaStats:
    """Counters used by tests and the evaluation harness."""

    requests_processed: int = 0
    replies_sent: int = 0
    checkpoints_sent: int = 0
    checkpoints_applied: int = 0
    requests_logged: int = 0
    promotions: int = 0


class Replica(abc.ABC):
    """Common machinery of all replication styles."""

    style = "abstract"

    #: Whether this style may overlap request executions across clock
    #: reads (requires a time source with ``supports_concurrent_reads``).
    #: Request *admission* stays in delivery order; only the blocking
    #: portion of clock reads overlaps.  Styles whose correctness depends
    #: on strictly serial execution (passive primaries take periodic
    #: checkpoints between requests) turn this off.
    supports_pipelining = True

    def __init__(
        self,
        runtime: GroupRuntime,
        group: str,
        app: Application,
        time_source_factory: Callable[["Replica"], TimeSource],
        *,
        join_existing: bool = False,
    ):
        self.runtime = runtime
        #: True when this replica is (re)joining a group that is believed
        #: to exist already — e.g. after a crash, when the local group
        #: runtime has no view history and cannot tell from its first
        #: view whether other members exist.
        self.join_existing = join_existing
        self.group = group
        self.app = app
        self.node = runtime.processor.node
        self.node_id = self.node.node_id
        self.sim = runtime.sim
        self.endpoint = runtime.endpoint(group)
        self.threads = ThreadManager(self.node, f"{group}@{self.node_id}")
        self.request_queue = Store(self.sim, name=f"{group}@{self.node_id}.requests")
        self.state_transfer = StateTransferManager(self)
        self.time_source = time_source_factory(self)
        #: Count of REQUEST envelopes delivered to the group — identical
        #: at every member because delivery is totally ordered.
        self.request_index = 0
        self.stats = ReplicaStats()
        self.main_thread_id: str = ""
        # -- pipelined execution (coalesced time sources) ----------------
        #: Request indexes admitted but not yet finished.
        self._active_requests: set = set()
        #: (generator, completed read event) continuations ready to resume.
        self._resumable: deque = deque()
        #: Count of admitted-but-unfinished request executions.
        self._inflight = 0
        #: Succeeds when a parked continuation becomes resumable.
        self._work: Optional[Event] = None
        self._join_observed = False
        self._started = False
        # -- primary-component handling (paper Section 2) ----------------
        #: True while this replica's component is not the primary one:
        #: it must not process requests (only the primary component of a
        #: partitioned system survives).
        self.suspended = False
        #: Group members seen in the last view before suspension.
        self._members_before_suspension: frozenset = frozenset()
        #: Nodes of the component we were suspended in.
        self._component_nodes: frozenset = frozenset()
        #: Whether our current Totem component is the primary one.  True
        #: until told otherwise: a simulated cluster installs its full
        #: (primary) ring before delivering any group view.
        self._component_primary = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Join the group and start the main processing thread."""
        if self._started:
            raise ReplicationError(f"replica {self.group}@{self.node_id} already started")
        self._started = True
        self.endpoint.on_message = self._on_message
        self.endpoint.on_view_change = self._on_view_change
        self.endpoint.on_config_change = self._on_totem_config
        self.endpoint.on_raw_message = self._on_raw_message
        main = self.threads.create("main", self._main_loop)
        self.main_thread_id = main.thread_id
        self.endpoint.join()

    def create_thread(self, name: str, body: Callable[[ReplicaContext], Generator]):
        """Start an additional logical thread (e.g. a timer thread).

        Threads must be created in the same order at every replica; the
        deterministic runtime guarantees this when creation happens in
        ``start()`` or in replicated request handlers.
        """
        thread = self.threads.create(name)
        ctx = ReplicaContext(self, thread.thread_id)
        thread.process = self.node.spawn(body(ctx), name=f"{self.group}:{name}")
        return thread

    @property
    def is_primary(self) -> bool:
        return self.endpoint.is_primary

    @property
    def view(self) -> GroupView:
        return self.endpoint.view

    # ------------------------------------------------------------------
    # Delivery path
    # ------------------------------------------------------------------

    def _on_raw_message(self, envelope: Envelope) -> None:
        if envelope.header.msg_type is MsgType.CCS:
            self.time_source.handle_raw_ccs(envelope)

    def _on_totem_config(self, change) -> None:
        """Primary-component partition handling (paper Section 2): only
        the primary component survives a partition.  A replica finding
        itself in a non-primary component suspends; when the partition
        heals it either resumes (if no group member kept processing
        elsewhere) or rejoins through a fresh state transfer."""
        self._component_primary = change.is_primary
        self.time_source.on_config_change(change)
        if not change.is_primary:
            if not self.suspended and self.state_transfer.ready:
                self.suspended = True
                self._members_before_suspension = frozenset(
                    self.endpoint.view.members
                ) | {self.node_id}
            self._component_nodes = frozenset(change.members)
            return
        if not self.suspended:
            return
        # Back in a primary component.  Group members outside our old
        # component may have processed requests while we were suspended.
        self.suspended = False
        foreign = self._members_before_suspension - self._component_nodes
        if foreign:
            self.state_transfer.restart()

    def _on_message(self, envelope: Envelope) -> None:
        if self.suspended:
            # Non-primary component: no processing, no logging, nothing.
            return
        msg_type = envelope.header.msg_type
        # Time-service control traffic and checkpoints addressed to us are
        # handled immediately even during recovery.
        if msg_type is MsgType.CCS:
            self.time_source.handle_ccs(envelope)
            return
        if msg_type is MsgType.STATE:
            self.state_transfer.on_state(envelope)
            return
        if msg_type is MsgType.REPLY:
            return  # replies concern clients, not server replicas
        if not self.state_transfer.ready:
            if (
                msg_type is MsgType.GET_STATE
                and envelope.body.get("target") == self.node_id
            ):
                # Our own GET_STATE came back: from here on, queue.
                self.state_transfer.begin_queuing()
                return
            self.state_transfer.observe_while_recovering(envelope)
            return
        self.dispatch(envelope)

    def dispatch(self, envelope: Envelope) -> None:
        """Route one ordered message (live or replayed after recovery)."""
        msg_type = envelope.header.msg_type
        if msg_type is MsgType.REQUEST:
            self.request_index += 1
            self._handle_request(envelope, self.request_index)
        elif msg_type is MsgType.GET_STATE:
            if envelope.body.get("target") != self.node_id:
                # Serve at a quiescent point: through the request queue.
                self.request_queue.put(envelope)
        elif msg_type is MsgType.CHECKPOINT:
            self._handle_checkpoint(envelope)
        elif msg_type is MsgType.APP:
            self._handle_app_message(envelope)

    def _main_loop(self) -> Generator:
        if self.supports_pipelining and getattr(
            self.time_source, "supports_concurrent_reads", False
        ):
            yield from self._pipelined_loop()
            return
        while True:
            item = yield self.request_queue.get()
            envelope, index = item if isinstance(item, tuple) else (item, None)
            if envelope.header.msg_type is MsgType.GET_STATE:
                yield from self.state_transfer.handle_get_state(envelope)
            else:
                yield from self._execute(envelope, index)

    # ------------------------------------------------------------------
    # Pipelined execution (round amortization)
    # ------------------------------------------------------------------

    def _pipelined_loop(self) -> Generator:
        """Admit requests in delivery order but overlap the *blocking*
        part of clock reads: an execution parked in a CCS round yields
        the CPU so later requests reach their own reads and share the
        round (round amortization at the time service).

        Only the wait overlaps — CPU segments between reads still run
        one at a time on this (single) main thread, and admission order
        is the delivery order, so replicas stay deterministic as long as
        application state mutations do not straddle a clock read (see
        docs/performance.md).
        """
        self._work = Event(self.sim)
        pending_get: Optional[Event] = None
        while True:
            # Resume continuations whose clock read completed.
            while self._resumable:
                gen, ev = self._resumable.popleft()
                yield from self._drive(gen, resumed=ev)
            if pending_get is None:
                # A Store.get event is persistent: the claimed item waits
                # in the event until we consume it, so keeping it across
                # loop iterations loses nothing.
                pending_get = self.request_queue.get()
            if not pending_get.triggered:
                if self._resumable:
                    continue
                if self._work.triggered:
                    self._work = Event(self.sim)
                yield AnyOf(self.sim, [pending_get, self._work])
                continue
            item = pending_get.value
            pending_get = None
            envelope, index = item if isinstance(item, tuple) else (item, None)
            if envelope.header.msg_type is MsgType.GET_STATE:
                # State is served at a quiescent point: every admitted
                # execution must finish before the special round runs.
                yield from self._quiesce()
                yield from self.state_transfer.handle_get_state(envelope)
            else:
                self._inflight += 1
                yield from self._drive(self._execute(envelope, index))

    def _drive(self, gen: Generator, resumed: Optional[Event] = None) -> Generator:
        """Step one request execution until it finishes or parks on an
        unresolved clock read.  Non-read events (compute, sleeps) are
        waited for inline — they hold the main thread, as real CPU work
        would."""
        send_value: Any = None
        throw_exc: Optional[BaseException] = None
        if resumed is not None:
            if resumed.ok:
                send_value = resumed.value
            else:
                throw_exc = resumed.value
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    ev = gen.throw(exc)
                else:
                    ev = gen.send(send_value)
                    send_value = None
            except StopIteration:
                self._inflight -= 1
                if self._work is not None and not self._work.triggered:
                    self._work.succeed()
                return
            if getattr(ev, "_cts_read", False):
                if not ev.triggered:
                    ev._add_callback(
                        lambda e, g=gen: self._read_done(g, e)
                    )
                    return
                if ev.ok:
                    send_value = ev.value
                else:
                    throw_exc = ev.value
                continue
            try:
                send_value = yield ev
            except BaseException as exc:
                throw_exc = exc

    def _read_done(self, gen: Generator, ev: Event) -> None:
        """A parked execution's clock read completed: queue it for the
        main loop and wake the loop if it is idle."""
        self._resumable.append((gen, ev))
        if self._work is not None and not self._work.triggered:
            self._work.succeed()

    def _quiesce(self) -> Generator:
        """Run until no admitted execution remains in flight."""
        while self._inflight or self._resumable:
            while self._resumable:
                gen, ev = self._resumable.popleft()
                yield from self._drive(gen, resumed=ev)
            if self._inflight:
                if self._work.triggered:
                    self._work = Event(self.sim)
                yield self._work

    def _enqueue_request(self, envelope: Envelope, index: int) -> None:
        """Queue a delivered request for execution.

        The index joins ``_active_requests`` *here*, not when execution
        starts: a queued request has not issued its clock reads yet, so
        the retained consumed round that covers them must survive until
        it runs.  Were the index added only at execution start, a gap
        between "every running request finished" and "the next queued
        one begins" would let the prune floor jump past the queued
        request and drop the round it needs — a replica that parked the
        operation in time would then serve it a different round's value.
        """
        self._active_requests.add(index)
        self.request_queue.put((envelope, index))

    def _request_finished(self, index: Optional[int]) -> None:
        """Bookkeeping after one request execution: tell the time source
        the lowest request index still active, so it can prune retained
        consumed rounds no future operation can reference."""
        if index is None:
            return
        self._active_requests.discard(index)
        note = getattr(self.time_source, "note_min_active_request", None)
        if note is not None:
            floor = (
                min(self._active_requests)
                if self._active_requests
                else self.request_index + 1
            )
            note(floor)

    def _execute(self, envelope: Envelope, index: Optional[int]) -> Generator:
        invocation = envelope.body
        if index is not None:
            self._active_requests.add(index)
        if trace.TRACER.enabled:
            header = envelope.header
            context = trace.BAGGAGE.get(header.message_id)
            trace.emit(
                "op.execute", self.node_id,
                trace=context.trace_id if context is not None else None,
                op_group=header.src_grp, conn=header.conn_id,
                seq=header.msg_seq_num, req=index,
                method=invocation.method, t=self.sim.now)
        ctx = ReplicaContext(self, self.main_thread_id, request_index=index)
        method = getattr(self.app, invocation.method, None)
        if method is None:
            result = Result(error=f"NoSuchMethod: {invocation.method}")
        else:
            try:
                value = yield from method(ctx, *invocation.args)
                result = Result(value=value)
            except Exception as exc:  # deterministic app error -> caller
                result = Result(error=f"{type(exc).__name__}: {exc}")
        self.stats.requests_processed += 1
        if self._should_reply():
            header = envelope.header
            self.endpoint.mcast(
                make_envelope(
                    MsgType.REPLY,
                    self.group,
                    header.src_grp,
                    header.conn_id,
                    header.msg_seq_num,
                    self.node_id,
                    body=result,
                )
            )
            self.stats.replies_sent += 1
        self._after_execute(envelope, index)
        self._request_finished(index)

    # ------------------------------------------------------------------
    # View plumbing
    # ------------------------------------------------------------------

    def _on_view_change(self, view: GroupView) -> None:
        if not self._join_observed and self.node_id in view.members:
            self._join_observed = True
            if (
                len(view.members) == 1
                and not self.join_existing
                and self._component_primary
            ):
                # Founding is only safe inside the primary component: a
                # lone replica in a minority component (e.g. a daemon
                # whose ring has not yet merged with its peers at cold
                # start) must assume the group already exists elsewhere
                # and synchronize through state transfer instead.
                self.state_transfer.mark_founder()
            else:
                self.state_transfer.request_state()
        self.time_source.on_view_change(view)
        self._view_changed(view)

    # ------------------------------------------------------------------
    # Style hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _handle_request(self, envelope: Envelope, index: int) -> None:
        """Decide what to do with a delivered request."""

    def _should_reply(self) -> bool:
        return True

    def _after_execute(self, envelope: Envelope, index: Optional[int]) -> None:
        """Post-processing hook (checkpointing for passive replication)."""

    def _handle_checkpoint(self, envelope: Envelope) -> None:
        """Periodic checkpoint from a passive primary."""

    def _handle_app_message(self, envelope: Envelope) -> None:
        """Application-defined ordered group message."""

    def _view_changed(self, view: GroupView) -> None:
        """Membership hook (failover for passive replication)."""

    # -- state-transfer integration points -------------------------------

    def checkpoint_index(self) -> int:
        """How many requests the transferred state covers."""
        return self.request_index

    def apply_checkpoint_index(self, index: int) -> None:
        """Adopt the processed-request watermark from a checkpoint."""

    def capture_extra_state(self) -> Any:
        """Style-specific extra state for transfer (e.g. request log)."""
        return None

    def apply_extra_state(self, extra: Any) -> None:
        """Adopt style-specific extra state from a checkpoint."""

    def runs_special_round(self) -> bool:
        """Whether this member performs the special CCS round at a
        GET_STATE quiescent point.  True for styles that process in
        lockstep (active, semi-active); passive backups do not — their
        request-queue position differs from the primary's, so a read
        would consume the wrong buffered round."""
        return True

    def after_state_served(self, checkpoint: Any) -> None:
        """Hook after this member multicast a STATE checkpoint."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.group}@{self.node_id}>"
