"""Binary wire codec for the fault-tolerant protocol messages.

The simulation passes Python objects around and uses per-type
``wire_size()`` *estimates* for the latency model.  For adopters who
want a real wire format — and to sanity-check those estimates — this
module provides a compact, self-describing binary encoding for the
protocol-level messages:

* :class:`~repro.replication.envelope.Envelope` (with header),
* :class:`~repro.core.messages.CCSMessage`,
* :class:`~repro.rpc.messages.Invocation` / ``Result`` (JSON-able args),
* :class:`~repro.core.multigroup.GroupClockStamp`,
* :class:`~repro.replication.state_transfer.Checkpoint` and
  :class:`~repro.core.recovery.TimeTransferState` (state transfer), and
* arbitrary compositions of the above in JSON-able containers, via a
  recursive *value* encoding (the STATE body is a dict holding a
  checkpoint; a passive backup's backlog holds whole envelopes).

Layout: a one-byte type tag, then struct-packed fixed fields, then
length-prefixed UTF-8 strings / JSON blobs.  Integers are little-endian.
Protocol modules outside this one register their own body types with
:func:`register_body_codec` (e.g. the primary-backup baseline's conveyed
clock values), keeping the tag space centralized without import cycles.

This format is what actually crosses the socket in live mode — every
envelope a node transmits goes through :mod:`repro.net.wire`, which
frames the output of :func:`encode_envelope`.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, Tuple

from ..core.messages import CCSMessage
from ..core.multigroup import GroupClockStamp
from ..core.recovery import TimeTransferState
from ..errors import ReproError
from ..rpc.messages import Invocation, Result
from .envelope import Envelope, MessageHeader, MsgType
from .state_transfer import Checkpoint


class CodecError(ReproError):
    """Encoding or decoding failed."""


# -- primitives ----------------------------------------------------------

def _pack_str(value: str) -> bytes:
    data = value.encode("utf-8")
    if len(data) > 0xFFFF:
        raise CodecError(f"string too long ({len(data)} bytes)")
    return struct.pack("<H", len(data)) + data


def _unpack_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    value = buffer[offset:offset + length].decode("utf-8")
    return value, offset + length


def _pack_json(value: Any) -> bytes:
    try:
        data = json.dumps(value, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"body not JSON-encodable: {exc}") from exc
    if len(data) > 0xFFFFFFFF:
        raise CodecError("JSON body too large")
    return struct.pack("<I", len(data)) + data


def _unpack_json(buffer: bytes, offset: int) -> Tuple[Any, int]:
    (length,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    value = json.loads(buffer[offset:offset + length].decode("utf-8"))
    return value, offset + length


# -- body codecs -----------------------------------------------------------

_BODY_TAGS: Dict[type, int] = {}
_BODY_ENCODERS: Dict[int, Tuple[Callable, Callable]] = {}


def _register(tag: int, cls: type, encode: Callable, decode: Callable) -> None:
    _BODY_TAGS[cls] = tag
    _BODY_ENCODERS[tag] = (encode, decode)


def _encode_none(_body: None) -> bytes:
    return b""


def _decode_none(_buffer: bytes, offset: int) -> Tuple[None, int]:
    return None, offset


def _encode_ccs(body: CCSMessage) -> bytes:
    return (
        _pack_str(body.thread_id)
        + struct.pack(
            "<qqB?qq",
            body.round_number,
            body.proposed_micros,
            body.call_type_id,
            body.special,
            body.covers_req,
            body.covers_seq,
        )
    )


def _decode_ccs(buffer: bytes, offset: int) -> Tuple[CCSMessage, int]:
    thread_id, offset = _unpack_str(buffer, offset)
    round_number, micros, call_type_id, special, covers_req, covers_seq = (
        struct.unpack_from("<qqB?qq", buffer, offset)
    )
    offset += struct.calcsize("<qqB?qq")
    return (
        CCSMessage(
            thread_id, round_number, micros, call_type_id, special,
            covers_req, covers_seq,
        ),
        offset,
    )


def _encode_invocation(body: Invocation) -> bytes:
    return _pack_str(body.method) + _pack_json(list(body.args))


def _decode_invocation(buffer: bytes, offset: int) -> Tuple[Invocation, int]:
    method, offset = _unpack_str(buffer, offset)
    args, offset = _unpack_json(buffer, offset)
    return Invocation(method, tuple(args)), offset


def _encode_result(body: Result) -> bytes:
    return _pack_json({"value": body.value, "error": body.error})


def _decode_result(buffer: bytes, offset: int) -> Tuple[Result, int]:
    data, offset = _unpack_json(buffer, offset)
    return Result(value=data["value"], error=data["error"]), offset


def _encode_stamp(body: GroupClockStamp) -> bytes:
    return _pack_str(body.group) + struct.pack("<q", body.micros)


def _decode_stamp(buffer: bytes, offset: int) -> Tuple[GroupClockStamp, int]:
    group, offset = _unpack_str(buffer, offset)
    (micros,) = struct.unpack_from("<q", buffer, offset)
    return GroupClockStamp(group, micros), offset + 8


def _encode_json_body(body: Any) -> bytes:
    return _pack_json(body)


def _decode_json_body(buffer: bytes, offset: int) -> Tuple[Any, int]:
    return _unpack_json(buffer, offset)


# -- recursive value encoding --------------------------------------------
#
# Bodies like the STATE response are containers mixing JSON-able data
# with protocol objects (checkpoints, buffered CCS messages, logged
# envelopes).  The value encoding handles those: each node is a one-byte
# value tag, with registered body types embedded by their body tag.

_V_JSON = 0      # one JSON chunk (the whole subtree is JSON-able)
_V_LIST = 1      # sequence of values (tuples decode as lists)
_V_DICT = 2      # mapping: keys and values both encoded as values
_V_BODY = 3      # a registered body type: body tag + its encoding
_V_ENVELOPE = 4  # a whole envelope, length-prefixed


def _pack_value(value: Any) -> bytes:
    tag = _BODY_TAGS.get(type(value))
    if tag is not None and type(value) is not type(None):
        return bytes([_V_BODY, tag]) + _BODY_ENCODERS[tag][0](value)
    if isinstance(value, Envelope):
        data = encode_envelope(value)
        return bytes([_V_ENVELOPE]) + struct.pack("<I", len(data)) + data
    try:
        return bytes([_V_JSON]) + _pack_json(value)
    except CodecError:
        pass
    if isinstance(value, (list, tuple)):
        return bytes([_V_LIST]) + struct.pack("<I", len(value)) + b"".join(
            _pack_value(item) for item in value)
    if isinstance(value, dict):
        return bytes([_V_DICT]) + struct.pack("<I", len(value)) + b"".join(
            _pack_value(key) + _pack_value(item) for key, item in value.items())
    raise CodecError(f"value of type {type(value).__name__} is not wire-encodable")


def _unpack_value(buffer: bytes, offset: int) -> Tuple[Any, int]:
    vtag = buffer[offset]
    offset += 1
    if vtag == _V_JSON:
        return _unpack_json(buffer, offset)
    if vtag == _V_LIST:
        (count,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _unpack_value(buffer, offset)
            items.append(item)
        return items, offset
    if vtag == _V_DICT:
        (count,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        mapping = {}
        for _ in range(count):
            key, offset = _unpack_value(buffer, offset)
            mapping[key], offset = _unpack_value(buffer, offset)
        return mapping, offset
    if vtag == _V_BODY:
        tag = buffer[offset]
        try:
            decoder = _BODY_ENCODERS[tag][1]
        except KeyError:
            raise CodecError(f"unknown body tag {tag} in value") from None
        return decoder(buffer, offset + 1)
    if vtag == _V_ENVELOPE:
        (length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        return decode_envelope(buffer[offset:offset + length]), offset + length
    raise CodecError(f"unknown value tag {vtag}")


def _encode_checkpoint(body: Checkpoint) -> bytes:
    return (
        struct.pack("<qq", body.request_index, body.processed_index)
        + _pack_value(body.app_state)
        + _pack_value(body.time_state)
        + _pack_value(body.extra)
    )


def _decode_checkpoint(buffer: bytes, offset: int) -> Tuple[Checkpoint, int]:
    request_index, processed_index = struct.unpack_from("<qq", buffer, offset)
    offset += 16
    app_state, offset = _unpack_value(buffer, offset)
    time_state, offset = _unpack_value(buffer, offset)
    extra, offset = _unpack_value(buffer, offset)
    return (
        Checkpoint(app_state, request_index, time_state, processed_index, extra),
        offset,
    )


def _pack_opt_int(value) -> bytes:
    if value is None:
        return b"\x00"
    return b"\x01" + struct.pack("<q", value)


def _unpack_opt_int(buffer: bytes, offset: int):
    flag = buffer[offset]
    offset += 1
    if not flag:
        return None, offset
    (value,) = struct.unpack_from("<q", buffer, offset)
    return value, offset + 8


def _encode_time_state(body: TimeTransferState) -> bytes:
    parts = [struct.pack("<H", len(body.rounds))]
    for thread_id in sorted(body.rounds):
        parts.append(_pack_str(thread_id))
        parts.append(struct.pack("<q", body.rounds[thread_id]))
    parts.append(struct.pack("<H", len(body.accepted)))
    for thread_id in sorted(body.accepted):
        parts.append(_pack_str(thread_id))
        parts.append(struct.pack("<q", body.accepted[thread_id]))
    parts.append(struct.pack("<H", len(body.ops)))
    for thread_id in sorted(body.ops):
        op = body.ops[thread_id]
        parts.append(_pack_str(thread_id))
        parts.append(struct.pack("<qq", op[0], op[1]))
    parts.append(struct.pack("<H", len(body.buffered)))
    for thread_id in sorted(body.buffered):
        messages = body.buffered[thread_id]
        parts.append(_pack_str(thread_id))
        parts.append(struct.pack("<H", len(messages)))
        parts.extend(_encode_ccs(message) for message in messages)
    parts.append(_pack_opt_int(body.last_group_us))
    parts.append(_pack_opt_int(body.causal_floor_us))
    return b"".join(parts)


def _decode_time_state(buffer: bytes, offset: int) -> Tuple[TimeTransferState, int]:
    state = TimeTransferState()
    (count,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    for _ in range(count):
        thread_id, offset = _unpack_str(buffer, offset)
        (state.rounds[thread_id],) = struct.unpack_from("<q", buffer, offset)
        offset += 8
    (count,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    for _ in range(count):
        thread_id, offset = _unpack_str(buffer, offset)
        (state.accepted[thread_id],) = struct.unpack_from("<q", buffer, offset)
        offset += 8
    (count,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    for _ in range(count):
        thread_id, offset = _unpack_str(buffer, offset)
        covers_req, covers_seq = struct.unpack_from("<qq", buffer, offset)
        state.ops[thread_id] = (covers_req, covers_seq)
        offset += 16
    (count,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    for _ in range(count):
        thread_id, offset = _unpack_str(buffer, offset)
        (messages,) = struct.unpack_from("<H", buffer, offset)
        offset += 2
        bucket = state.buffered.setdefault(thread_id, [])
        for _ in range(messages):
            message, offset = _decode_ccs(buffer, offset)
            bucket.append(message)
    state.last_group_us, offset = _unpack_opt_int(buffer, offset)
    state.causal_floor_us, offset = _unpack_opt_int(buffer, offset)
    return state, offset


_register(0, type(None), _encode_none, _decode_none)
_register(1, CCSMessage, _encode_ccs, _decode_ccs)
_register(2, Invocation, _encode_invocation, _decode_invocation)
_register(3, Result, _encode_result, _decode_result)
_register(4, GroupClockStamp, _encode_stamp, _decode_stamp)
#: tag 5: any JSON-able body (lists, dicts, strings, numbers).
_JSON_TAG = 5
#: tag 6: recursive value encoding (containers holding protocol objects).
_VALUE_TAG = 6
_register(7, Checkpoint, _encode_checkpoint, _decode_checkpoint)
_register(8, TimeTransferState, _encode_time_state, _decode_time_state)


def register_body_codec(tag: int, cls: type, encode: Callable,
                        decode: Callable) -> None:
    """Register a wire codec for an envelope body type.

    For protocol modules the codec cannot import without a cycle (they
    register themselves at import time).  ``tag`` must be unused and >= 16
    — tags below 16 are reserved for this module.
    """
    if tag < 16:
        raise CodecError(f"body tags below 16 are reserved, got {tag}")
    if tag in _BODY_ENCODERS:
        raise CodecError(f"body tag {tag} already registered")
    if cls in _BODY_TAGS:
        raise CodecError(f"{cls.__name__} already has a body codec")
    _register(tag, cls, encode, decode)


_MSG_TYPES = list(MsgType)


# -- envelope codec ------------------------------------------------------------

def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope (header + sender + tagged body)."""
    header = envelope.header
    body = envelope.body
    tag = _BODY_TAGS.get(type(body))
    if tag is not None:
        payload = _BODY_ENCODERS[tag][0](body)
    else:
        try:
            tag = _JSON_TAG
            payload = _pack_json(body)
        except CodecError:
            # Container mixing JSON data with protocol objects (e.g. the
            # STATE body: {"target": ..., "checkpoint": Checkpoint}).
            tag = _VALUE_TAG
            payload = _pack_value(body)
    return (
        struct.pack("<BqqB", _MSG_TYPES.index(header.msg_type),
                    header.conn_id, header.msg_seq_num, tag)
        + _pack_str(header.src_grp)
        + _pack_str(header.dst_grp)
        + _pack_str(envelope.sender)
        + payload
    )


def decode_envelope(buffer: bytes) -> Envelope:
    """Deserialize :func:`encode_envelope` output."""
    try:
        type_index, conn_id, msg_seq_num, tag = struct.unpack_from(
            "<BqqB", buffer, 0
        )
        offset = struct.calcsize("<BqqB")
        src_grp, offset = _unpack_str(buffer, offset)
        dst_grp, offset = _unpack_str(buffer, offset)
        sender, offset = _unpack_str(buffer, offset)
        if tag == _JSON_TAG:
            body, offset = _unpack_json(buffer, offset)
        elif tag == _VALUE_TAG:
            body, offset = _unpack_value(buffer, offset)
        else:
            try:
                decoder = _BODY_ENCODERS[tag][1]
            except KeyError:
                raise CodecError(f"unknown body tag {tag}") from None
            body, offset = decoder(buffer, offset)
        if offset != len(buffer):
            raise CodecError(
                f"envelope has {len(buffer) - offset} trailing bytes"
            )
        header = MessageHeader(
            _MSG_TYPES[type_index], src_grp, dst_grp, conn_id, msg_seq_num
        )
        return Envelope(header, sender, body)
    except (struct.error, IndexError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise CodecError(f"malformed envelope: {exc}") from exc


def wire_length(envelope: Envelope) -> int:
    """The exact encoded size — for checking the simulation's
    ``wire_size()`` estimates."""
    return len(encode_envelope(envelope))
