"""Binary wire codec for the fault-tolerant protocol messages.

The simulation passes Python objects around and uses per-type
``wire_size()`` *estimates* for the latency model.  For adopters who
want a real wire format — and to sanity-check those estimates — this
module provides a compact, self-describing binary encoding for the
protocol-level messages:

* :class:`~repro.replication.envelope.Envelope` (with header),
* :class:`~repro.core.messages.CCSMessage`,
* :class:`~repro.rpc.messages.Invocation` / ``Result`` (JSON-able args),
* :class:`~repro.core.multigroup.GroupClockStamp`.

Layout: a one-byte type tag, then struct-packed fixed fields, then
length-prefixed UTF-8 strings / JSON blobs.  Integers are little-endian.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, Tuple

from ..core.messages import CCSMessage
from ..core.multigroup import GroupClockStamp
from ..errors import ReproError
from ..rpc.messages import Invocation, Result
from .envelope import Envelope, MessageHeader, MsgType


class CodecError(ReproError):
    """Encoding or decoding failed."""


# -- primitives ----------------------------------------------------------

def _pack_str(value: str) -> bytes:
    data = value.encode("utf-8")
    if len(data) > 0xFFFF:
        raise CodecError(f"string too long ({len(data)} bytes)")
    return struct.pack("<H", len(data)) + data


def _unpack_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    value = buffer[offset:offset + length].decode("utf-8")
    return value, offset + length


def _pack_json(value: Any) -> bytes:
    try:
        data = json.dumps(value, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"body not JSON-encodable: {exc}") from exc
    if len(data) > 0xFFFFFFFF:
        raise CodecError("JSON body too large")
    return struct.pack("<I", len(data)) + data


def _unpack_json(buffer: bytes, offset: int) -> Tuple[Any, int]:
    (length,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    value = json.loads(buffer[offset:offset + length].decode("utf-8"))
    return value, offset + length


# -- body codecs -----------------------------------------------------------

_BODY_TAGS: Dict[type, int] = {}
_BODY_ENCODERS: Dict[int, Tuple[Callable, Callable]] = {}


def _register(tag: int, cls: type, encode: Callable, decode: Callable) -> None:
    _BODY_TAGS[cls] = tag
    _BODY_ENCODERS[tag] = (encode, decode)


def _encode_none(_body: None) -> bytes:
    return b""


def _decode_none(_buffer: bytes, offset: int) -> Tuple[None, int]:
    return None, offset


def _encode_ccs(body: CCSMessage) -> bytes:
    return (
        _pack_str(body.thread_id)
        + struct.pack(
            "<qqB?",
            body.round_number,
            body.proposed_micros,
            body.call_type_id,
            body.special,
        )
    )


def _decode_ccs(buffer: bytes, offset: int) -> Tuple[CCSMessage, int]:
    thread_id, offset = _unpack_str(buffer, offset)
    round_number, micros, call_type_id, special = struct.unpack_from(
        "<qqB?", buffer, offset
    )
    offset += struct.calcsize("<qqB?")
    return (
        CCSMessage(thread_id, round_number, micros, call_type_id, special),
        offset,
    )


def _encode_invocation(body: Invocation) -> bytes:
    return _pack_str(body.method) + _pack_json(list(body.args))


def _decode_invocation(buffer: bytes, offset: int) -> Tuple[Invocation, int]:
    method, offset = _unpack_str(buffer, offset)
    args, offset = _unpack_json(buffer, offset)
    return Invocation(method, tuple(args)), offset


def _encode_result(body: Result) -> bytes:
    return _pack_json({"value": body.value, "error": body.error})


def _decode_result(buffer: bytes, offset: int) -> Tuple[Result, int]:
    data, offset = _unpack_json(buffer, offset)
    return Result(value=data["value"], error=data["error"]), offset


def _encode_stamp(body: GroupClockStamp) -> bytes:
    return _pack_str(body.group) + struct.pack("<q", body.micros)


def _decode_stamp(buffer: bytes, offset: int) -> Tuple[GroupClockStamp, int]:
    group, offset = _unpack_str(buffer, offset)
    (micros,) = struct.unpack_from("<q", buffer, offset)
    return GroupClockStamp(group, micros), offset + 8


def _encode_json_body(body: Any) -> bytes:
    return _pack_json(body)


def _decode_json_body(buffer: bytes, offset: int) -> Tuple[Any, int]:
    return _unpack_json(buffer, offset)


_register(0, type(None), _encode_none, _decode_none)
_register(1, CCSMessage, _encode_ccs, _decode_ccs)
_register(2, Invocation, _encode_invocation, _decode_invocation)
_register(3, Result, _encode_result, _decode_result)
_register(4, GroupClockStamp, _encode_stamp, _decode_stamp)
#: tag 5: any JSON-able body (lists, dicts, strings, numbers).
_JSON_TAG = 5

_MSG_TYPES = list(MsgType)


# -- envelope codec ------------------------------------------------------------

def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope (header + sender + tagged body)."""
    header = envelope.header
    body = envelope.body
    tag = _BODY_TAGS.get(type(body))
    if tag is not None:
        payload = _BODY_ENCODERS[tag][0](body)
    else:
        tag = _JSON_TAG
        payload = _pack_json(body)
    return (
        struct.pack("<BqqB", _MSG_TYPES.index(header.msg_type),
                    header.conn_id, header.msg_seq_num, tag)
        + _pack_str(header.src_grp)
        + _pack_str(header.dst_grp)
        + _pack_str(envelope.sender)
        + payload
    )


def decode_envelope(buffer: bytes) -> Envelope:
    """Deserialize :func:`encode_envelope` output."""
    try:
        type_index, conn_id, msg_seq_num, tag = struct.unpack_from(
            "<BqqB", buffer, 0
        )
        offset = struct.calcsize("<BqqB")
        src_grp, offset = _unpack_str(buffer, offset)
        dst_grp, offset = _unpack_str(buffer, offset)
        sender, offset = _unpack_str(buffer, offset)
        if tag == _JSON_TAG:
            body, offset = _unpack_json(buffer, offset)
        else:
            try:
                decoder = _BODY_ENCODERS[tag][1]
            except KeyError:
                raise CodecError(f"unknown body tag {tag}") from None
            body, offset = decoder(buffer, offset)
        header = MessageHeader(
            _MSG_TYPES[type_index], src_grp, dst_grp, conn_id, msg_seq_num
        )
        return Envelope(header, sender, body)
    except (struct.error, IndexError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise CodecError(f"malformed envelope: {exc}") from exc


def wire_length(envelope: Envelope) -> int:
    """The exact encoded size — for checking the simulation's
    ``wire_size()`` estimates."""
    return len(encode_envelope(envelope))
