"""The execution context handed to replicated application code.

Application methods are written as generators that ``yield`` context
events, e.g.::

    def get_time(ctx):
        yield ctx.compute(50e-6)            # some work
        now = yield ctx.gettimeofday()      # interposed clock read
        return {"sec": now.seconds, "usec": now.microseconds}

The context hides which time source is plugged in: under the consistent
time service ``gettimeofday()`` runs a CCS round; under a baseline it
reads a physical clock.  This mirrors the paper's library
interpositioning, which makes the service "transparent to the
application".
"""

from __future__ import annotations

import math
from typing import Optional, TYPE_CHECKING

from ..sim.clock import ClockValue
from ..sim.kernel import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .replica import Replica

#: Operating systems round sleeps up to a clock tick (paper Section 4.2:
#: "typical sleep system calls are rounded to an integral number of clock
#: ticks ... a multiple of 10 ms").
OS_TICK_S = 0.010


class ReplicaContext:
    """Per-thread facade over the node, scheduler and time source."""

    def __init__(
        self,
        replica: "Replica",
        thread_id: str,
        request_index: Optional[int] = None,
    ):
        self.replica = replica
        self.thread_id = thread_id
        self.node = replica.node
        self.sim = replica.sim
        #: Position of the request being executed in the total order, or
        #: None for dedicated threads.  With a coalescing time source it
        #: identifies each clock read replica-independently as
        #: ``(request_index, read_seq)``.
        self.request_index = request_index
        self._read_seq = 0

    # -- CPU ------------------------------------------------------------

    def compute(self, seconds: float) -> Timeout:
        """Consume ``seconds`` of CPU work (jittered per node)."""
        return self.node.compute(seconds)

    def busy_loop(self, iterations: int) -> Timeout:
        """The paper's empty-iteration delay loop (Section 4.2)."""
        return self.node.busy_loop(iterations)

    def sleep(self, seconds: float) -> Timeout:
        """An OS sleep: rounded *up* to a whole 10 ms scheduler tick,
        which is exactly why the paper uses busy loops for fine delays."""
        ticks = max(1, math.ceil(seconds / OS_TICK_S))
        return self.sim.timeout(ticks * OS_TICK_S)

    # -- interposed clock-related system calls ---------------------------

    def gettimeofday(self, after_us: Optional[int] = None) -> Event:
        """``gettimeofday()``: microsecond granularity.

        ``after_us`` is an optional session floor — the caller's
        last-seen time.  It travels with the (totally ordered) request,
        so every replica serves a value strictly above it: a client that
        echoes each reply into its next call reads monotonically even
        across replica failover and drift-bounded fast-path reads, which
        are otherwise only monotone per replica.
        """
        return self._read("gettimeofday", after_us)

    def time(self) -> Event:
        """``time()``: whole seconds."""
        return self._read("time")

    def ftime(self) -> Event:
        """``ftime()``: millisecond granularity."""
        return self._read("ftime")

    def _read(self, call_name: str, after_us: Optional[int] = None) -> Event:
        source = self.replica.time_source
        kwargs = {}
        if after_us is not None and getattr(
            source, "supports_session_floor", False
        ):
            kwargs["floor_us"] = after_us
        if self.request_index is not None and getattr(
            source, "supports_concurrent_reads", False
        ):
            self._read_seq += 1
            return source.read(
                self.thread_id,
                call_name,
                op_id=(self.request_index, self._read_seq),
                **kwargs,
            )
        return source.read(self.thread_id, call_name, **kwargs)

    # -- instrumentation only ---------------------------------------------

    def physical_clock(self) -> ClockValue:
        """Read the node's raw physical clock, bypassing the time source.

        Only measurement code uses this (e.g. Figure 6 compares the group
        clock against physical clocks); replicated application logic must
        use the interposed calls above or replicas diverge.
        """
        return self.node.read_clock()
