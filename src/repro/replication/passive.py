"""Passive replication: primary/backup with checkpointing and replay.

Only the primary (the oldest member of the group view) processes
requests and sends replies.  Backups log delivered requests and apply
the primary's periodic checkpoints.  When the primary fails, the oldest
surviving backup promotes itself — deterministically, because every
member sees the identical view sequence — restores from the last
checkpoint it applied, and replays its logged requests.

Replayed clock-related operations consume the CCS messages the old
primary's rounds produced (they were delivered to the backups too and
sit buffered in the time service), so the new primary reproduces the
exact clock values the old primary saw — this is how the consistent time
service removes the roll-back / fast-forward hazard of plain
primary/backup clock handling (paper Sections 1 and 3.3).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from .. import obs, trace
from .envelope import Envelope, MsgType, make_envelope
from .group import GroupRuntime, GroupView
from .replica import Application, Replica
from .state_transfer import Checkpoint
from .timesource import TimeSource


# -- observability instruments (zero-cost while the registry is off) ----
M_CHECKPOINTS = obs.REGISTRY.counter(
    "replication_checkpoints_total", "checkpoints multicast by a primary")
M_CHECKPOINT_BYTES = obs.REGISTRY.histogram(
    "replication_checkpoint_bytes", "estimated checkpoint wire size",
    unit="bytes", buckets=(64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536))
M_PROMOTIONS = obs.REGISTRY.counter(
    "replication_promotions_total", "backup-to-primary promotions")
M_TAKEOVER_LATENCY = obs.REGISTRY.histogram(
    "replication_takeover_latency_s",
    "last evidence of the old primary to promotion of the new one",
    unit="s",
    buckets=(0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0))
M_REPLAY_DEPTH = obs.REGISTRY.histogram(
    "replication_promotion_replay_depth",
    "logged requests replayed at promotion",
    buckets=(0, 1, 2, 5, 10, 25, 50, 100, 250))


class PassiveReplica(Replica):
    """A member of a passively replicated (primary/backup) group."""

    style = "passive"

    #: Passive primaries take periodic checkpoints *between* requests;
    #: overlapping executions could capture a torn snapshot mid-request,
    #: so the primary executes strictly serially.  (Reads still coalesce
    #: when several arrive while one blocks elsewhere, e.g. at replay.)
    supports_pipelining = False

    def __init__(
        self,
        runtime: GroupRuntime,
        group: str,
        app: Application,
        time_source_factory: Callable[[Replica], TimeSource],
        *,
        checkpoint_interval: int = 10,
        join_existing: bool = False,
    ):
        super().__init__(
            runtime, group, app, time_source_factory, join_existing=join_existing
        )
        self.checkpoint_interval = checkpoint_interval
        #: Backup-side log of delivered-but-unprocessed requests.
        self.request_log: List[Tuple[int, Envelope]] = []
        #: Highest request index incorporated into our state (processed
        #: if primary; covered by an applied checkpoint if backup).
        self.processed_index = 0
        self._was_primary = False
        #: Simulated time of the last evidence of a *different* primary
        #: (view membership or an applied checkpoint) — the baseline for
        #: the failover takeover-latency measurement.
        self._primary_evidence_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _handle_request(self, envelope: Envelope, index: int) -> None:
        if self.is_primary:
            self._enqueue_request(envelope, index)
        else:
            self.request_log.append((index, envelope))
            self.stats.requests_logged += 1

    def _should_reply(self) -> bool:
        # Failovers mid-request: the reply decision uses the *current*
        # primaryship, so a freshly promoted backup answers the requests
        # it replays.
        return self.is_primary

    def _after_execute(self, envelope: Envelope, index: Optional[int]) -> None:
        if index is not None:
            self.processed_index = index
        if (
            self.is_primary
            and self.checkpoint_interval > 0
            and index is not None
            and index % self.checkpoint_interval == 0
        ):
            self._send_checkpoint()

    def _send_checkpoint(self) -> None:
        checkpoint = Checkpoint(
            app_state=self.app.get_state(),
            request_index=self.request_index,
            # Round counters let backups discard CCS messages whose
            # values are already baked into the checkpointed state.
            time_state=self.time_source.get_transfer_state(),
            processed_index=self.processed_index,
        )
        envelope = make_envelope(
            MsgType.CHECKPOINT,
            self.group,
            self.group,
            0,
            self.processed_index,
            self.node_id,
            body=checkpoint,
        )
        self.endpoint.mcast(envelope)
        self.stats.checkpoints_sent += 1
        if obs.REGISTRY.enabled:
            M_CHECKPOINTS.inc(node=self.node_id)
            M_CHECKPOINT_BYTES.observe(envelope.wire_size(),
                                       node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "replica.checkpoint", self.node_id, group=self.group,
                covers=self.processed_index,
            )

    def _handle_checkpoint(self, envelope: Envelope) -> None:
        if envelope.sender == self.node_id:
            return  # our own checkpoint echoed back
        self._primary_evidence_at = self.sim.now
        checkpoint: Checkpoint = envelope.body
        self.app.set_state(checkpoint.app_state)
        self.processed_index = checkpoint.processed_index
        if checkpoint.time_state is not None:
            self.time_source.fast_forward(checkpoint.time_state)
        self.request_log = [
            (index, env)
            for index, env in self.request_log
            if index > checkpoint.processed_index
        ]
        self.stats.checkpoints_applied += 1

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def _view_changed(self, view: GroupView) -> None:
        if self.is_primary and not self._was_primary and self.state_transfer.ready:
            self._promote()
        elif view.primary is not None and view.primary != self.node_id:
            self._primary_evidence_at = self.sim.now
        self._was_primary = self.is_primary

    def _promote(self) -> None:
        """Become the primary: replay logged requests beyond the last
        checkpoint, then continue with live traffic."""
        self.stats.promotions += 1
        backlog = [
            (index, env) for index, env in self.request_log
            if index > self.processed_index
        ]
        if obs.REGISTRY.enabled:
            M_PROMOTIONS.inc(node=self.node_id)
            M_REPLAY_DEPTH.observe(len(backlog), node=self.node_id)
            if self._primary_evidence_at is not None:
                M_TAKEOVER_LATENCY.observe(
                    self.sim.now - self._primary_evidence_at,
                    node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "replica.promote", self.node_id, group=self.group,
                replay_from=self.processed_index, replay_depth=len(backlog),
                t=self.sim.now,
            )
        self.request_log = []
        for index, envelope in backlog:
            self._enqueue_request(envelope, index)

    # ------------------------------------------------------------------
    # State transfer integration
    # ------------------------------------------------------------------

    def checkpoint_index(self) -> int:
        return self.processed_index

    def apply_checkpoint_index(self, index: int) -> None:
        self.processed_index = index

    def runs_special_round(self) -> bool:
        # Backups' request-queue position differs from the primary's, so
        # only the primary performs the special round (its CCS message
        # still reaches the recovering replica for clock integration).
        return self.is_primary

    def after_state_served(self, checkpoint: Checkpoint) -> None:
        # Serving a state transfer produced a fresh checkpoint anyway:
        # broadcast it so backups fast-forward past the special round.
        self._send_checkpoint()

    def capture_extra_state(self) -> Any:
        """Hand a joiner the backlog its checkpoint does not cover."""
        if self.is_primary:
            return []
        return [
            (index, env) for index, env in self.request_log
            if index > self.processed_index
        ]

    def apply_extra_state(self, extra: Any) -> None:
        if extra:
            self.request_log = list(extra)
