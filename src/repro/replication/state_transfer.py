"""State transfer to joining / recovering replicas (paper Section 3.2,
"Integration of New Clocks").

Protocol, all in the total order:

1. The recovering replica multicasts ``GET_STATE`` and starts queuing
   application messages it cannot process yet.
2. Existing replicas process ``GET_STATE`` *through the normal request
   queue*, so it executes at a quiescent point — after every earlier
   request completes and before any later one starts.
3. At that point each existing replica performs one clock-related
   operation (the **special CCS round**: "the mechanisms at the existing
   replicas take a clock value immediately before the checkpoint"), then
   the designated member (the view primary) takes a checkpoint and
   multicasts ``STATE``.
4. The recovering replica does not compete in the special round; it
   adjusts its clock offset as soon as a winning CCS message arrives
   (handled inside the time service), applies the checkpoint — app state,
   request counter and per-thread CCS round numbers — and only then
   processes its queued messages.

The group clock therefore stays monotone and consistent across the
addition of the new clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from .. import obs, trace
from ..errors import StateTransferError
from .envelope import Envelope, MsgType, make_envelope

if TYPE_CHECKING:  # pragma: no cover
    from .replica import Replica


@dataclass
class Checkpoint:
    """Everything a recovering replica needs to become a full member."""

    app_state: Any
    request_index: int
    time_state: Any = None
    #: Passive replication: how many requests the checkpointed state covers.
    processed_index: int = 0
    #: Style-specific extra state (e.g. a passive backup's request log).
    extra: Any = None

    def wire_size(self) -> int:
        return 256


#: Recovery phases: messages before our own GET_STATE are covered by the
#: checkpoint (discard); messages after it are queued for replay.
DISCARDING = "discarding"
QUEUING = "queuing"
READY = "ready"

# -- observability instruments (zero-cost while the registry is off) ----
M_TRANSFERS_SERVED = obs.REGISTRY.counter(
    "replication_state_transfers_served_total",
    "checkpoints served to recovering replicas")
M_TRANSFERS_APPLIED = obs.REGISTRY.counter(
    "replication_state_transfers_applied_total",
    "checkpoints adopted by recovering replicas")
M_TRANSFER_BYTES = obs.REGISTRY.histogram(
    "replication_state_transfer_bytes",
    "estimated state-transfer wire size", unit="bytes",
    buckets=(64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536))
M_TRANSFER_LATENCY = obs.REGISTRY.histogram(
    "replication_state_transfer_latency_s",
    "GET_STATE request to checkpoint adoption", unit="s",
    buckets=(0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0))


class StateTransferManager:
    """Handles GET_STATE / STATE for one replica."""

    def __init__(self, replica: "Replica"):
        self.replica = replica
        self.phase = DISCARDING
        #: Messages buffered between GET_STATE and STATE.
        self.pending: List[Envelope] = []
        self.transfers_served = 0
        #: Simulated time of our last GET_STATE request (latency metric).
        self._requested_at: Optional[float] = None

    @property
    def ready(self) -> bool:
        return self.phase == READY

    # -- joining side -----------------------------------------------------

    def mark_founder(self) -> None:
        """The first member of a group starts with valid (initial) state."""
        self.phase = READY

    #: If no checkpoint arrives within this long and we turn out to be
    #: the only member, the group died entirely: found it afresh.
    FOUNDER_FALLBACK_S = 1.0

    def request_state(self) -> None:
        """Ask the group for a checkpoint (recovering replica)."""
        replica = self.replica
        if self._requested_at is None:
            self._requested_at = replica.sim.now
        replica.time_source.begin_recovery()
        replica.endpoint.mcast(
            make_envelope(
                MsgType.GET_STATE,
                replica.group,
                replica.group,
                0,
                0,
                replica.node_id,
                body={"target": replica.node_id},
            )
        )
        replica.sim.schedule(self.FOUNDER_FALLBACK_S, self._founder_fallback)

    def _founder_fallback(self) -> None:
        """No existing member answered: if we really are alone, the whole
        group failed — found it afresh with initial state."""
        if self.ready or not self.replica.node.alive:
            return
        if (
            tuple(self.replica.endpoint.view.members)
            != (self.replica.node_id,)
            or not self.replica._component_primary
        ):
            # Others exist, or we sit in a minority component where the
            # group may be running without us (live cold start before
            # the rings merge): a transfer should still be coming.
            # Re-ask in case our GET_STATE raced a membership change.
            self.request_state()
            return
        self.replica.time_source.finish_recovery()
        self.phase = READY
        pending, self.pending = self.pending, []
        for queued in pending:
            self.replica.dispatch(queued)

    def restart(self) -> None:
        """Drop our (stale) readiness and recover afresh — used when a
        replica re-enters the primary component after a partition during
        which other members kept processing."""
        self.phase = DISCARDING
        self.pending = []
        self._requested_at = None
        # Any clock operation still blocked belongs to the abandoned
        # protocol position; replaying it would consume the wrong round.
        self.replica.time_source.abort_in_flight()
        self.request_state()

    def begin_queuing(self) -> None:
        """Our own GET_STATE was delivered: the checkpoint will cover the
        total order up to this point; queue everything after it."""
        if self.phase == DISCARDING:
            self.phase = QUEUING

    def observe_while_recovering(self, envelope: Envelope) -> None:
        """A message arrived before we hold state: queue or discard."""
        if self.phase == QUEUING:
            self.pending.append(envelope)

    def on_state(self, envelope: Envelope) -> None:
        """A checkpoint arrived; adopt it if it is addressed to us."""
        if self.ready:
            return
        body = envelope.body
        if body["target"] != self.replica.node_id:
            return
        checkpoint: Checkpoint = body["checkpoint"]
        replica = self.replica
        replica.app.set_state(checkpoint.app_state)
        replica.request_index = checkpoint.request_index
        replica.apply_checkpoint_index(checkpoint.processed_index)
        replica.apply_extra_state(checkpoint.extra)
        if checkpoint.time_state is not None:
            replica.time_source.set_transfer_state(checkpoint.time_state)
        replica.time_source.finish_recovery()
        self.phase = READY
        if obs.REGISTRY.enabled:
            M_TRANSFERS_APPLIED.inc(node=replica.node_id)
            if self._requested_at is not None:
                M_TRANSFER_LATENCY.observe(
                    replica.sim.now - self._requested_at,
                    node=replica.node_id)
        self._requested_at = None
        if trace.TRACER.enabled:
            trace.emit(
                "state.applied", replica.node_id, group=replica.group,
                request_index=checkpoint.request_index,
                replayed=len(self.pending), t=replica.sim.now,
            )
        pending, self.pending = self.pending, []
        for queued in pending:
            replica.dispatch(queued)

    # -- serving side --------------------------------------------------------

    def handle_get_state(self, envelope: Envelope):
        """Generator run in the main thread at the quiescent point."""
        replica = self.replica
        target = envelope.body["target"]
        if target == replica.node_id:
            return  # our own request echoed back; nothing to serve
        if not self.ready:
            return  # we are recovering ourselves; someone else serves
        # Special CCS round: a clock value immediately before the checkpoint.
        if replica.runs_special_round():
            if getattr(replica.time_source, "supports_concurrent_reads", False):
                # A locally-served fast-path value would skip the round the
                # recovering replica integrates its clock from: force one.
                yield replica.time_source.read(
                    replica.main_thread_id, "gettimeofday", fast_ok=False
                )
            else:
                yield replica.time_source.read(
                    replica.main_thread_id, "gettimeofday"
                )
        # The designated member (view primary, excluding the target) sends.
        members = [m for m in replica.endpoint.view.members if m != target]
        if not members or members[0] != replica.node_id:
            return
        checkpoint = Checkpoint(
            app_state=replica.app.get_state(),
            request_index=replica.request_index,
            time_state=replica.time_source.get_transfer_state(),
            processed_index=replica.checkpoint_index(),
            extra=replica.capture_extra_state(),
        )
        self.transfers_served += 1
        envelope = make_envelope(
            MsgType.STATE,
            replica.group,
            replica.group,
            0,
            self.transfers_served,
            replica.node_id,
            body={"target": target, "checkpoint": checkpoint},
        )
        replica.endpoint.mcast(envelope)
        if obs.REGISTRY.enabled:
            M_TRANSFERS_SERVED.inc(node=replica.node_id)
            M_TRANSFER_BYTES.observe(envelope.wire_size(),
                                     node=replica.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "state.served", replica.node_id, group=replica.group,
                target=target, request_index=checkpoint.request_index,
                t=replica.sim.now,
            )
        replica.after_state_served(checkpoint)
