"""Active replication: every replica processes every request.

All replicas are equal (no primary/backup); all transmit and process
requests and replies concurrently (paper Section 2).  Clients take the
first reply and discard the duplicates.  Correctness requires the
replicas to be deterministic — which is exactly what the consistent time
service provides for clock-related operations.
"""

from __future__ import annotations

from .envelope import Envelope
from .replica import Replica


class ActiveReplica(Replica):
    """A member of an actively replicated group."""

    style = "active"

    def _handle_request(self, envelope: Envelope, index: int) -> None:
        self._enqueue_request(envelope, index)

    def _should_reply(self) -> bool:
        return True
