"""Process groups over Totem: routing, views, and membership.

One :class:`GroupRuntime` runs per node, multiplexing all group traffic
over that node's single Totem processor (the paper runs "one and only
one instance of Totem on each node").  A :class:`GroupEndpoint` is one
group member hosted on a node (e.g. a server replica, or a client's
singleton group).

Group views are derived deterministically from the total order: replicas
announce themselves with a ``GROUP_JOIN`` message; Totem configuration
changes remove members on departed nodes.  Because every node observes
the identical sequence of ordered messages and configuration changes,
every node computes the identical sequence of views — which is what lets
passive replication pick the same new primary everywhere without further
agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReplicationError
from ..totem.messages import ConfigurationChange
from ..totem.ring import TotemProcessor
from .envelope import Envelope, MsgType, make_envelope


@dataclass(frozen=True)
class GroupView:
    """One group's membership at a point in the total order.

    ``members`` are node ids in *join order*; the first member is the
    primary for primary/backup styles (oldest-member-wins succession).
    """

    group: str
    view_id: int
    members: Tuple[str, ...]

    @property
    def primary(self) -> Optional[str]:
        return self.members[0] if self.members else None

    def __str__(self) -> str:
        return f"view({self.group}#{self.view_id}: {','.join(self.members)})"


class GroupEndpoint:
    """One group member on one node.

    Wire callbacks (all optional):

    * ``on_message(envelope)``      — ordered group message for this group.
    * ``on_view_change(view)``      — this group's membership changed.
    * ``on_config_change(change)``  — raw Totem configuration change
      (delivered to every endpoint; carries the primary-component flag).
    """

    def __init__(self, runtime: "GroupRuntime", group: str):
        self.runtime = runtime
        self.group = group
        self.node_id = runtime.node_id
        self.view = GroupView(group, 0, ())
        self.on_message: Optional[Callable[[Envelope], None]] = None
        self.on_view_change: Optional[Callable[[GroupView], None]] = None
        self.on_config_change: Optional[Callable[[ConfigurationChange], None]] = None
        #: Raw (pre-ordering) observation of a group message, used for
        #: early duplicate suppression in the time service.
        self.on_raw_message: Optional[Callable[[Envelope], None]] = None
        self.joined = False

    # -- membership ------------------------------------------------------

    def join(self) -> None:
        """Announce this member to the group (totally ordered, so every
        node sees joins in the same order)."""
        if self.joined:
            return
        self.joined = True
        self.runtime.mcast(
            make_envelope(
                MsgType.GROUP_JOIN, self.group, self.group, 0, 0, self.node_id
            )
        )

    def leave(self) -> None:
        """Voluntarily leave the group."""
        if not self.joined:
            return
        self.joined = False
        self.runtime.mcast(
            make_envelope(
                MsgType.GROUP_LEAVE, self.group, self.group, 0, 0, self.node_id
            )
        )

    @property
    def is_primary(self) -> bool:
        """True if this member heads the current view."""
        return self.view.primary == self.node_id

    # -- messaging ---------------------------------------------------------

    def mcast(self, envelope: Envelope) -> None:
        """Multicast an envelope into the total order."""
        self.runtime.mcast(envelope)

    def cancel_pending(self, predicate: Callable[[Envelope], bool]) -> int:
        """Withdraw queued-but-unsent envelopes (duplicate suppression)."""
        return self.runtime.cancel_pending(predicate)


class GroupRuntime:
    """Per-node multiplexer of group traffic over the Totem processor."""

    def __init__(self, processor: TotemProcessor):
        self.processor = processor
        self.node_id = processor.me
        self.sim = processor.sim
        self._endpoints: Dict[str, GroupEndpoint] = {}
        #: group -> ordered member list (maintained on ALL nodes, even
        #: those not hosting an endpoint, so late joiners see consistent
        #: views the moment they register).
        self._views: Dict[str, List[str]] = {}
        self._view_ids: Dict[str, int] = {}
        processor.on_deliver = self._on_deliver
        processor.on_config_change = self._on_config_change
        processor.on_raw_message = self._on_raw_message

    # -- endpoint management ---------------------------------------------

    def endpoint(self, group: str) -> GroupEndpoint:
        """Create (or fetch) the endpoint for ``group`` on this node."""
        if group not in self._endpoints:
            endpoint = GroupEndpoint(self, group)
            members = self._views.get(group, [])
            endpoint.view = GroupView(
                group, self._view_ids.get(group, 0), tuple(members)
            )
            self._endpoints[group] = endpoint
        return self._endpoints[group]

    def remove_endpoint(self, group: str) -> None:
        self._endpoints.pop(group, None)

    # -- transmission --------------------------------------------------------

    def mcast(self, envelope: Envelope) -> None:
        self.processor.mcast(envelope)

    def cancel_pending(self, predicate: Callable[[Envelope], bool]) -> int:
        return self.processor.cancel_pending(
            lambda payload: isinstance(payload, Envelope) and predicate(payload)
        )

    # -- delivery ----------------------------------------------------------------

    def _on_deliver(self, msg) -> None:
        envelope = msg.payload
        if not isinstance(envelope, Envelope):
            raise ReplicationError(f"non-envelope payload in total order: {envelope!r}")
        msg_type = envelope.header.msg_type
        if msg_type is MsgType.GROUP_JOIN:
            self._apply_join(envelope.header.src_grp, envelope.sender)
        elif msg_type is MsgType.GROUP_LEAVE:
            self._apply_leave(envelope.header.src_grp, envelope.sender)
        elif msg_type is MsgType.VIEW_SYNC:
            self._apply_view_sync(envelope.header.src_grp, list(envelope.body))
        else:
            target = self._endpoints.get(envelope.header.dst_grp)
            if target is not None and target.on_message is not None:
                target.on_message(envelope)

    def _on_raw_message(self, payload) -> None:
        if not isinstance(payload, Envelope):
            return
        target = self._endpoints.get(payload.header.dst_grp)
        if target is not None and target.on_raw_message is not None:
            target.on_raw_message(payload)

    def _apply_join(self, group: str, node_id: str) -> None:
        members = self._views.setdefault(group, [])
        if node_id not in members:
            prev = tuple(members)
            members.append(node_id)
            self._bump_view(group, sync=True, prev_members=prev)

    def _apply_leave(self, group: str, node_id: str) -> None:
        members = self._views.get(group, [])
        if node_id in members:
            prev = tuple(members)
            members.remove(node_id)
            self._bump_view(group, sync=True, prev_members=prev)

    def _apply_view_sync(self, group: str, members: List[str]) -> None:
        """Adopt the full member list published by the group's primary.

        A node that joined the total order late missed earlier
        ``GROUP_JOIN`` messages; the sync (ordered after the join that
        triggered it, with content derived purely from delivery-order
        state) converges every node to the identical view.
        """
        if self._views.get(group, []) != members:
            self._views[group] = list(members)
            self._bump_view(group, sync=False)

    def _on_config_change(self, change: ConfigurationChange) -> None:
        # Notify endpoints BEFORE pruning views: suspension logic needs
        # to snapshot the group membership as it stood when the
        # configuration changed, not the already-pruned view.
        for endpoint in list(self._endpoints.values()):
            if endpoint.on_config_change is not None:
                endpoint.on_config_change(change)
        # Drop group members whose node left the configuration.
        alive = set(change.members)
        for group, members in self._views.items():
            surviving = [m for m in members if m in alive]
            if surviving != members:
                prev = tuple(members)
                self._views[group] = surviving
                self._bump_view(group, sync=True, prev_members=prev)
        for endpoint in list(self._endpoints.values()):
            # Re-announce membership after every configuration change:
            # a member that sat on the other side of a partition was
            # pruned from the other component's views and cannot know it,
            # so every joined endpoint re-joins (idempotent at receivers
            # that still list it); the authoritative VIEW_SYNC then
            # re-converges everyone's member order.
            if endpoint.joined:
                self.mcast(
                    make_envelope(
                        MsgType.GROUP_JOIN, endpoint.group, endpoint.group,
                        0, 0, self.node_id,
                    )
                )

    def _bump_view(self, group: str, *, sync: bool, prev_members=()) -> None:
        self._view_ids[group] = self._view_ids.get(group, 0) + 1
        members = tuple(self._views[group])
        endpoint = self._endpoints.get(group)
        if endpoint is not None:
            endpoint.view = GroupView(group, self._view_ids[group], members)
            if endpoint.on_view_change is not None:
                endpoint.on_view_change(endpoint.view)
            # The primary republishes the authoritative member list after
            # every membership event so late joiners converge.  Only a
            # node that was already a member before the event qualifies —
            # a joiner that missed history must never elect itself and
            # clobber the real view.
            if (
                sync
                and endpoint.joined
                and members
                and members[0] == self.node_id
                and self.node_id in prev_members
            ):
                self.mcast(
                    make_envelope(
                        MsgType.VIEW_SYNC, group, group, 0, 0, self.node_id,
                        body=list(members),
                    )
                )
