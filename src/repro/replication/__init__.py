"""Replication infrastructure over Totem (S7-S8 in DESIGN.md).

Process groups, group views, the replica runtime with its deterministic
thread scheduler, the three replication styles the paper targets
(active, passive, semi-active) and state transfer for joining or
recovering replicas.
"""

from .active import ActiveReplica
from .context import OS_TICK_S, ReplicaContext
from .envelope import Envelope, MessageHeader, MsgType, make_envelope
from .group import GroupEndpoint, GroupRuntime, GroupView
from .passive import PassiveReplica
from .replica import Application, Replica, ReplicaStats
from .scheduler import LogicalThread, ThreadManager
from .semiactive import SemiActiveReplica
from .state_transfer import Checkpoint, StateTransferManager
from .timesource import TimeSource

__all__ = [
    "ActiveReplica",
    "Application",
    "Checkpoint",
    "Envelope",
    "GroupEndpoint",
    "GroupRuntime",
    "GroupView",
    "LogicalThread",
    "MessageHeader",
    "MsgType",
    "OS_TICK_S",
    "PassiveReplica",
    "Replica",
    "ReplicaContext",
    "ReplicaStats",
    "SemiActiveReplica",
    "StateTransferManager",
    "ThreadManager",
    "TimeSource",
    "make_envelope",
]
