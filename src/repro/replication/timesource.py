"""The time-source interface replicas read their clocks through.

Application code never touches the node's hardware clock directly; every
clock-related operation goes through the replica's :class:`TimeSource`
(the simulation counterpart of the paper's library interpositioning of
``gettimeofday()`` and friends).  Implementations:

* :class:`repro.core.time_service.ConsistentTimeService` — the paper's
  contribution (group clock via CCS rounds).
* :class:`repro.baselines.local_clock.LocalClockSource` — raw physical
  clocks (the broken status quo of Figure 1).
* :class:`repro.baselines.primary_backup.PrimaryBackupClockSource` — the
  related-work approach ([9], [3]): primary reads its clock and conveys
  the value.
* :class:`repro.baselines.ntp.NtpDisciplinedSource` — software clock
  synchronization; clocks agree within a bound but reads still diverge.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..totem.messages import ConfigurationChange
    from .envelope import Envelope
    from .group import GroupView


class TimeSource(abc.ABC):
    """Pluggable provider of clock readings for one replica."""

    #: Human-readable name used in experiment reports.
    name = "abstract"

    #: True when the source can serve overlapping reads on one thread
    #: (the consistent time service with coalesced rounds).  The replica
    #: runtime pipelines request execution only when this is set; sources
    #: that support it accept an ``op_id`` keyword identifying each
    #: operation replica-independently.
    supports_concurrent_reads = False

    @abc.abstractmethod
    def read(self, thread_id: str, call_name: str = "gettimeofday") -> Event:
        """Begin one clock-related operation on behalf of ``thread_id``.

        Returns a simulation event that fires with the
        :class:`~repro.sim.clock.ClockValue` result.  ``call_name`` names
        the interposed system call (``gettimeofday``, ``time`` or
        ``ftime``) and controls the granularity of the returned value.
        """

    # -- protocol plumbing (no-ops for sources that need none) -----------

    def handle_ccs(self, envelope: "Envelope") -> None:
        """An ordered CCS control message arrived for this replica."""

    def handle_raw_ccs(self, envelope: "Envelope") -> None:
        """A CCS message was *observed* on the wire before ordering
        completed (early duplicate-suppression opportunity)."""

    def on_view_change(self, view: "GroupView") -> None:
        """The replica's group membership view changed."""

    def on_config_change(self, change: "ConfigurationChange") -> None:
        """A Totem configuration change was delivered."""

    # -- state transfer (Section 3.2, "Integration of New Clocks") -------

    def abort_in_flight(self) -> None:
        """Abort clock operations blocked mid-round.

        Called when a replica abandons its current protocol position
        (e.g. rejoining the primary component after a partition): blocked
        operations fail with :class:`~repro.errors.TimeServiceError`,
        which the request executor surfaces as an application error."""

    def begin_recovery(self) -> None:
        """This replica is recovering: adopt the group clock from the
        CCS messages that arrive (the special round), do not compete."""

    def finish_recovery(self) -> None:
        """State transfer completed; resume normal operation."""

    def get_transfer_state(self) -> object:
        """Replica-independent time-service state for a checkpoint
        (per-thread round numbers etc. — never clock offsets, which are
        derived from each replica's own physical clock)."""
        return None

    def set_transfer_state(self, state: object) -> None:
        """Adopt time-service state from a checkpoint."""

    def fast_forward(self, state: object) -> None:
        """Skip past rounds a periodic checkpoint's state already covers
        (passive replication)."""
