"""Fault-tolerant protocol message envelope.

Every message exchanged above Totem carries the common header the paper
describes (Section 3.1): message type, source group, destination group,
connection identifier and per-connection sequence number.  For a regular
user message, ``(src_grp, dst_grp, conn_id)`` identifies a connection and
``msg_seq_num`` a message within it; for a CCS message, ``msg_seq_num``
carries the consistent-clock-synchronization round number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Tuple


class MsgType(enum.Enum):
    """Message types of the fault-tolerant protocol layer."""

    REQUEST = "request"          # remote method invocation
    REPLY = "reply"              # invocation result
    CCS = "ccs"                  # Consistent Clock Synchronization control
    GROUP_JOIN = "group_join"    # replica announces itself to its group
    GROUP_LEAVE = "group_leave"  # replica leaves voluntarily
    VIEW_SYNC = "view_sync"      # primary re-publishes the full member list
    GET_STATE = "get_state"      # recovering replica requests a checkpoint
    STATE = "state"              # checkpoint transfer to a recovering replica
    CHECKPOINT = "checkpoint"    # passive replication periodic checkpoint
    APP = "app"                  # application-defined group message


@dataclass(frozen=True)
class MessageHeader:
    """The common fault-tolerant protocol message header."""

    msg_type: MsgType
    src_grp: str
    dst_grp: str
    conn_id: int
    msg_seq_num: int

    @property
    def message_id(self) -> Tuple[str, str, int, int]:
        """The fields that uniquely determine a message within the
        distributed system (paper Section 3.1)."""
        return (self.src_grp, self.dst_grp, self.conn_id, self.msg_seq_num)


@dataclass(frozen=True)
class Envelope:
    """Header plus body plus the sending node, as multicast via Totem."""

    header: MessageHeader
    sender: str  # node id of the transmitting replica
    body: Any = None

    def wire_size(self) -> int:
        body_size = getattr(self.body, "wire_size", lambda: 96)()
        return 40 + body_size

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        h = self.header
        return (
            f"{h.msg_type.value}[{h.src_grp}->{h.dst_grp} conn={h.conn_id} "
            f"seq={h.msg_seq_num} from={self.sender}]"
        )


def make_envelope(
    msg_type: MsgType,
    src_grp: str,
    dst_grp: str,
    conn_id: int,
    msg_seq_num: int,
    sender: str,
    body: Any = None,
) -> Envelope:
    """Convenience constructor used throughout the upper layers."""
    return Envelope(
        MessageHeader(msg_type, src_grp, dst_grp, conn_id, msg_seq_num),
        sender,
        body,
    )
