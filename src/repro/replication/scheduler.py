"""Deterministic logical-thread management for replicas.

The paper (Section 2) requires that "all threads that perform
clock-related operations are created during the initialization of a
replica, or during runtime, in the same order at different replicas" —
logical thread identity must match across replicas so CCS messages can
be matched to the right per-thread handler everywhere.

:class:`ThreadManager` assigns deterministic thread identifiers from the
creation order (``"0:main"``, ``"1:timer"``, …).  As long as replicas
execute the same deterministic program, they create the same logical
threads in the same order and the identifiers line up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..errors import ReplicationError
from ..sim.kernel import Process
from ..sim.node import Node


@dataclass
class LogicalThread:
    """One application-level thread within a replica."""

    thread_id: str
    name: str
    process: Optional[Process] = None

    @property
    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive


class ThreadManager:
    """Creates logical threads with replica-consistent identifiers."""

    def __init__(self, node: Node, owner: str):
        self.node = node
        self.owner = owner
        self._threads: Dict[str, LogicalThread] = {}
        self._creation_order: List[str] = []

    def create(
        self,
        name: str,
        generator_factory: Optional[Callable[[], Generator]] = None,
    ) -> LogicalThread:
        """Create logical thread ``name``; optionally start its body.

        The thread identifier embeds the creation index, so replicas that
        create threads in the same order agree on every identifier (the
        property the consistent time service relies on to route CCS
        messages to the right handler).
        """
        thread_id = f"{len(self._creation_order)}:{name}"
        if thread_id in self._threads:
            raise ReplicationError(f"thread {thread_id!r} already exists")
        thread = LogicalThread(thread_id, name)
        self._threads[thread_id] = thread
        self._creation_order.append(thread_id)
        if generator_factory is not None:
            thread.process = self.node.spawn(
                generator_factory(), name=f"{self.owner}:{name}"
            )
        return thread

    def get(self, thread_id: str) -> Optional[LogicalThread]:
        return self._threads.get(thread_id)

    @property
    def thread_ids(self) -> List[str]:
        """All thread ids in creation order."""
        return list(self._creation_order)

    def __len__(self) -> int:
        return len(self._threads)
