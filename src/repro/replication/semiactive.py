"""Semi-active replication (Delta-4 style hybrid, paper Section 2).

Both the primary and the backups process incoming messages, but any
non-deterministic decision is made at the primary and conveyed to the
backups.  Here the non-deterministic decisions are clock readings: the
time source runs in primary-only mode — only the primary multicasts CCS
messages; backups block until the primary's value arrives and adopt it.
Only the primary transmits replies.
"""

from __future__ import annotations

from .envelope import Envelope
from .replica import Replica


class SemiActiveReplica(Replica):
    """A member of a semi-actively replicated group.

    Construct its time source in primary-only mode (e.g.
    ``ConsistentTimeService(..., mode="primary")``) so non-deterministic
    clock decisions flow from the primary, as Delta-4 prescribes.
    """

    style = "semi-active"

    def _handle_request(self, envelope: Envelope, index: int) -> None:
        # Everyone processes (unlike passive replication, backups stay
        # hot and need no replay on failover).
        self._enqueue_request(envelope, index)

    def _should_reply(self) -> bool:
        # Only the primary talks to the outside world.
        return self.is_primary
