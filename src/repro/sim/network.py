"""Simulated local-area network.

Substitutes for the paper's dedicated 100 Mbit/s Ethernet.  The model is
a broadcast LAN: any attached interface can unicast to another interface
or multicast to all of them.  Each delivery experiences

``latency = transmission(size) + propagation + jitter``

with jitter drawn per destination from a seeded stream, plus optional
independent per-destination loss and explicit network partitions (used to
exercise Totem's recovery and primary-component logic).

Determinism: all randomness comes from the stream handed in at
construction, so identical seeds give identical packet timings.

:class:`Network` is the simulated backend of the
:class:`repro.net.transport.Transport` contract; the live counterpart is
:class:`repro.net.udp.UdpTransport`, which carries the same frames over
real UDP sockets.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from .. import obs
from ..errors import NetworkError
from ..net.transport import Transport, TransportPort
from .kernel import Simulator

# -- observability instruments (zero-cost while the registry is off) ----
M_FRAMES_SENT = obs.REGISTRY.counter(
    "net_frames_sent_total", "frames handed to the LAN per interface")
M_BYTES_SENT = obs.REGISTRY.counter(
    "net_bytes_sent_total", "payload bytes handed to the LAN per interface",
    unit="bytes")
M_FRAMES_RECEIVED = obs.REGISTRY.counter(
    "net_frames_received_total", "frames delivered per interface")
M_FRAMES_DROPPED = obs.REGISTRY.counter(
    "net_frames_dropped_total", "frames lost to the configured loss rate")


@dataclass
class LatencyModel:
    """Latency parameters for one LAN segment.

    * ``bandwidth_bps``  — serialization rate (bits per second).
    * ``propagation_s``  — fixed propagation + interrupt/driver cost.
    * ``jitter_mean_s``  — mean of the exponential jitter component
      (queueing in the kernel/NIC); zero disables jitter.
    """

    bandwidth_bps: float = 100e6
    propagation_s: float = 20e-6
    jitter_mean_s: float = 5e-6

    def sample(self, rng: random.Random, size_bytes: int) -> float:
        """Draw one end-to-end latency for a frame of ``size_bytes``."""
        transmission = (size_bytes * 8.0) / self.bandwidth_bps
        jitter = rng.expovariate(1.0 / self.jitter_mean_s) if self.jitter_mean_s > 0 else 0.0
        return transmission + self.propagation_s + jitter


@dataclass
class Frame:
    """One frame on the wire."""

    src: str
    dst: Optional[str]  # None for multicast
    payload: Any
    size_bytes: int
    sent_at: float
    seq: int = field(default=0)


class Interface(TransportPort):
    """A node's attachment point to the network."""

    def __init__(self, network: "Network", node_id: str,
                 deliver: Callable[[Frame], None]):
        self.network = network
        self.node_id = node_id
        self._deliver = deliver
        self.up = True
        # Wire-level statistics, used by the evaluation (e.g. counting CCS
        # messages actually transmitted).
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0

    # -- sending ----------------------------------------------------------

    def unicast(self, dst: str, payload: Any, size_bytes: int = 128) -> None:
        """Send ``payload`` to the interface attached as ``dst``."""
        self._count_send(size_bytes)
        self.network._transmit(Frame(self.node_id, dst, payload, size_bytes,
                                     self.network.sim.now))

    def multicast(self, payload: Any, size_bytes: int = 128) -> None:
        """Send ``payload`` to every attached interface (including the
        sender: UDP multicast loops back, and Totem relies on receiving
        its own broadcasts)."""
        self._count_send(size_bytes)
        self.network._transmit(Frame(self.node_id, None, payload, size_bytes,
                                     self.network.sim.now))

    def _count_send(self, size_bytes: int) -> None:
        if not self.up:
            raise NetworkError(f"interface {self.node_id!r} is down")
        self.frames_sent += 1
        self.bytes_sent += size_bytes
        if obs.REGISTRY.enabled:
            M_FRAMES_SENT.inc(node=self.node_id)
            M_BYTES_SENT.inc(size_bytes, node=self.node_id)

    # -- receiving ----------------------------------------------------------

    def _receive(self, frame: Frame) -> None:
        if not self.up:
            return
        self.frames_received += 1
        if obs.REGISTRY.enabled:
            M_FRAMES_RECEIVED.inc(node=self.node_id)
        self._deliver(frame)


class Network(Transport):
    """The broadcast LAN connecting all simulated nodes."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        *,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.rng = rng
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self._interfaces: Dict[str, Interface] = {}
        #: node_id -> partition component id; missing means component 0.
        self._component: Dict[str, int] = {}
        #: (src, dst) -> latest scheduled arrival: switched Ethernet is
        #: FIFO per source-destination pair, so a later frame never
        #: overtakes an earlier one on the same path.  (Totem relies on
        #: this: the token is forwarded *after* the data messages of the
        #: same visit and must arrive after them.)
        self._last_arrival: Dict[tuple, float] = {}
        self.frames_dropped = 0
        #: Optional per-leg payload mutator ``(src, dst, payload) ->
        #: payload`` applied to every delivery, self-delivery included —
        #: the simulator-side hook for Byzantine injection (lies and
        #: equivocation in the property suites).  Mutators must return
        #: replaced copies, never mutate the shared payload.
        self.mutator: Optional[Callable[[str, str, Any], Any]] = None

    # -- topology -------------------------------------------------------------

    def attach(self, node_id: str, deliver: Callable[[Frame], None]) -> Interface:
        """Attach a node; ``deliver`` is invoked for each arriving frame."""
        if node_id in self._interfaces:
            raise NetworkError(f"node {node_id!r} already attached")
        iface = Interface(self, node_id, deliver)
        self._interfaces[node_id] = iface
        return iface

    def detach(self, node_id: str) -> None:
        """Remove a node's interface (frames in flight are dropped on
        arrival)."""
        iface = self._interfaces.pop(node_id, None)
        if iface is not None:
            iface.up = False

    def partition(self, *components) -> None:
        """Split the network into the given components.

        Each component is an iterable of node ids; unlisted nodes join
        component 0.  Frames only flow within a component.
        """
        self._component = {}
        for index, group in enumerate(components, start=1):
            for node_id in group:
                self._component[node_id] = index

    def heal(self) -> None:
        """Remove all partitions (every node back in one component)."""
        self._component = {}

    def reachable(self, src: str, dst: str) -> bool:
        """True if frames currently flow from ``src`` to ``dst``."""
        return self._component.get(src, 0) == self._component.get(dst, 0)

    # -- transmission ------------------------------------------------------------

    def _transmit(self, frame: Frame) -> None:
        if frame.dst is not None:
            targets = [frame.dst] if frame.dst in self._interfaces else []
        else:
            targets = list(self._interfaces)
        for dst in targets:
            if not self.reachable(frame.src, dst):
                continue
            if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
                self.frames_dropped += 1
                if obs.REGISTRY.enabled:
                    M_FRAMES_DROPPED.inc()
                continue
            delay = self.latency.sample(self.rng, frame.size_bytes)
            # Loopback delivery of one's own multicast is local (no wire).
            if dst == frame.src:
                delay = min(delay, self.latency.propagation_s * 0.1)
            # Enforce per-(src, dst) FIFO ordering.
            arrival = self.sim.now + delay
            key = (frame.src, dst)
            previous = self._last_arrival.get(key, 0.0)
            if arrival <= previous:
                arrival = previous + 1e-9
            self._last_arrival[key] = arrival
            iface = self._interfaces[dst]
            delivered = frame
            if self.mutator is not None:
                payload = self.mutator(frame.src, dst, frame.payload)
                if payload is not frame.payload:
                    delivered = dataclasses.replace(frame, payload=payload)
            self.sim.schedule(arrival - self.sim.now, iface._receive,
                              delivered)
