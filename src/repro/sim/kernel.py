"""Discrete-event simulation kernel.

A tiny, deterministic event-driven simulator in the style of SimPy,
purpose-built for this reproduction:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Timeout` is an event that fires after a virtual delay.
* :class:`Process` wraps a Python generator; each value the generator
  yields must be an :class:`Event`, and the process resumes when that
  event fires.

Determinism: events scheduled for the same virtual time fire in FIFO
order of scheduling (stable sequence numbers break ties), so a run is a
pure function of the root RNG seed and the program.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import Interrupt, ProcessKilled, SimulationError

#: Scheduling priorities: URGENT events (interrupts, kills) pre-empt
#: NORMAL events scheduled for the same virtual time.
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event not yet triggered


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current virtual
    time.  Processes wait on events by ``yield``-ing them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._queue_event(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown
        into them."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._queue_event(self, priority)
        return self

    # -- internal ------------------------------------------------------

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately via the scheduler so
            # late waiters still observe the value.
            self.sim.call_soon(callback, self)
        else:
            self.callbacks.append(callback)

    def _remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after ``delay`` units of virtual time."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        # Triggered lazily when popped from the heap (see Simulator.step),
        # so `triggered` stays False until the delay has elapsed.
        self._delayed_ok = True
        self._delayed_value = value
        sim._queue_event(self, NORMAL, delay=delay)


class Process(Event):
    """A simulated thread of control, driven by a generator.

    The process *is itself an event* that succeeds with the generator's
    return value (or fails with its uncaught exception), so processes can
    wait for each other by yielding a :class:`Process`.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None  # event we are waiting on
        self._alive = True
        # Kick-start on the next scheduler step at the current time.
        start = Event(sim)
        start._delayed_ok = True
        start._delayed_value = None
        start._add_callback(self._resume)
        sim._queue_event(start, NORMAL)

    # -- public --------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is resumed at the current virtual time (URGENT
        priority) even if the event it was waiting on has not fired; it
        may re-yield that event to keep waiting.
        """
        if not self._alive:
            return
        wakeup = Event(self.sim)
        wakeup._delayed_ok = False
        wakeup._delayed_value = Interrupt(cause)
        wakeup._add_callback(self._resume)
        self.sim._queue_event(wakeup, URGENT)

    def kill(self) -> None:
        """Forcibly terminate the process (fail-stop node crash).

        The generator is closed; waiters on the process see it fail with
        :class:`ProcessKilled`.
        """
        if not self._alive:
            return
        self._alive = False
        if self._target is not None:
            self._target._remove_callback(self._resume)
            self._target = None
        self._generator.close()
        if not self.triggered:
            self._ok = False
            self._value = ProcessKilled(self.name)
            self._fail_silently = True  # a kill is deliberate, not a bug
            self.sim._queue_event(self, URGENT)

    # -- internal ------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self._alive:
            return
        # Detach from whatever we were waiting on (relevant for
        # interrupts, where the original target stays pending).
        if self._target is not None and self._target is not event:
            self._target._remove_callback(self._resume)
        self._target = None

        self.sim._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._alive = False
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            self._alive = False
            if not self.triggered:
                self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(next_event, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}"
            )
            if not self.triggered:
                self.fail(err)
            return
        self._target = next_event
        next_event._add_callback(self._resume)


class AnyOf(Event):
    """Succeeds as soon as any of ``events`` triggers.

    Its value is a list of ``(event, value)`` pairs for the events that
    have triggered by the time the condition fires.
    """

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        done = [(e, e._value) for e in self.events if e.triggered and e._ok]
        self.succeed(done)


class AllOf(Event):
    """Succeeds once all of ``events`` have triggered successfully.

    Its value is the list of event values in the order given.
    """

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self.events:
            event._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class Simulator:
    """The discrete-event scheduler: virtual clock plus event heap."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ---------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Condition event: fires when any input event fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Condition event: fires when all input events have fired."""
        return AllOf(self, events)

    # -- callback-style scheduling ---------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        Returns the underlying event; cancel with :meth:`cancel`.
        """
        event = self.timeout(delay)
        event._add_callback(lambda ev: callback(*args))
        return event

    def call_soon(self, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` at the current virtual time, after the
        currently-running step completes."""
        return self.schedule(0.0, callback, *args)

    def cancel(self, event: Event) -> None:
        """Prevent a scheduled event's callbacks from running.

        The heap entry stays (heap removal is O(n)); the event is simply
        marked defused and skipped when popped.
        """
        event._defused = True

    # -- internal queueing ------------------------------------------------

    def _queue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, priority, next(self._seq), event))

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the heap."""
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        if event._value is _PENDING:
            # Heap-delayed trigger (Timeout, process start, interrupt).
            event._ok = getattr(event, "_delayed_ok", True)
            event._value = getattr(event, "_delayed_value", None)
        callbacks = event.callbacks
        event.callbacks = None
        if getattr(event, "_defused", False):
            return
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif event._ok is False and not getattr(event, "_fail_silently", False):
            # A failed event nobody waited on: surface the error rather
            # than losing it silently.
            raise event._value

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, virtual time passes ``until``, or
        ``max_events`` events have been processed.

        Returns the virtual time at which execution stopped.
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn ``generator`` and run until it finishes.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        while not proc.triggered and self._heap:
            self.step()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked: event heap empty")
        if proc._ok:
            return proc._value
        # We are observing the failure here; stop the scheduler from
        # re-raising it when the (still queued) process event is popped.
        proc._fail_silently = True
        raise proc._value
