"""Deterministic discrete-event simulation substrate (S1-S4 in DESIGN.md).

Replaces the paper's physical testbed: real time, POSIX threads, hardware
clocks, Ethernet and hosts are all modelled here so the protocol layers
above can run deterministically from a single seed.
"""

from .clock import US_PER_SEC, ClockValue, HardwareClock
from .cluster import Cluster, ClusterConfig
from .faults import FaultEvent, FaultPlan
from .kernel import AllOf, AnyOf, Event, Process, Simulator, Timeout
from .network import Frame, Interface, LatencyModel, Network
from .node import Node
from .process import Lock, Signal, Store
from .rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "ClockValue",
    "Cluster",
    "ClusterConfig",
    "Event",
    "FaultEvent",
    "FaultPlan",
    "Frame",
    "HardwareClock",
    "Interface",
    "LatencyModel",
    "Lock",
    "Network",
    "Node",
    "Process",
    "RngRegistry",
    "Signal",
    "Simulator",
    "Store",
    "Timeout",
    "US_PER_SEC",
    "derive_seed",
]
