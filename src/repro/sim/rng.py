"""Deterministic random-number stream management.

All randomness in a simulation flows from a single integer *root seed*.
Components obtain independent, reproducible streams by *name* rather than
by creation order, so adding a new component (or reordering construction)
never perturbs the random draws seen by existing components.  This is the
property that makes the whole reproduction deterministic: the same seed
produces byte-identical experiment output.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that distinct names give statistically independent
    seeds and so the mapping is stable across Python versions (unlike
    ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named, independent ``random.Random`` streams.

    Example::

        rngs = RngRegistry(seed=42)
        net_rng = rngs.stream("network")
        clk_rng = rngs.stream("clock.n1")

    Requesting the same name twice returns the same stream object, so a
    component and its tests can share a stream deliberately.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it on
        first use with a seed derived from the root seed."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose root seed is derived from this
        registry's seed and ``name``.

        Useful for giving a subsystem its own namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
