"""Declarative fault injection: scripted crash / recovery / partition
schedules.

The evaluation and the chaos tests need reproducible fault scenarios —
"crash n2 at t=1.5 ms, partition {n0,n1} from {n2,n3} at t=4 ms, heal at
t=9 ms".  A :class:`FaultPlan` captures such a script and arms it on a
testbed; every injected fault is recorded for the experiment report.

One plan arms against either substrate:

* the simulated :class:`~repro.testbed.Testbed` (crash / recover /
  partition / heal, injected into the modelled LAN), or
* a :class:`~repro.net.testbed.LiveTestbed` carrying a
  :class:`~repro.chaos.transport.ChaosTransport` (``bed.chaos``), which
  additionally supports the live-only wire impairments — ``drop``,
  ``delay``, ``duplicate``, ``reorder``, ``isolate``.  Crash and recover
  map to the live node's stop/restart (the in-process equivalent of
  stopping and restarting a ``repro serve`` daemon).

Reproducibility: :meth:`FaultPlan.schedule_hash` digests the canonical
event schedule, so two compilations of the same scenario with the same
seed are byte-identical — pinned by a regression test.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError

#: Events that require a chaos-capable (live) testbed.
LIVE_ONLY_KINDS = frozenset({"drop", "delay", "duplicate", "reorder", "isolate",
                             "lie", "equivocate"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at_s: float
    kind: str       # crash|recover|partition|heal|call|drop|delay|duplicate|reorder|isolate|lie|equivocate|corrupt-state|drain|join
    target: Tuple = ()

    def __str__(self) -> str:
        return f"{self.kind}{self.target} @ {self.at_s * 1000:.2f} ms"

    def canonical(self) -> str:
        """A stable one-line form for hashing and verdict transcripts."""
        parts = []
        for item in self.target:
            if isinstance(item, frozenset):
                parts.append("{" + ",".join(sorted(item)) + "}")
            elif callable(item):
                parts.append(getattr(item, "__name__", "callback"))
            else:
                parts.append(repr(item))
        return f"{self.at_s!r} {self.kind} [{' '.join(parts)}]"


class FaultPlan:
    """A reproducible schedule of fault injections.

    Build fluently, then :meth:`arm`::

        plan = (FaultPlan()
                .crash("n2", at=0.005)
                .partition({"n0", "n1"}, {"n3"}, at=0.010)
                .heal(at=0.050)
                .recover("n2", at=0.060))
        plan.arm(bed)
    """

    def __init__(self):
        self.events: List[FaultEvent] = []
        self.injected: List[FaultEvent] = []
        self._armed = False

    # -- construction -----------------------------------------------------

    def crash(self, node_id: str, *, at: float) -> "FaultPlan":
        """Fail-stop ``node_id`` at time ``at``."""
        return self._add(FaultEvent(at, "crash", (node_id,)))

    def recover(self, node_id: str, *, at: float) -> "FaultPlan":
        """Restart ``node_id`` (fresh protocol state) at ``at``."""
        return self._add(FaultEvent(at, "recover", (node_id,)))

    def partition(self, *components, at: float) -> "FaultPlan":
        """Split the network into the given components at ``at``."""
        frozen = tuple(frozenset(c) for c in components)
        return self._add(FaultEvent(at, "partition", frozen))

    def heal(self, *, at: float) -> "FaultPlan":
        """Remove all partitions (and live isolation) at ``at``."""
        return self._add(FaultEvent(at, "heal"))

    def call(self, fn: Callable[[], None], *, at: float) -> "FaultPlan":
        """Run an arbitrary callback at ``at`` (custom faults)."""
        return self._add(FaultEvent(at, "call", (fn,)))

    # Control-plane reconfigurations (need ``control_drain`` /
    # ``control_join`` hooks on the bed — bound by the chaos runner to a
    # :class:`~repro.control.plane.ControlPlane`).  Unlike crash, these
    # are *graceful*: a drain leaves the group through the total order
    # and a join re-admits via state transfer.  Both are no-ops when the
    # hook judges them unsafe (draining the last replica, joining a node
    # that already serves), so randomized interleavings stay valid.

    def drain(self, node_id: str, *, at: float) -> "FaultPlan":
        """Gracefully retire ``node_id``'s replica at ``at``."""
        return self._add(FaultEvent(at, "drain", (node_id,)))

    def join(self, node_id: str, *, at: float) -> "FaultPlan":
        """Admit (or re-admit) a replica on ``node_id`` at ``at``."""
        return self._add(FaultEvent(at, "join", (node_id,)))

    # Live-only wire impairments (need a ChaosTransport on the bed).

    def drop(self, rate: float, *, at: float, src: Optional[str] = None,
             dst: Optional[str] = None) -> "FaultPlan":
        """From ``at`` on, lose matching frames with probability
        ``rate`` (``src``/``dst`` of None match every node)."""
        self._check_rate("drop", rate)
        return self._add(FaultEvent(at, "drop", (rate, src, dst)))

    def delay(self, delay_s: float, *, at: float, jitter_s: float = 0.0,
              src: Optional[str] = None, dst: Optional[str] = None) -> "FaultPlan":
        """From ``at`` on, hold matching frames ``delay_s`` plus uniform
        jitter in ``[0, jitter_s]``."""
        if delay_s < 0 or jitter_s < 0:
            raise ConfigurationError("delay and jitter must be non-negative")
        return self._add(FaultEvent(at, "delay", (delay_s, jitter_s, src, dst)))

    def duplicate(self, rate: float, *, at: float, src: Optional[str] = None,
                  dst: Optional[str] = None) -> "FaultPlan":
        """From ``at`` on, duplicate matching frames with probability
        ``rate``."""
        self._check_rate("duplicate", rate)
        return self._add(FaultEvent(at, "duplicate", (rate, src, dst)))

    def reorder(self, rate: float, *, at: float, window_s: float = 0.01,
                src: Optional[str] = None, dst: Optional[str] = None) -> "FaultPlan":
        """From ``at`` on, hold matching frames an extra ``[0, window_s]``
        with probability ``rate`` so later frames overtake them."""
        self._check_rate("reorder", rate)
        return self._add(FaultEvent(at, "reorder", (rate, window_s, src, dst)))

    def isolate(self, node_id: str, *, at: float) -> "FaultPlan":
        """Cut ``node_id`` off from every peer (both directions) at
        ``at``; healed by :meth:`heal`."""
        return self._add(FaultEvent(at, "isolate", (node_id,)))

    # Byzantine events (lie/equivocate need a ChaosTransport; a state
    # corruption works on either substrate via bed.corrupt_state).

    def lie(self, node_id: str, *, bias_us: int, at: float) -> "FaultPlan":
        """From ``at`` on, ``node_id`` adds ``bias_us`` to every CCS
        proposal it transmits — the same lie to every receiver (bias 0
        stops the lying)."""
        return self._add(FaultEvent(at, "lie", (node_id, int(bias_us))))

    def equivocate(self, node_id: str, *, spread_us: int,
                   at: float) -> "FaultPlan":
        """From ``at`` on, ``node_id`` tells each receiver a different
        proposal value, seeded per destination with magnitude of order
        ``spread_us`` (0 stops the equivocation)."""
        return self._add(
            FaultEvent(at, "equivocate", (node_id, int(spread_us))))

    def corrupt_state(self, node_id: str, *, at: float) -> "FaultPlan":
        """Scramble ``node_id``'s time-service state (offset, round
        counters, watermarks, fast floor) at ``at`` — the transient
        fault the self-stabilization path must repair."""
        return self._add(FaultEvent(at, "corrupt-state", (node_id,)))

    @staticmethod
    def _check_rate(kind: str, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{kind} rate must be in [0, 1], got {rate}")

    def _add(self, event: FaultEvent) -> "FaultPlan":
        if self._armed:
            raise ConfigurationError("cannot extend an armed fault plan")
        if event.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        self.events.append(event)
        return self

    # -- reproducibility pin ----------------------------------------------

    def schedule(self) -> List[FaultEvent]:
        """The events in injection order (time, then insertion order —
        matching :meth:`arm`, which uses a stable sort)."""
        return sorted(self.events, key=lambda e: e.at_s)

    def schedule_hash(self) -> str:
        """SHA-256 over the canonical schedule.  Two plans with the same
        events at the same times hash identically, whatever order they
        were built in — the reproducibility pin for chaos verdicts."""
        digest = hashlib.sha256()
        for event in self.schedule():
            digest.update(event.canonical().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    # -- execution ----------------------------------------------------------

    def arm(self, bed, *, absolute: bool = False) -> "FaultPlan":
        """Schedule every event on the testbed's kernel.

        Times are relative to the moment of arming by default; with
        ``absolute=True`` they are absolute kernel times.  Misconfigured
        plans — unknown node names, absolute times already in the past,
        overlapping partition components, events targeting nodes that
        are already crashed at that point of the schedule, live-only
        events on a bed without a chaos transport — are rejected here,
        before anything is scheduled, rather than failing mid-experiment
        inside the kernel.
        """
        if self._armed:
            raise ConfigurationError("fault plan already armed")
        self._validate(bed, absolute)
        self._armed = True
        for event in self.schedule():
            delay = event.at_s - bed.sim.now if absolute else event.at_s
            bed.sim.schedule(delay, self._inject, bed, event)
        return self

    def _validate(self, bed, absolute: bool) -> None:
        known = set(bed.node_ids)
        chaos = getattr(bed, "chaos", None)
        crashed: set = set()
        for event in self.schedule():
            if absolute and event.at_s < bed.sim.now:
                raise ConfigurationError(
                    f"fault event {event} lies in the past "
                    f"(kernel time is {bed.sim.now * 1000:.2f} ms)"
                )
            if event.kind in LIVE_ONLY_KINDS and chaos is None:
                raise ConfigurationError(
                    f"fault event {event} needs a chaos transport; this "
                    f"testbed has none (live-only event on the simulator?)"
                )
            if event.kind == "corrupt-state" and not hasattr(
                    bed, "corrupt_state"):
                raise ConfigurationError(
                    f"fault event {event} needs a testbed with a "
                    f"corrupt_state hook"
                )
            if event.kind in ("drain", "join") and not hasattr(
                    bed, f"control_{event.kind}"):
                raise ConfigurationError(
                    f"fault event {event} needs a control plane; bind "
                    f"bed.control_drain/control_join before arming"
                )
            if event.kind in ("crash", "recover", "isolate", "lie",
                              "equivocate", "corrupt-state", "drain", "join"):
                node = event.target[0]
                if node not in known:
                    raise ConfigurationError(
                        f"fault event {event} targets unknown node "
                        f"{node!r}; nodes are {sorted(known)}"
                    )
                if event.kind == "crash":
                    if node in crashed:
                        raise ConfigurationError(
                            f"fault event {event} crashes {node!r}, which "
                            f"is already crashed at that point of the plan"
                        )
                    crashed.add(node)
                elif event.kind == "recover":
                    if node not in crashed:
                        raise ConfigurationError(
                            f"fault event {event} recovers {node!r}, which "
                            f"is not crashed at that point of the plan"
                        )
                    crashed.discard(node)
                elif event.kind == "join":
                    # A join of a crashed node recovers it first; a join
                    # of a serving node is a safe no-op.
                    crashed.discard(node)
                elif event.kind == "drain":
                    # Draining a crashed (or non-serving, or last) node
                    # is a guarded no-op — randomized interleavings stay
                    # valid whatever state the group is in.
                    pass
                elif node in crashed:
                    raise ConfigurationError(
                        f"fault event {event} targets {node!r}, which is "
                        f"already crashed at that point of the plan"
                    )
            elif event.kind == "partition":
                unknown = set().union(*event.target) - known if event.target else set()
                if unknown:
                    raise ConfigurationError(
                        f"fault event {event} partitions unknown "
                        f"node(s) {sorted(unknown)}; nodes are {sorted(known)}"
                    )
                seen: set = set()
                for component in event.target:
                    overlap = seen & component
                    if overlap:
                        raise ConfigurationError(
                            f"fault event {event} lists node(s) "
                            f"{sorted(overlap)} in more than one partition "
                            f"component; components must be disjoint"
                        )
                    seen |= component
            elif event.kind in ("drop", "delay", "duplicate", "reorder"):
                for endpoint in event.target[-2:]:
                    if endpoint is not None and endpoint not in known:
                        raise ConfigurationError(
                            f"fault event {event} names unknown node "
                            f"{endpoint!r}; nodes are {sorted(known)}"
                        )

    def _inject(self, bed, event: FaultEvent) -> None:
        chaos = getattr(bed, "chaos", None)
        if event.kind == "crash":
            bed.crash(event.target[0])
        elif event.kind == "recover":
            bed.recover(event.target[0])
        elif event.kind == "partition":
            if chaos is not None:
                chaos.partition(*event.target)
            else:
                bed.cluster.network.partition(*event.target)
        elif event.kind == "heal":
            if chaos is not None:
                chaos.heal()
            else:
                bed.cluster.network.heal()
        elif event.kind == "drop":
            rate, src, dst = event.target
            chaos.set_drop(rate, src=src, dst=dst)
        elif event.kind == "delay":
            delay_s, jitter_s, src, dst = event.target
            chaos.set_delay(delay_s, jitter_s=jitter_s, src=src, dst=dst)
        elif event.kind == "duplicate":
            rate, src, dst = event.target
            chaos.set_duplicate(rate, src=src, dst=dst)
        elif event.kind == "reorder":
            rate, window_s, src, dst = event.target
            chaos.set_reorder(rate, window_s=window_s, src=src, dst=dst)
        elif event.kind == "isolate":
            chaos.isolate(event.target[0])
        elif event.kind == "lie":
            node, bias_us = event.target
            chaos.set_lie(node, bias_us)
        elif event.kind == "equivocate":
            node, spread_us = event.target
            chaos.set_equivocate(node, spread_us)
        elif event.kind == "corrupt-state":
            bed.corrupt_state(event.target[0])
        elif event.kind == "drain":
            bed.control_drain(event.target[0])
        elif event.kind == "join":
            bed.control_join(event.target[0])
        elif event.kind == "call":
            event.target[0]()
        self.injected.append(event)

    @property
    def done(self) -> bool:
        """True once every scheduled fault has been injected."""
        return len(self.injected) == len(self.events)
