"""Declarative fault injection: scripted crash / recovery / partition
schedules.

The evaluation and the chaos tests need reproducible fault scenarios —
"crash n2 at t=1.5 ms, partition {n0,n1} from {n2,n3} at t=4 ms, heal at
t=9 ms".  A :class:`FaultPlan` captures such a script and arms it on a
testbed; every injected fault is recorded for the experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at_s: float
    kind: str       # "crash" | "recover" | "partition" | "heal" | "call"
    target: Tuple = ()

    def __str__(self) -> str:
        return f"{self.kind}{self.target} @ {self.at_s * 1000:.2f} ms"


class FaultPlan:
    """A reproducible schedule of fault injections.

    Build fluently, then :meth:`arm`::

        plan = (FaultPlan()
                .crash("n2", at=0.005)
                .partition({"n0", "n1"}, {"n3"}, at=0.010)
                .heal(at=0.050)
                .recover("n2", at=0.060))
        plan.arm(bed)
    """

    def __init__(self):
        self.events: List[FaultEvent] = []
        self.injected: List[FaultEvent] = []
        self._armed = False

    # -- construction -----------------------------------------------------

    def crash(self, node_id: str, *, at: float) -> "FaultPlan":
        """Fail-stop ``node_id`` at simulated time ``at``."""
        return self._add(FaultEvent(at, "crash", (node_id,)))

    def recover(self, node_id: str, *, at: float) -> "FaultPlan":
        """Restart ``node_id`` (fresh protocol state) at ``at``."""
        return self._add(FaultEvent(at, "recover", (node_id,)))

    def partition(self, *components, at: float) -> "FaultPlan":
        """Split the network into the given components at ``at``."""
        frozen = tuple(frozenset(c) for c in components)
        return self._add(FaultEvent(at, "partition", frozen))

    def heal(self, *, at: float) -> "FaultPlan":
        """Remove all partitions at ``at``."""
        return self._add(FaultEvent(at, "heal"))

    def call(self, fn: Callable[[], None], *, at: float) -> "FaultPlan":
        """Run an arbitrary callback at ``at`` (custom faults)."""
        return self._add(FaultEvent(at, "call", (fn,)))

    def _add(self, event: FaultEvent) -> "FaultPlan":
        if self._armed:
            raise ConfigurationError("cannot extend an armed fault plan")
        if event.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        self.events.append(event)
        return self

    # -- execution ----------------------------------------------------------

    def arm(self, bed, *, absolute: bool = False) -> "FaultPlan":
        """Schedule every event on the testbed's simulator.

        Times are relative to the moment of arming by default; with
        ``absolute=True`` they are absolute kernel times.  Misconfigured
        plans — unknown node names, absolute times already in the past —
        are rejected here, before anything is scheduled, rather than
        failing mid-experiment inside the kernel.
        """
        if self._armed:
            raise ConfigurationError("fault plan already armed")
        self._validate(bed, absolute)
        self._armed = True
        for event in sorted(self.events, key=lambda e: e.at_s):
            delay = event.at_s - bed.sim.now if absolute else event.at_s
            bed.sim.schedule(delay, self._inject, bed, event)
        return self

    def _validate(self, bed, absolute: bool) -> None:
        known = set(bed.node_ids)
        for event in self.events:
            if absolute and event.at_s < bed.sim.now:
                raise ConfigurationError(
                    f"fault event {event} lies in the past "
                    f"(kernel time is {bed.sim.now * 1000:.2f} ms)"
                )
            if event.kind in ("crash", "recover"):
                if event.target[0] not in known:
                    raise ConfigurationError(
                        f"fault event {event} targets unknown node "
                        f"{event.target[0]!r}; nodes are {sorted(known)}"
                    )
            elif event.kind == "partition":
                unknown = set().union(*event.target) - known
                if unknown:
                    raise ConfigurationError(
                        f"fault event {event} partitions unknown "
                        f"node(s) {sorted(unknown)}; nodes are {sorted(known)}"
                    )

    def _inject(self, bed, event: FaultEvent) -> None:
        if event.kind == "crash":
            bed.crash(event.target[0])
        elif event.kind == "recover":
            bed.recover(event.target[0])
        elif event.kind == "partition":
            bed.cluster.network.partition(*event.target)
        elif event.kind == "heal":
            bed.cluster.network.heal()
        elif event.kind == "call":
            event.target[0]()
        self.injected.append(event)

    @property
    def done(self) -> bool:
        """True once every scheduled fault has been injected."""
        return len(self.injected) == len(self.events)
