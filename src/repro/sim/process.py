"""Process-level coordination primitives for the simulation kernel.

These mirror the POSIX primitives the paper's C++ implementation uses
(mutexes and condition variables protecting per-thread message buffers),
recast as event-based objects for simulated processes:

* :class:`Store` — an unbounded FIFO with blocking ``get()``; the analogue
  of a message input buffer plus its condition variable.
* :class:`Signal` — a broadcast condition: every waiter present when
  :meth:`Signal.fire` is called is woken with the fired value.
* :class:`Lock` — a FIFO mutex (rarely needed: the kernel is cooperative,
  but explicit critical sections make some protocol code clearer).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .kernel import Event, Simulator


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an :class:`Event` that succeeds
    with the oldest item as soon as one is available; waiters are served
    in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Deque[Any]:
        """The queued items (oldest first).  Read-only by convention."""
        return self._items

    def put(self, item: Any) -> None:
        """Append ``item``; wake the oldest waiting getter, if any."""
        # Skip getters that were cancelled/triggered elsewhere.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Any:
        """Return the oldest item without removing it."""
        return self._items[0]

    def clear(self) -> List[Any]:
        """Remove and return all queued items (waiters stay blocked)."""
        items = list(self._items)
        self._items.clear()
        return items


class Signal:
    """A broadcast condition variable.

    Waiters obtain an event via :meth:`wait`; the next :meth:`fire` call
    wakes all of them with the fired value.  Waiters arriving after a
    ``fire`` wait for the following one (no memory).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: List[Event] = []

    @property
    def waiting(self) -> int:
        """Number of events currently waiting on this signal."""
        return sum(1 for w in self._waiters if not w.triggered)

    def wait(self) -> Event:
        """Return an event that succeeds at the next :meth:`fire`."""
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``.

        Returns the number of waiters woken.
        """
        waiters, self._waiters = self._waiters, []
        woken = 0
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(value)
                woken += 1
        return woken


class Lock:
    """A FIFO mutex for simulated processes.

    Usage::

        yield lock.acquire()
        try:
            ...critical section...
        finally:
            lock.release()
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        """Return an event that succeeds when the lock is held."""
        event = Event(self.sim)
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, handing it to the oldest waiter if any."""
        if not self._locked:
            raise RuntimeError(f"lock {self.name!r} released while not held")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._locked = False
