"""Simulated physical hardware clocks.

Substitutes for the testbed's real `gettimeofday()` sources.  Each node
owns one :class:`HardwareClock` characterised by

* an initial *epoch offset* (clocks are unsynchronized at start-up),
* a constant *drift rate* in parts-per-million (quartz oscillators drift
  on the order of 1-100 ppm), and
* a read *granularity* in microseconds.

Clock readings are :class:`ClockValue` objects — integer microseconds —
to mirror ``struct timeval`` ("the current time in two CORBA longs") and
to keep protocol state free of float-comparison hazards.

The fail-stop clock assumption from the paper (Section 2) is modelled at
the node level: a crashed node's clock can no longer be read, and a
non-faulty clock never returns a wrong value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import ConfigurationError
from .kernel import Simulator

#: Microseconds per second, the conversion constant used throughout.
US_PER_SEC = 1_000_000


@dataclass(frozen=True, order=True)
class ClockValue:
    """An absolute clock reading in integer microseconds.

    Supports the arithmetic the protocols need: differences between
    readings yield plain ``int`` microseconds; adding/subtracting an
    ``int`` offset yields a new :class:`ClockValue`.
    """

    micros: int

    def __post_init__(self) -> None:
        if not isinstance(self.micros, int):
            raise TypeError(f"ClockValue requires int microseconds, got {self.micros!r}")

    # -- timeval-style accessors ----------------------------------------

    @property
    def seconds(self) -> int:
        """The seconds component (``tv_sec``)."""
        return self.micros // US_PER_SEC

    @property
    def microseconds(self) -> int:
        """The sub-second component (``tv_usec``)."""
        return self.micros % US_PER_SEC

    @classmethod
    def from_seconds(cls, seconds: float) -> "ClockValue":
        """Build a clock value from (possibly fractional) seconds."""
        return cls(int(round(seconds * US_PER_SEC)))

    def to_seconds(self) -> float:
        """The reading as float seconds (for reporting only)."""
        return self.micros / US_PER_SEC

    # -- arithmetic -------------------------------------------------------

    def __add__(self, offset: int) -> "ClockValue":
        if not isinstance(offset, int):
            return NotImplemented
        return ClockValue(self.micros + offset)

    __radd__ = __add__

    def __sub__(self, other: Union["ClockValue", int]) -> Union["ClockValue", int]:
        if isinstance(other, ClockValue):
            return self.micros - other.micros
        if isinstance(other, int):
            return ClockValue(self.micros - other)
        return NotImplemented

    def __int__(self) -> int:
        return self.micros

    def __repr__(self) -> str:
        return f"ClockValue({self.seconds}.{self.microseconds:06d})"


class HardwareClock:
    """A drifting, unsynchronized physical clock attached to one node.

    ``reading(t) = epoch + t * (1 + drift_ppm * 1e-6)`` quantized to the
    clock granularity, where ``t`` is simulated real time in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        epoch_us: int = 0,
        drift_ppm: float = 0.0,
        granularity_us: int = 1,
        name: str = "",
    ):
        if granularity_us < 1:
            raise ConfigurationError(f"granularity must be >= 1 us, got {granularity_us}")
        if drift_ppm <= -US_PER_SEC:
            raise ConfigurationError("drift must keep the clock rate positive")
        self.sim = sim
        self.name = name
        self.epoch_us = int(epoch_us)
        self.drift_ppm = float(drift_ppm)
        self.granularity_us = int(granularity_us)
        #: Cumulative step adjustments (used by clock-discipline baselines
        #: such as the NTP-style service; the consistent time service never
        #: touches the hardware clock).
        self.step_us = 0
        self._last_raw: int = -(2**63)

    # -- reading ----------------------------------------------------------

    def raw_us(self) -> int:
        """The undisciplined reading in microseconds (no step adjustments).

        Monotonically non-decreasing by construction (the drift factor is
        strictly positive).
        """
        elapsed_us = self.sim.now * US_PER_SEC
        raw = self.epoch_us + int(elapsed_us * (1.0 + self.drift_ppm * 1e-6))
        raw -= raw % self.granularity_us
        # Defensive: rounding must never make the clock run backwards.
        if raw < self._last_raw:
            raw = self._last_raw
        self._last_raw = raw
        return raw

    def read_us(self) -> int:
        """The disciplined reading (hardware + step adjustments).

        Step adjustments can move the reading backwards — exactly the
        hazard motivating the paper (Section 1).
        """
        return self.raw_us() + self.step_us

    def read(self) -> ClockValue:
        """The disciplined reading as a :class:`ClockValue`."""
        return ClockValue(self.read_us())

    # -- discipline (baselines only) ---------------------------------------

    def step(self, delta_us: int) -> None:
        """Apply a step adjustment of ``delta_us`` microseconds.

        Negative deltas roll the disciplined clock back; this is allowed
        because real OS clock disciplines (e.g. ``settimeofday``) allow it,
        and the baselines need to exhibit that behaviour.
        """
        self.step_us += int(delta_us)

    # -- introspection -------------------------------------------------------

    def true_offset_us(self) -> int:
        """Current offset of the disciplined clock from simulated real
        time, in microseconds (measurement/reporting only — the protocols
        never read this)."""
        return self.read_us() - int(self.sim.now * US_PER_SEC)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HardwareClock({self.name!r}, epoch_us={self.epoch_us}, "
            f"drift_ppm={self.drift_ppm}, granularity_us={self.granularity_us})"
        )
