"""Testbed construction: a cluster of nodes on one LAN.

:class:`Cluster` assembles the whole substrate — kernel, RNG registry,
network and nodes — from a :class:`ClusterConfig`, mirroring the paper's
testbed of four PCs on a dedicated 100 Mbit/s Ethernet.  Per-node clock
epochs and drift rates are drawn deterministically from named RNG
streams, so a cluster is fully specified by ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .clock import US_PER_SEC
from .kernel import Simulator
from .network import LatencyModel, Network
from .node import Node
from .rng import RngRegistry


@dataclass
class ClusterConfig:
    """Parameters for a simulated testbed.

    Defaults are calibrated to the paper's environment: four 1 GHz PCs on
    a quiet 100 Mbit/s Ethernet, unsynchronized clocks with tens-of-ppm
    drift, microsecond `gettimeofday()` granularity.
    """

    num_nodes: int = 4
    #: Spread of initial clock epochs (seconds).  The paper's clocks are
    #: unsynchronized; minutes of disagreement are typical.
    clock_epoch_spread_s: float = 10.0
    #: Max |drift| per node in ppm, drawn uniformly in [-max, +max].
    clock_drift_ppm_max: float = 50.0
    clock_granularity_us: int = 1
    #: CPU speed factors: 1.0 == the paper's 1 GHz Pentium III.
    cpu_factor: float = 1.0
    cpu_jitter: float = 0.05
    #: Per-node overrides of ``cpu_factor`` (heterogeneous testbeds:
    #: the paper's replicas were clearly not equally fast — one of them
    #: won 9,977 of 10,000 synchronization rounds).
    cpu_factor_overrides: Dict[str, float] = field(default_factory=dict)
    latency: LatencyModel = field(default_factory=LatencyModel)
    loss_rate: float = 0.0
    node_prefix: str = "n"

    def node_ids(self) -> List[str]:
        return [f"{self.node_prefix}{i}" for i in range(self.num_nodes)]


class Cluster:
    """A ready-to-run testbed: kernel + network + nodes."""

    def __init__(self, config: Optional[ClusterConfig] = None, *, seed: int = 0):
        self.config = config or ClusterConfig()
        if self.config.num_nodes < 1:
            raise ConfigurationError("cluster needs at least one node")
        self.seed = seed
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(
            self.sim,
            self.rngs.stream("network"),
            latency=self.config.latency,
            loss_rate=self.config.loss_rate,
        )
        self.nodes: Dict[str, Node] = {}
        clock_rng = self.rngs.stream("clock-setup")
        for node_id in self.config.node_ids():
            epoch_us = int(
                clock_rng.uniform(0, self.config.clock_epoch_spread_s) * US_PER_SEC
            )
            drift = clock_rng.uniform(
                -self.config.clock_drift_ppm_max, self.config.clock_drift_ppm_max
            )
            self.nodes[node_id] = Node(
                self.sim,
                node_id,
                self.network,
                self.rngs.stream(f"cpu.{node_id}"),
                clock_epoch_us=epoch_us,
                clock_drift_ppm=drift,
                clock_granularity_us=self.config.clock_granularity_us,
                cpu_factor=self.config.cpu_factor_overrides.get(
                    node_id, self.config.cpu_factor
                ),
                cpu_jitter=self.config.cpu_jitter,
            )

    # -- convenience -----------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        """Node ids in ring order (creation order)."""
        return list(self.nodes)

    def node(self, node_id: str) -> Node:
        """Look up one node by id."""
        return self.nodes[node_id]

    def run(self, duration: Optional[float] = None) -> float:
        """Advance the simulation by ``duration`` seconds (relative, like
        :meth:`repro.testbed.Testbed.run`); run to quiescence if omitted."""
        until = None if duration is None else self.sim.now + duration
        return self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster seed={self.seed} nodes={self.node_ids}>"
