"""Simulated hosts (the testbed's Pentium III PCs).

A :class:`Node` bundles a hardware clock, a network interface, a relative
CPU speed, and the set of simulated processes running on it.  Nodes are
fail-stop (paper Section 2): :meth:`Node.crash` atomically stops all its
processes, silences its interface and makes its clock unreadable;
:meth:`Node.recover` brings the host back with its clock intact but all
volatile state gone (the replication layer re-initialises it via state
transfer).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, List, Optional

from ..errors import NodeDown
from .clock import ClockValue, HardwareClock
from .kernel import Process, Simulator, Timeout
from .network import Frame, Interface, Network


class Node:
    """One simulated host attached to the LAN."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        network: Network,
        cpu_rng: random.Random,
        *,
        clock_epoch_us: int = 0,
        clock_drift_ppm: float = 0.0,
        clock_granularity_us: int = 1,
        cpu_factor: float = 1.0,
        cpu_jitter: float = 0.05,
    ):
        if cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive, got {cpu_factor}")
        self.sim = sim
        self.node_id = node_id
        self.alive = True
        self.cpu_factor = cpu_factor
        self.cpu_jitter = cpu_jitter
        self._cpu_rng = cpu_rng
        self.clock = HardwareClock(
            sim,
            epoch_us=clock_epoch_us,
            drift_ppm=clock_drift_ppm,
            granularity_us=clock_granularity_us,
            name=f"clock.{node_id}",
        )
        self.iface: Interface = network.attach(node_id, self._on_frame)
        self._receiver: Optional[Callable[[Frame], None]] = None
        self._processes: List[Process] = []
        self.crash_count = 0

    # -- networking -----------------------------------------------------

    def set_receiver(self, receiver: Callable[[Frame], None]) -> None:
        """Register the protocol entity that consumes inbound frames
        (normally the Totem processor on this node)."""
        self._receiver = receiver

    def _on_frame(self, frame: Frame) -> None:
        if self.alive and self._receiver is not None:
            self._receiver(frame)

    # -- processes ---------------------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a simulated process on this node.

        The process dies with the node: :meth:`crash` kills every process
        spawned here.
        """
        if not self.alive:
            raise NodeDown(self.node_id)
        proc = self.sim.process(generator, name=f"{self.node_id}:{name}")
        self._processes = [p for p in self._processes if p.is_alive]
        self._processes.append(proc)
        return proc

    def compute(self, seconds: float) -> Timeout:
        """An event modelling ``seconds`` of CPU work on this node.

        Actual duration = ``seconds / cpu_factor`` perturbed by a uniform
        jitter of ±``cpu_jitter`` (scheduling noise, cache effects, the
        co-resident Totem process — the paper notes these make the same
        iteration count take different real times on different runs).
        """
        if not self.alive:
            raise NodeDown(self.node_id)
        scale = 1.0 + self._cpu_rng.uniform(-self.cpu_jitter, self.cpu_jitter)
        return self.sim.timeout(max(0.0, seconds * scale / self.cpu_factor))

    def busy_loop(self, iterations: int, per_iteration_s: float = 4.0e-9) -> Timeout:
        """Model the paper's empty-iteration delay loop.

        The experiments insert 30,000 / 60,000 / 90,000 empty iterations
        between clock reads (60-400 us on the 1 GHz testbed) because
        ``sleep`` granularity is 10 ms.  ``per_iteration_s`` defaults to a
        value calibrated to land in that range.
        """
        return self.compute(iterations * per_iteration_s)

    # -- clock ----------------------------------------------------------------

    def read_clock(self) -> ClockValue:
        """Read this node's (disciplined) physical clock."""
        if not self.alive:
            raise NodeDown(self.node_id)
        return self.clock.read()

    def read_clock_us(self) -> int:
        """Read this node's physical clock as integer microseconds."""
        if not self.alive:
            raise NodeDown(self.node_id)
        return self.clock.read_us()

    # -- failure injection -------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: kill all processes, silence the interface."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.iface.up = False
        for proc in self._processes:
            proc.kill()
        self._processes = []

    def recover(self) -> None:
        """Restart the host.  Volatile state is gone; the hardware clock
        keeps running across the outage (battery-backed RTC)."""
        if self.alive:
            return
        self.alive = True
        self.iface.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Node {self.node_id} {state}>"
