"""EXT-FAILOVER workload: the clock step across a primary failure.

The paper's Section 1 motivation: with primary/backup clock handling the
clock value returned after a failover can roll back or jump far forward;
the consistent time service keeps it monotone.  This workload measures
the step directly for any time source, so the benchmark can put the two
side by side over many seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..replication import Application
from ..sim import ClusterConfig
from ..testbed import Testbed


class FailoverClockApp(Application):
    """Minimal time server used for failover measurements."""

    def get_time(self, ctx):
        yield ctx.compute(15e-6)
        value = yield ctx.gettimeofday()
        return value.micros


@dataclass
class FailoverResult:
    """Clock readings straddling one induced primary failure."""

    time_source: str
    style: str
    seed: int
    before_us: List[int] = field(default_factory=list)
    after_us: List[int] = field(default_factory=list)
    #: Real (simulated) time elapsed between the last pre-crash reading
    #: and the first post-failover reading, microseconds.
    real_gap_us: float = 0.0

    @property
    def step_us(self) -> int:
        """First post-failover value minus last pre-crash value."""
        return self.after_us[0] - self.before_us[-1]

    @property
    def rolled_back(self) -> bool:
        return self.step_us <= 0

    @property
    def fast_forward_us(self) -> float:
        """How far the step exceeds the elapsed real time (clock jumped
        ahead); <= 0 means no fast-forward."""
        return self.step_us - self.real_gap_us

    @property
    def monotone(self) -> bool:
        sequence = self.before_us + self.after_us
        return all(b > a for a, b in zip(sequence, sequence[1:]))


def run_failover_workload(
    *,
    time_source: str = "cts",
    style: str = "passive",
    seed: int = 0,
    calls_each_side: int = 5,
    epoch_spread_s: float = 30.0,
) -> FailoverResult:
    """Measure the clock step across one primary crash."""
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(
            num_nodes=4, clock_epoch_spread_s=epoch_spread_s
        ),
    )
    kwargs = {"checkpoint_interval": 5} if style == "passive" else {}
    bed.deploy(
        "svc", FailoverClockApp, ["n1", "n2", "n3"],
        style=style, time_source=time_source, **kwargs,
    )
    client = bed.client("n0")
    bed.start(settle=0.3)

    def calls(n):
        def scenario():
            values = []
            for _ in range(n):
                result, _ = yield from client.timed_call(
                    "svc", "get_time", timeout=3.0
                )
                assert result.ok, result.error
                values.append(result.value)
            return values

        return bed.run_process(scenario())

    result = FailoverResult(time_source=time_source, style=style, seed=seed)
    result.before_us = calls(calls_each_side)
    t_crash = bed.sim.now
    primary = next(nid for nid, r in bed.replicas("svc").items() if r.is_primary)
    bed.crash(primary)
    bed.run(0.6)
    result.after_us = calls(calls_each_side)
    result.real_gap_us = (bed.sim.now - t_crash) * 1e6
    return result


def failover_comparison(
    seeds: range,
    *,
    style: str = "passive",
    calls_each_side: int = 4,
) -> dict:
    """Run the failover workload for both time sources over many seeds.

    Returns per-source summaries used by the EXT-FAILOVER benchmark.
    """
    summary = {}
    for source in ("cts", "primary-backup"):
        results = [
            run_failover_workload(
                time_source=source,
                style=style,
                seed=seed,
                calls_each_side=calls_each_side,
            )
            for seed in seeds
        ]
        summary[source] = {
            "results": results,
            "rollbacks": sum(1 for r in results if r.rolled_back),
            "fast_forwards": sum(
                1 for r in results if r.fast_forward_us > 1_000_000
            ),
            "non_monotone": sum(1 for r in results if not r.monotone),
            "worst_step_us": min(r.step_us for r in results),
            "best_step_us": max(r.step_us for r in results),
        }
    return summary
