"""Figure 6 / Section 4.3 workload: skew and drift of the group clock.

Reproduces the paper's second application: one remote invocation
triggers a sequence of clock-related operations at each server replica;
between consecutive operations each replica inserts an empty-iteration
busy loop of 30,000 / 60,000 or 90,000 iterations — chosen at random
*per replica per round* — producing delays of roughly 60-400 us, "to
study the behavior of the consistent time service when the synchronizer
rotates randomly among the server replicas".

Collected per run:

* per-replica round history (group value, physical value, offset) —
  Figures 6(a), 6(b), 6(c);
* the synchronizer of every round — rotation statistics;
* CCS messages transmitted per node — the Section 4.3 duplicate-
  suppression counts (1 / 9,977 / 22 in the paper's run);
* group clock vs simulated real time — drift measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import DriftCompensation
from ..replication import Application
from ..sim import ClusterConfig, RngRegistry
from ..testbed import Testbed

#: The paper's three busy-loop lengths (empty iterations).
ITERATION_CHOICES = (30_000, 60_000, 90_000)


class SkewDriftApp(Application):
    """Performs ``count`` clock operations with random inserted delays."""

    def __init__(self, workload_seed: int = 0):
        self.workload_seed = workload_seed
        self._rngs = RngRegistry(workload_seed)

    def run_rounds(self, ctx, count):
        rng = self._rngs.stream(f"delay.{ctx.node.node_id}")
        for _ in range(count):
            iterations = rng.choice(ITERATION_CHOICES)
            yield ctx.busy_loop(iterations)
            yield ctx.gettimeofday()
        return count


@dataclass
class ReplicaSeries:
    """One replica's per-round measurements (workload rounds only)."""

    node_id: str
    #: (group_us, physical_us, offset_us) per round.
    history: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Simulated real time (seconds) when each value was returned.
    times_s: List[float] = field(default_factory=list)

    def physical_intervals(self) -> List[int]:
        """Figure 6(a): interval between consecutive clock operations as
        seen by the physical hardware clock."""
        physicals = [p for _, p, _ in self.history]
        return [b - a for a, b in zip(physicals, physicals[1:])]

    def group_intervals(self) -> List[int]:
        """Figure 6(a): the same intervals as seen by the group clock."""
        groups = [g for g, _, _ in self.history]
        return [b - a for a, b in zip(groups, groups[1:])]

    def offsets(self) -> List[int]:
        """Figure 6(b): the clock offset after each round."""
        return [o for _, _, o in self.history]

    def normalized_physical(self) -> List[int]:
        """Figure 6(c): physical clock normalized to its first reading."""
        physicals = [p for _, p, _ in self.history]
        return [p - physicals[0] for p in physicals]

    def normalized_group(self) -> List[int]:
        """Figure 6(c): group clock normalized to the first round."""
        groups = [g for g, _, _ in self.history]
        return [g - groups[0] for g in groups]


@dataclass
class SkewDriftResult:
    """Outcome of one skew/drift run."""

    rounds: int
    series: Dict[str, ReplicaSeries] = field(default_factory=dict)
    #: Synchronizer (winner) of each workload round, in round order.
    winners: List[str] = field(default_factory=list)
    #: CCS messages transmitted per node (the Section 4.3 counts).
    ccs_transmitted: Dict[str, int] = field(default_factory=dict)
    ccs_suppressed: Dict[str, int] = field(default_factory=dict)
    rounds_from_buffer: Dict[str, int] = field(default_factory=dict)

    @property
    def total_transmitted(self) -> int:
        return sum(self.ccs_transmitted.values())

    def winner_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for winner in self.winners:
            counts[winner] = counts.get(winner, 0) + 1
        return counts

    def group_drift_ppm(self) -> float:
        """Long-run drift of the group clock against simulated real time
        (negative: the group clock runs slow, as the paper observes)."""
        series = next(iter(self.series.values()))
        if len(series.history) < 2:
            return 0.0
        group_span = series.history[-1][0] - series.history[0][0]
        real_span_us = (series.times_s[-1] - series.times_s[0]) * 1e6
        if real_span_us == 0:
            return 0.0
        return (group_span - real_span_us) / real_span_us * 1e6


def run_skew_drift_workload(
    *,
    rounds: int = 1_000,
    seed: int = 0,
    server_nodes: tuple = ("n1", "n2", "n3"),
    drift: Optional[DriftCompensation] = None,
    drift_factory=None,
    clock_drift_ppm_max: float = 50.0,
) -> SkewDriftResult:
    """Run the Figure 6 measurement once and collect all series.

    ``drift_factory`` (``Testbed -> DriftCompensation``) builds strategies
    that need simulation access, e.g. reference steering against the
    testbed's notion of real time.
    """
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(
            num_nodes=4, clock_drift_ppm_max=clock_drift_ppm_max
        ),
    )
    if drift_factory is not None:
        drift = drift_factory(bed)
    bed.deploy(
        "skewsvc",
        lambda: SkewDriftApp(workload_seed=seed),
        list(server_nodes),
        style="active",
        time_source="cts",
        drift=drift,
    )
    client = bed.client("n0")
    bed.start()

    # Baseline: how many rounds each time service committed before the
    # workload (state-transfer special rounds) — sliced off below.
    pre_rounds = {
        nid: len(r.time_source.clock_state.history)
        for nid, r in bed.replicas("skewsvc").items()
    }
    pre_winners = max(
        len(r.time_source.winners) for r in bed.replicas("skewsvc").values()
    )
    pre_sent = {
        nid: r.time_source.stats.ccs_sent
        for nid, r in bed.replicas("skewsvc").items()
    }
    pre_suppressed = {
        nid: r.time_source.stats.ccs_suppressed
        for nid, r in bed.replicas("skewsvc").items()
    }

    def scenario():
        result = yield client.call(
            "skewsvc", "run_rounds", rounds, timeout=10_000.0
        )
        assert result.ok, result.error
        return result.value

    bed.run_process(scenario())
    bed.run(0.05)

    result = SkewDriftResult(rounds=rounds)
    for node_id, replica in bed.replicas("skewsvc").items():
        service = replica.time_source
        base = pre_rounds[node_id]
        series = ReplicaSeries(node_id)
        series.history = list(service.clock_state.history[base:])
        series.times_s = [t for t, _, _, _ in service.readings[base:]]
        result.series[node_id] = series
        result.ccs_transmitted[node_id] = (
            service.stats.ccs_sent
            - service.stats.ccs_suppressed
            - (pre_sent[node_id] - pre_suppressed[node_id])
        )
        result.ccs_suppressed[node_id] = (
            service.stats.ccs_suppressed - pre_suppressed[node_id]
        )
        result.rounds_from_buffer[node_id] = service.stats.rounds_from_buffer
    any_service = next(iter(bed.replicas("skewsvc").values())).time_source
    result.winners = [w for _, _, w in any_service.winners[pre_winners:]]
    return result
