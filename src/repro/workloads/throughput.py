"""EXT-THROUGHPUT workload: sustainable invocation rate.

In per-operation mode every clock-related operation costs one CCS round,
and rounds on the same logical thread are serialized (the paper: "a
thread cannot start a new round ... before the current round
completes").  The service's request throughput is then bounded by the
round time — roughly one token rotation — independent of CPU speed.
With coalesced rounds (``coalesce=True``, the default) concurrent
operations share rounds, so throughput scales with concurrency instead.
This workload drives an open-loop client at a fixed offered rate and
measures completions and latency, with and without the consistent time
service, in either mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..replication import Application
from ..sim import ClusterConfig
from ..testbed import Testbed


class ThroughputApp(Application):
    """Minimal clock-reading servant."""

    WORK_S = 20e-6

    def get_time(self, ctx):
        yield ctx.compute(self.WORK_S)
        value = yield ctx.gettimeofday()
        return value.micros


@dataclass
class ThroughputPoint:
    """One offered-rate measurement."""

    offered_per_s: float
    duration_s: float
    issued: int
    completed: int
    mean_latency_us: float

    @property
    def completed_per_s(self) -> float:
        return self.completed / self.duration_s

    @property
    def saturated(self) -> bool:
        """True when the service could not keep up with the offered rate
        (completions fall clearly short of issues)."""
        return self.completed < 0.9 * self.issued


def run_throughput_point(
    *,
    time_source: str = "cts",
    offered_per_s: float = 1_000.0,
    duration_s: float = 0.5,
    seed: int = 0,
    coalesce: bool = True,
    fast_path: bool = False,
) -> ThroughputPoint:
    """Drive an open-loop client at ``offered_per_s`` for ``duration_s``."""
    bed = Testbed(seed=seed, cluster_config=ClusterConfig(num_nodes=4))
    bed.deploy("svc", ThroughputApp, ["n1", "n2", "n3"],
               time_source=time_source, coalesce=coalesce,
               fast_path=fast_path)
    client = bed.client("n0")
    bed.start()

    interval = 1.0 / offered_per_s
    issued = 0
    completions: List[float] = []
    latencies: List[int] = []
    start = bed.sim.now

    def on_reply(event, sent_at_us):
        if event.ok:
            completions.append(bed.sim.now)
            latencies.append(client.node.read_clock_us() - sent_at_us)

    def issue():
        nonlocal issued
        if bed.sim.now - start >= duration_s:
            return
        issued += 1
        sent_at_us = client.node.read_clock_us()
        event = client.call("svc", "get_time", timeout=duration_s + 2.0)
        event._add_callback(lambda ev: on_reply(ev, sent_at_us))
        bed.sim.schedule(interval, issue)

    issue()
    bed.run(duration_s + 2.5)  # drain the queue

    return ThroughputPoint(
        offered_per_s=offered_per_s,
        duration_s=duration_s,
        issued=issued,
        completed=len(completions),
        mean_latency_us=(sum(latencies) / len(latencies)) if latencies else 0.0,
    )


def run_throughput_sweep(
    rates,
    *,
    time_source: str = "cts",
    duration_s: float = 0.5,
    seed: int = 0,
    coalesce: bool = True,
    fast_path: bool = False,
) -> Dict[float, ThroughputPoint]:
    """Measure a set of offered rates."""
    return {
        rate: run_throughput_point(
            time_source=time_source,
            offered_per_s=rate,
            duration_s=duration_s,
            seed=seed,
            coalesce=coalesce,
            fast_path=fast_path,
        )
        for rate in rates
    }
