"""Experiment workload generators (S15 in DESIGN.md): the paper's two
measurement applications plus the failover and recovery scenarios."""

from .failover import (
    FailoverClockApp,
    FailoverResult,
    failover_comparison,
    run_failover_workload,
)
from .latency import (
    LatencyRunResult,
    PAPER_CPU_PROFILE,
    TimeServerApp,
    run_latency_workload,
)
from .loadgen import (
    LoadgenResult,
    LoadgenShardResult,
    percentile,
    record_benchmark,
    record_shard_benchmark,
    run_loadgen,
    run_loadgen_chaos,
    run_loadgen_comparison,
    run_loadgen_sharded,
    zipf_identities,
)
from .openloop import (
    OpenLoopInjector,
    OpenLoopResult,
    calibrate_capacity,
    record_overload_benchmark,
    run_overload_suite,
)
from .recovery import RecoveryClockApp, RecoveryResult, run_recovery_workload
from .throughput import (
    ThroughputApp,
    ThroughputPoint,
    run_throughput_point,
    run_throughput_sweep,
)
from .skew_drift import (
    ITERATION_CHOICES,
    ReplicaSeries,
    SkewDriftApp,
    SkewDriftResult,
    run_skew_drift_workload,
)

__all__ = [
    "FailoverClockApp",
    "FailoverResult",
    "ITERATION_CHOICES",
    "LatencyRunResult",
    "LoadgenResult",
    "LoadgenShardResult",
    "OpenLoopInjector",
    "OpenLoopResult",
    "PAPER_CPU_PROFILE",
    "RecoveryClockApp",
    "RecoveryResult",
    "ReplicaSeries",
    "SkewDriftApp",
    "SkewDriftResult",
    "ThroughputApp",
    "ThroughputPoint",
    "TimeServerApp",
    "calibrate_capacity",
    "failover_comparison",
    "run_failover_workload",
    "percentile",
    "record_benchmark",
    "record_overload_benchmark",
    "record_shard_benchmark",
    "run_overload_suite",
    "run_latency_workload",
    "run_loadgen",
    "run_loadgen_chaos",
    "run_loadgen_comparison",
    "run_loadgen_sharded",
    "run_recovery_workload",
    "run_skew_drift_workload",
    "run_throughput_point",
    "run_throughput_sweep",
    "zipf_identities",
]
