"""Closed-loop load generator: concurrent clients against the CTS.

Where :mod:`repro.workloads.throughput` drives an *open-loop* arrival
process at a fixed offered rate, this generator runs ``concurrency``
closed-loop workers: each issues one call, waits for the reply, and
immediately issues the next until the deadline.  Closed-loop load is the
natural probe for round coalescing — the number of in-flight operations
is pinned at the worker count, so the measured CCS-messages-per-op
directly shows how many operations each round amortizes.

The generator runs against any :class:`~repro.testbed.TestbedBase`-style
deployment; by default it builds the standard simulated four-node bed
(client on n0, three-way active service on n1-n3) with the minimal
clock-reading servant.
"""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..sim import ClusterConfig
from ..testbed import Testbed
from .throughput import ThroughputApp


def percentile(values: List[int], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return float(ordered[rank])


#: Upper bounds (microseconds) of the recorded latency histogram —
#: matches the ``cts_round_latency_us`` instrument, so benchmark runs
#: and live scrapes bucket identically.
LATENCY_BUCKETS_US = (50, 100, 200, 400, 800, 1_600, 3_200, 6_400,
                      12_800, 25_600, 51_200)


@dataclass
class LoadgenResult:
    """One closed-loop measurement with service-side counters."""

    mode: str
    concurrency: int
    duration_s: float
    completed: int = 0
    errors: int = 0
    #: Re-invocations issued by the retry path (chaos mode).
    retries: int = 0
    #: Client-observed end-to-end latencies, microseconds.
    latencies_us: List[int] = field(default_factory=list)
    #: Service-side counters, summed over the replicas.
    ops_completed: int = 0
    ops_coalesced: int = 0
    fast_path_hits: int = 0
    fast_path_fallbacks: int = 0
    ccs_transmitted: int = 0
    rounds_completed: int = 0

    @property
    def ops_per_s(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_us(self) -> float:
        return percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return percentile(self.latencies_us, 0.99)

    @property
    def p999_us(self) -> float:
        return percentile(self.latencies_us, 0.999)

    def latency_buckets(self) -> List[List]:
        """Cumulative latency histogram: ``[[le_us, count], ...]`` ending
        with ``["+Inf", total]`` (Prometheus-shaped, JSON-able)."""
        ordered = sorted(self.latencies_us)
        buckets: List[List] = []
        index = 0
        for bound in LATENCY_BUCKETS_US:
            while index < len(ordered) and ordered[index] <= bound:
                index += 1
            buckets.append([bound, index])
        buckets.append(["+Inf", len(ordered)])
        return buckets

    @property
    def ccs_per_op(self) -> float:
        """Total CCS messages on the wire per completed client call.

        Exactly one CCS message is transmitted per round group-wide
        (duplicate suppression), so this is rounds / ops: ~1.0 in
        per-operation mode, well below 1.0 when rounds coalesce.
        """
        return self.ccs_transmitted / self.completed if self.completed else 0.0

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "errors": self.errors,
            "retries": self.retries,
            "ops_per_s": round(self.ops_per_s, 1),
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "latency_buckets_us": self.latency_buckets(),
            "ccs_per_op": round(self.ccs_per_op, 4),
            "ccs_transmitted": self.ccs_transmitted,
            "rounds_completed": self.rounds_completed,
            "ops_completed": self.ops_completed,
            "ops_coalesced": self.ops_coalesced,
            "fast_path_hits": self.fast_path_hits,
            "fast_path_fallbacks": self.fast_path_fallbacks,
        }


@dataclass
class LoadgenShardResult:
    """One closed-loop measurement against a sharded deployment."""

    shards: int
    shard_size: int
    #: Closed-loop workers *per shard* (the population is
    #: ``shards * concurrency`` workers spread by the routing ring).
    concurrency: int
    duration_s: float
    warmup_s: float
    zipf_s: float
    clients: int = 0
    completed: int = 0
    errors: int = 0
    migrations: int = 0
    latencies_us: List[int] = field(default_factory=list)
    #: Completed calls served by each shard (keyed by shard id).
    per_shard_completed: Dict[int, int] = field(default_factory=dict)
    #: The overlay's post-warmup skew envelope (see SkewTracker).
    skew_envelope: Dict = field(default_factory=dict)
    summaries_sent: int = 0
    summaries_received: int = 0
    oracle_report: Optional[Dict] = None

    @property
    def ops_per_s(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_us(self) -> float:
        return percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return percentile(self.latencies_us, 0.99)

    def per_shard_ops_per_s(self) -> Dict[int, float]:
        if not self.duration_s:
            return {shard: 0.0 for shard in self.per_shard_completed}
        return {shard: completed / self.duration_s
                for shard, completed in self.per_shard_completed.items()}

    @property
    def imbalance(self) -> float:
        """Hottest shard's share of completed calls over the fair share
        (1.0 = perfectly balanced; rises with the zipf exponent)."""
        if not self.completed or not self.per_shard_completed:
            return 0.0
        fair = self.completed / len(self.per_shard_completed)
        return max(self.per_shard_completed.values()) / fair

    def to_dict(self) -> Dict:
        ops = self.per_shard_ops_per_s()
        return {
            "mode": "sharded",
            "shards": self.shards,
            "shard_size": self.shard_size,
            "concurrency_per_shard": self.concurrency,
            "clients": self.clients,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "zipf_s": self.zipf_s,
            "completed": self.completed,
            "errors": self.errors,
            "migrations": self.migrations,
            "ops_per_s": round(self.ops_per_s, 1),
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "imbalance": round(self.imbalance, 3),
            "per_shard": {
                str(shard): {
                    "completed": self.per_shard_completed.get(shard, 0),
                    "ops_per_s": round(ops.get(shard, 0.0), 1),
                }
                for shard in sorted(self.per_shard_completed)
            },
            "skew_envelope": dict(self.skew_envelope),
            "summaries_sent": self.summaries_sent,
            "summaries_received": self.summaries_received,
            "oracle": self.oracle_report,
        }


def zipf_identities(count: int, *, universe: int, s: float,
                    rng) -> List[int]:
    """Draw ``count`` client identities from a zipf(``s``) popularity
    distribution over ``universe`` ranks (pure python — the bench path
    must not depend on numpy).  ``s == 0`` degenerates to uniform."""
    weights: List[float] = []
    total = 0.0
    for rank in range(1, universe + 1):
        weight = 1.0 / (rank ** s) if s else 1.0
        total += weight
        weights.append(total)  # cumulative
    identities = []
    for _ in range(count):
        point = rng.random() * total
        low, high = 0, universe - 1
        while low < high:
            mid = (low + high) // 2
            if weights[mid] < point:
                low = mid + 1
            else:
                high = mid
        identities.append(low)
    return identities


def run_loadgen_sharded(
    *,
    shards: int = 4,
    shard_size: int = 3,
    concurrency: int = 8,
    duration_s: float = 0.5,
    warmup_s: float = 1.25,
    seed: int = 0,
    zipf_s: float = 0.0,
    think_s: float = 0.0,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
    with_oracle: bool = True,
) -> LoadgenShardResult:
    """Closed-loop load against ``shards`` time domains via the router.

    Boots a :class:`~repro.shard.cluster.ShardedTestbed` (one CCS ring
    per shard on a shared LAN), starts the gradient overlay, lets it
    align the shard epochs for ``warmup_s``, then runs
    ``shards * concurrency`` closed-loop workers for ``duration_s``
    through a :class:`~repro.shard.router.ShardRouter`.

    With ``zipf_s == 0`` every worker gets a distinct session key (the
    ring spreads them near-uniformly); with ``zipf_s > 0`` worker
    *routing identities* are drawn zipf-skewed from a fixed population,
    so hot identities pile multiple workers onto one shard and the
    per-shard ops split in the result shows the imbalance.

    ``think_s > 0`` inserts a per-call think time (open-ish loop).  The
    default closed loop measures capacity, but at very low worker counts
    saturation makes round latency — and with it the round-commit clock
    inflation — spiky enough to leave the steady-state hop envelope;
    tests probing the machinery rather than capacity should think.
    """
    import random

    from ..net.daemon import TimeApp
    from ..shard import (
        GradientOverlay,
        OverlayConfig,
        ShardedTestbed,
        ShardRouter,
        ShardSession,
    )

    bed = ShardedTestbed(shards=shards, shard_size=shard_size, seed=seed)
    bed.deploy_shards(TimeApp, fast_path=fast_path,
                      max_staleness_us=max_staleness_us)
    overlay_config = OverlayConfig(
        secret=f"loadgen-{seed}", warmup_s=warmup_s)
    oracle = None
    if with_oracle:
        from ..chaos.oracle import InvariantOracle
        oracle = InvariantOracle(staleness_budget_us=max_staleness_us)
    overlay = GradientOverlay(bed, overlay_config, oracle=oracle)
    router = ShardRouter(
        bed, oracle=oracle,
        oracle_gate=lambda: overlay.skew.warmed_up,
        rate_slack_us=overlay_config.hop_bound_us)

    result = LoadgenShardResult(
        shards=shards, shard_size=shard_size, concurrency=concurrency,
        duration_s=duration_s, warmup_s=warmup_s, zipf_s=zipf_s,
        clients=shards * concurrency)

    rng = random.Random(seed ^ 0x5ADE)
    sessions: List[ShardSession] = []
    if zipf_s > 0:
        population = zipf_identities(
            result.clients, universe=max(4, 4 * result.clients),
            s=zipf_s, rng=rng)
        for worker, identity in enumerate(population):
            session = router.session(f"client-{identity}#w{worker}")
            session.route_key = f"client-{identity}"
            sessions.append(session)
    else:
        for worker in range(result.clients):
            sessions.append(router.session(f"client-{worker}"))

    bed.start()
    overlay.start()
    if oracle is not None:
        oracle.attach()

    # Workers run through the warmup too — group offsets only move when
    # rounds commit, so the epoch alignment needs load to happen at all.
    # Only calls issued after the warmup boundary are tallied.
    measure_start = bed.sim.now + warmup_s
    deadline = measure_start + duration_s

    def worker(session: ShardSession):
        from ..errors import RpcTimeout

        while bed.sim.now < deadline:
            start_s = bed.sim.now
            try:
                yield from router.call(session, timeout=duration_s + 2.0)
            except RpcTimeout:
                if start_s >= measure_start:
                    result.errors += 1
                continue
            if start_s >= measure_start:
                result.completed += 1
                result.latencies_us.append(
                    int((bed.sim.now - start_s) * 1e6))
                shard = session.shard
                result.per_shard_completed[shard] = (
                    result.per_shard_completed.get(shard, 0) + 1)
            if think_s > 0:
                yield bed.sim.timeout(think_s)
        return None

    workers = [
        bed.sim.process(worker(session), name=f"loadgen-shard-{index}")
        for index, session in enumerate(sessions)
    ]
    bed.run(warmup_s + duration_s + 2.0)  # run past the deadline to drain
    for proc in workers:
        if proc.triggered and not proc.ok:
            proc._fail_silently = True
            raise proc.value

    if oracle is not None:
        oracle.detach()
        oracle.finish(bed,
                      groups=[bed.group_of(s) for s in range(shards)])
        result.oracle_report = oracle.report()
    result.migrations = sum(s.migrations for s in router.sessions.values())
    result.skew_envelope = overlay.skew.envelope()
    result.summaries_sent = overlay.summaries_sent
    result.summaries_received = overlay.summaries_received
    return result


def record_shard_benchmark(path, single: LoadgenShardResult,
                           sharded: LoadgenShardResult) -> Dict:
    """Append one shard-scaling measurement to the benchmark trajectory.

    Same document as :func:`record_benchmark` (the runs list in
    ``BENCH_throughput.json``); a sharded run carries the single-shard
    baseline, the aggregate scaling ratio, and the measured inter-shard
    skew envelope.
    """
    path = Path(path)
    doc: Dict = {"benchmark": "loadgen-throughput", "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(
                    existing.get("runs"), list):
                doc = existing
        except ValueError:
            pass
    run: Dict = {
        "recorded_at": datetime.date.today().isoformat(),
        "kind": "shard-scaling",
        "modes": {
            "single-shard": single.to_dict(),
            "sharded": sharded.to_dict(),
        },
        "skew_envelope": dict(sharded.skew_envelope),
    }
    if single.ops_per_s:
        run["scaling_vs_single_shard"] = round(
            sharded.ops_per_s / single.ops_per_s, 2)
    doc["runs"].append(run)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def _mode_label(time_source: str, coalesce: bool, fast_path: bool) -> str:
    if time_source != "cts":
        return time_source
    if fast_path:
        return "coalesced+fast-path"
    return "coalesced" if coalesce else "per-op-rounds"


def run_loadgen(
    *,
    concurrency: int = 16,
    duration_s: float = 0.3,
    time_source: str = "cts",
    coalesce: bool = True,
    fast_path: bool = False,
    max_staleness_us: int = 2_000,
    seed: int = 0,
    bed: Optional[Testbed] = None,
    group: str = "svc",
    method: str = "get_time",
    client_node: str = "n0",
    server_nodes=("n1", "n2", "n3"),
) -> LoadgenResult:
    """Run ``concurrency`` closed-loop workers for ``duration_s``.

    Pass a pre-built ``bed`` with ``group`` already deployed to measure a
    custom deployment; otherwise the standard simulated bed is built from
    the remaining keyword arguments.
    """
    if bed is None:
        bed = Testbed(seed=seed, cluster_config=ClusterConfig(num_nodes=4))
        bed.deploy(
            group, ThroughputApp, list(server_nodes),
            time_source=time_source, coalesce=coalesce, fast_path=fast_path,
            max_staleness_us=max_staleness_us,
        )
    client = bed.client(client_node)
    bed.start()

    result = LoadgenResult(
        mode=_mode_label(time_source, coalesce, fast_path),
        concurrency=concurrency,
        duration_s=duration_s,
    )
    deadline = bed.sim.now + duration_s

    def worker():
        while bed.sim.now < deadline:
            start_us = client.node.read_clock_us()
            reply = yield client.call(group, method, timeout=duration_s + 2.0)
            if reply.ok:
                result.completed += 1
                result.latencies_us.append(
                    client.node.read_clock_us() - start_us)
            else:
                result.errors += 1
        return None

    workers = [
        bed.sim.process(worker(), name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    bed.run(duration_s + 2.5)  # run past the deadline to drain
    for proc in workers:
        if proc.triggered and not proc.ok:
            proc._fail_silently = True
            raise proc.value

    for replica in bed.replicas(group).values():
        stats = getattr(replica.time_source, "stats", None)
        if stats is None:
            continue
        result.ops_completed += getattr(stats, "ops_completed", 0)
        result.ops_coalesced += getattr(stats, "ops_coalesced", 0)
        result.fast_path_hits += getattr(stats, "fast_path_hits", 0)
        result.fast_path_fallbacks += getattr(stats, "fast_path_fallbacks", 0)
        result.ccs_transmitted += getattr(stats, "ccs_transmitted", 0)
        result.rounds_completed += getattr(stats, "rounds_completed", 0)
    # rounds_completed counts once per replica; report the group view.
    replica_count = len(bed.replicas(group)) or 1
    result.rounds_completed //= replica_count
    return result


def run_loadgen_chaos(
    *,
    concurrency: int = 16,
    duration_s: float = 0.6,
    seed: int = 0,
    loss_rate: float = 0.02,
    max_staleness_us: int = 2_000,
) -> LoadgenResult:
    """Throughput under faults: lossy LAN plus a mid-run replica crash.

    One server replica is crashed a third of the way through the window
    and recovered (state transfer and all) at two thirds; the whole run
    sees ``loss_rate`` random frame loss.  Workers call through
    :meth:`~repro.rpc.client.RpcClient.retrying_call`, so the jittered
    backoff + re-invocation path — not luck — is what keeps the
    client-visible error rate bounded.  The result lands in the same
    benchmark trajectory as the fault-free modes (``mode="chaos"``).
    """
    from ..sim.faults import FaultPlan

    bed = Testbed(seed=seed, cluster_config=ClusterConfig(
        num_nodes=4, loss_rate=loss_rate))
    group, method = "svc", "get_time"
    bed.deploy(group, ThroughputApp, ["n1", "n2", "n3"],
               time_source="cts", coalesce=True,
               max_staleness_us=max_staleness_us)
    client = bed.client("n0")
    bed.start()

    result = LoadgenResult(
        mode="chaos",
        concurrency=concurrency,
        duration_s=duration_s,
    )
    plan = (
        FaultPlan()
        .crash("n3", at=duration_s / 3)
        .recover("n3", at=2 * duration_s / 3)
        .call(lambda: bed.add_replica(group, "n3", ThroughputApp,
                                      time_source="cts", coalesce=True,
                                      max_staleness_us=max_staleness_us),
              at=2 * duration_s / 3)
    )
    plan.arm(bed)
    deadline = bed.sim.now + duration_s

    def worker():
        while bed.sim.now < deadline:
            start_us = client.node.read_clock_us()
            try:
                reply = yield from client.retrying_call(
                    group, method, timeout=0.3, attempts=5)
            except Exception:
                result.errors += 1
                continue
            if reply.ok:
                result.completed += 1
                result.latencies_us.append(
                    client.node.read_clock_us() - start_us)
            else:
                result.errors += 1
        return None

    workers = [
        bed.sim.process(worker(), name=f"loadgen-chaos-{i}")
        for i in range(concurrency)
    ]
    bed.run(duration_s + 4.0)  # run past the deadline to drain retries
    for proc in workers:
        if proc.triggered and not proc.ok:
            proc._fail_silently = True
            raise proc.value
    result.retries = client.stats.retries

    for replica in bed.replicas(group).values():
        stats = getattr(replica.time_source, "stats", None)
        if stats is None:
            continue
        result.ops_completed += getattr(stats, "ops_completed", 0)
        result.ops_coalesced += getattr(stats, "ops_coalesced", 0)
        result.fast_path_hits += getattr(stats, "fast_path_hits", 0)
        result.fast_path_fallbacks += getattr(stats, "fast_path_fallbacks", 0)
        result.ccs_transmitted += getattr(stats, "ccs_transmitted", 0)
        result.rounds_completed += getattr(stats, "rounds_completed", 0)
    replica_count = len(bed.replicas(group)) or 1
    result.rounds_completed //= replica_count
    return result


def run_loadgen_comparison(
    *,
    concurrency: int = 16,
    duration_s: float = 0.3,
    seed: int = 0,
    fast_path: bool = False,
    max_staleness_us: int = 2_000,
) -> Dict[str, LoadgenResult]:
    """The benchmark pair: per-op rounds vs coalesced (optionally with
    the fast path), identical load otherwise."""
    per_op = run_loadgen(
        concurrency=concurrency, duration_s=duration_s, seed=seed,
        coalesce=False,
    )
    coalesced = run_loadgen(
        concurrency=concurrency, duration_s=duration_s, seed=seed,
        coalesce=True, fast_path=fast_path,
        max_staleness_us=max_staleness_us,
    )
    return {per_op.mode: per_op, coalesced.mode: coalesced}


def record_benchmark(path, results: Dict[str, LoadgenResult]) -> Dict:
    """Append one comparison to the persisted benchmark trajectory.

    ``path`` holds a JSON document ``{"benchmark": ..., "runs": [...]}``;
    each call appends one run (per-mode numbers plus the coalesced-mode
    speedup over per-op rounds), so the file accumulates a trajectory of
    the service's throughput across changes.  A missing or malformed
    file is replaced with a fresh document.
    """
    path = Path(path)
    doc: Dict = {"benchmark": "loadgen-throughput", "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(
                    existing.get("runs"), list):
                doc = existing
        except ValueError:
            pass
    run: Dict = {
        "recorded_at": datetime.date.today().isoformat(),
        "modes": {mode: r.to_dict() for mode, r in sorted(results.items())},
    }
    per_op = results.get("per-op-rounds")
    coalesced = (results.get("coalesced+fast-path")
                 or results.get("coalesced"))
    if per_op is not None and coalesced is not None and per_op.ops_per_s:
        run["speedup_vs_per_op"] = round(
            coalesced.ops_per_s / per_op.ops_per_s, 2)
    doc["runs"].append(run)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
