"""Open-loop overload generation against admission-controlled gateways.

The closed-loop generator (:mod:`repro.workloads.loadgen`) cannot
overload the service: its in-flight population is pinned at the worker
count, so when the service slows down the offered rate falls with it.
Real client populations do not behave that way — arrivals keep coming
whether or not earlier requests completed.  This module drives that
regime: a Poisson arrival process at a configured rate, client
identities drawn zipf-skewed from a fixed population (a few hot
identities, a long cool tail), fired at live admission-controlled
gateways over real UDP.

What it measures is the shed-before-collapse contract:

* **goodput** — served replies per second — should track offered load
  up to capacity and *hold near capacity* beyond it;
* beyond capacity the gateway answers the excess with typed
  ``Overloaded`` + retry-after (**shed rate** rises with overload);
* the latency of *served* requests stays bounded (the admission queue
  is short by construction), instead of growing with the backlog.

:func:`run_overload_suite` packages the acceptance measurement: a
closed-loop capacity calibration, an unloaded latency baseline, then
open-loop runs at 1x/2x/4x the calibrated capacity, appended to the
benchmark trajectory by :func:`record_overload_benchmark`.
"""

from __future__ import annotations

import bisect
import datetime
import json
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..control.admission import AdmissionConfig, is_overloaded, retry_after_of
from ..errors import RpcTimeout
from ..net.client import LiveCaller
from ..replication.envelope import MsgType, make_envelope
from ..rpc.messages import Invocation
from .loadgen import percentile

GROUP = "timesvc"


@dataclass
class OpenLoopResult:
    """One open-loop measurement at a fixed offered rate."""

    offered_rate_ops_s: float
    duration_s: float
    identities: int
    zipf_s: float
    sent: int = 0
    served: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    #: End-to-end latencies of *served* requests, microseconds.
    latencies_us: List[int] = field(default_factory=list)
    #: Retry-after hints carried by the shed replies, seconds.
    retry_after_s: List[float] = field(default_factory=list)

    @property
    def goodput_ops_s(self) -> float:
        return self.served / self.duration_s if self.duration_s else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.sent if self.sent else 0.0

    @property
    def p50_us(self) -> float:
        return percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return percentile(self.latencies_us, 0.99)

    def to_dict(self) -> Dict:
        mean_retry = (sum(self.retry_after_s) / len(self.retry_after_s)
                      if self.retry_after_s else 0.0)
        return {
            "mode": "open-loop",
            "offered_rate_ops_s": round(self.offered_rate_ops_s, 1),
            "duration_s": self.duration_s,
            "identities": self.identities,
            "zipf_s": self.zipf_s,
            "sent": self.sent,
            "served": self.served,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "goodput_ops_s": round(self.goodput_ops_s, 1),
            "shed_rate": round(self.shed_rate, 4),
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "mean_retry_after_s": round(mean_retry, 4),
        }


class _ZipfPicker:
    """Per-arrival zipf(``s``) identity draw (cumulative weights built
    once; ``s == 0`` degenerates to uniform)."""

    def __init__(self, universe: int, s: float, rng):
        self._cum: List[float] = []
        total = 0.0
        for rank in range(1, universe + 1):
            total += 1.0 / (rank ** s) if s else 1.0
            self._cum.append(total)
        self._total = total
        self._rng = rng

    def pick(self) -> int:
        return bisect.bisect_left(self._cum, self._rng.random() * self._total)


@dataclass
class _PendingOp:
    identity: int
    sent_at: float
    deadline: float


class OpenLoopInjector:
    """One UDP socket hosting a whole zipf-skewed client population.

    Every identity gets its own client group (so the gateway's
    per-client fairness and dedup windows see distinct clients) but all
    replies return to this one socket; ``conn_id`` encodes the identity,
    the per-identity sequence number completes the operation id.
    Arrivals are fired on a Poisson schedule regardless of outstanding
    requests — the defining property of open-loop load.
    """

    def __init__(self, servers: Sequence, *, identities: int,
                 zipf_s: float, rng, group: str = GROUP,
                 deadline_s: float = 0.5,
                 method: str = "gettimeofday",
                 bind_host: str = "127.0.0.1"):
        self.servers = list(servers)
        self.identities = identities
        self.group = group
        self.deadline_s = deadline_s
        self.method = method
        self.rng = rng
        self.picker = _ZipfPicker(identities, zipf_s, rng)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((bind_host, 0))
        self._seqs = [0] * identities
        #: (conn_id, seq) -> _PendingOp, insertion-ordered by send time
        #: (deadlines are monotone in it, so expiry pops from the front).
        self._pending: "OrderedDict[tuple, _PendingOp]" = OrderedDict()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.result: Optional[OpenLoopResult] = None

    # -- sending -------------------------------------------------------

    def _send_one(self, now: float) -> None:
        identity = self.picker.pick()
        self._seqs[identity] += 1
        seq = self._seqs[identity]
        conn_id = identity + 1
        envelope = make_envelope(
            MsgType.REQUEST,
            f"client.ol{identity}",
            self.group,
            conn_id,
            seq,
            f"ol{identity}",
            body=Invocation(self.method, (None,)),
        )
        from ..net.wire import encode_frame

        data = encode_frame(f"ol{identity}", envelope)
        # Identities are sticky to a gateway: dedup and fair-queue state
        # for one client lives on one node.
        address = self.servers[identity % len(self.servers)]
        with self._lock:
            self._pending[(conn_id, seq)] = _PendingOp(
                identity, now, now + self.deadline_s)
        try:
            self.sock.sendto(data, address)
        except OSError:
            with self._lock:
                self._pending.pop((conn_id, seq), None)
            self.result.errors += 1
            return
        self.result.sent += 1

    def _sender(self, rate_ops_s: float, duration_s: float) -> None:
        start = time.monotonic()
        deadline = start + duration_s
        next_at = start
        while True:
            next_at += self.rng.expovariate(rate_ops_s)
            if next_at >= deadline:
                break
            pause = next_at - time.monotonic()
            if pause > 0:
                time.sleep(pause)
            self._send_one(time.monotonic())

    # -- receiving -----------------------------------------------------

    def _expire(self, now: float) -> None:
        with self._lock:
            while self._pending:
                key = next(iter(self._pending))
                if self._pending[key].deadline > now:
                    break
                del self._pending[key]
                self.result.timeouts += 1

    def _receiver(self) -> None:
        from ..net.wire import FrameError, decode_frame

        self.sock.settimeout(0.05)
        while not (self._stop.is_set() and not self._pending):
            self._expire(time.monotonic())
            try:
                data, _addr = self.sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            received = time.monotonic()
            try:
                _src, envelope = decode_frame(data)
            except FrameError:
                continue
            header = envelope.header
            if header.msg_type is not MsgType.REPLY:
                continue
            key = (header.conn_id, header.msg_seq_num)
            with self._lock:
                op = self._pending.pop(key, None)
            if op is None:
                continue  # duplicate replica reply or late straggler
            result = envelope.body
            if is_overloaded(result):
                self.result.shed += 1
                self.result.retry_after_s.append(retry_after_of(result))
            elif getattr(result, "ok", False):
                self.result.served += 1
                self.result.latencies_us.append(
                    int((received - op.sent_at) * 1_000_000))
            else:
                self.result.errors += 1

    # -- driver --------------------------------------------------------

    def run(self, bed, *, rate_ops_s: float, duration_s: float,
            zipf_s: float, drain_s: float = 1.0) -> OpenLoopResult:
        """Fire Poisson arrivals for ``duration_s`` while pumping the
        testbed's event loop from this thread."""
        self.result = OpenLoopResult(
            offered_rate_ops_s=rate_ops_s, duration_s=duration_s,
            identities=self.identities, zipf_s=zipf_s)
        sender = threading.Thread(
            target=self._sender, args=(rate_ops_s, duration_s),
            name="openloop-sender", daemon=True)
        receiver = threading.Thread(
            target=self._receiver, name="openloop-receiver", daemon=True)
        receiver.start()
        sender.start()
        deadline = time.monotonic() + duration_s
        while time.monotonic() < deadline:
            bed.run(0.05)
        sender.join(timeout=5.0)
        # Drain stragglers: replies already in flight when the window
        # closed still count (their ops were offered inside it).
        grace = time.monotonic() + drain_s
        while self._pending and time.monotonic() < grace:
            bed.run(0.05)
        self._stop.set()
        receiver.join(timeout=5.0)
        return self.result

    def close(self) -> None:
        self._stop.set()
        self.sock.close()


def calibrate_capacity(bed, servers, *, threads: int = 8,
                       duration_s: float = 1.5) -> float:
    """Measured closed-loop capacity, ops/s: ``threads`` workers, each
    one-in-flight, against the same gateways the open-loop run will hit.
    This is the 1x anchor for the overload factors."""
    stop = threading.Event()
    counts = [0] * threads

    def work(index: int) -> None:
        # Rotate the server list per worker: the caller prefers the head
        # of its list, so without rotation every worker would pile onto
        # one gateway and calibrate that gateway, not the cluster.
        pivot = index % len(servers)
        spread = list(servers[pivot:]) + list(servers[:pivot])
        caller = LiveCaller(spread, client_id=f"cal{index}")
        last = None
        try:
            while not stop.is_set():
                try:
                    outcome = caller.call("gettimeofday", last, timeout=1.0)
                except RpcTimeout:
                    continue
                result = outcome.first()
                if result.ok:
                    counts[index] += 1
                    last = result.value["micros"]
        finally:
            caller.close()

    workers = [threading.Thread(target=work, args=(i,), daemon=True)
               for i in range(threads)]
    for worker in workers:
        worker.start()
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        bed.run(0.05)
    stop.set()
    for worker in workers:
        worker.join(timeout=3.0)
    return sum(counts) / duration_s


def run_overload_suite(
    *,
    seed: int = 0,
    num_nodes: int = 3,
    duration_s: float = 2.0,
    identities: int = 64,
    zipf_s: float = 1.1,
    factors: Sequence[float] = (1.0, 2.0, 4.0),
    baseline_fraction: float = 0.25,
    deadline_s: float = 0.5,
    calibration_s: float = 1.5,
    admission_config: Optional[AdmissionConfig] = None,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
) -> Dict:
    """The overload acceptance measurement, end to end.

    Boots a live cluster with admission-controlled gateways, calibrates
    closed-loop capacity, records an unloaded open-loop baseline
    (``baseline_fraction`` of capacity), then drives each overload
    factor.  Returns a JSON-able document; feed it to
    :func:`record_overload_benchmark` to persist.
    """
    import random

    from ..control.rolling import _install_gateway
    from ..net.daemon import TimeApp
    from ..net.testbed import LiveTestbed

    node_ids = [f"n{i}" for i in range(num_nodes)]
    config = admission_config or AdmissionConfig()
    bed = LiveTestbed(node_ids=node_ids, seed=seed)
    gateways: list = []
    try:
        bed.deploy(GROUP, TimeApp, nodes=node_ids,
                   style="active", time_source="cts",
                   fast_path=fast_path, max_staleness_us=max_staleness_us)
        bed.start()
        for node_id in node_ids:
            _install_gateway(bed, node_id, gateways, config)
        servers = [bed.node(node_id).address for node_id in node_ids]

        capacity = calibrate_capacity(bed, servers,
                                      duration_s=calibration_s)
        rng = random.Random(seed ^ 0x09E2)

        def one_run(rate: float, run_s: float = duration_s) -> OpenLoopResult:
            injector = OpenLoopInjector(
                servers, identities=identities, zipf_s=zipf_s, rng=rng,
                deadline_s=deadline_s)
            try:
                return injector.run(bed, rate_ops_s=rate,
                                    duration_s=run_s, zipf_s=zipf_s)
            finally:
                injector.close()

        # The baseline p99 anchors the acceptance ratio, and at a
        # fraction of capacity the sample count is small — run it twice
        # as long so its tail estimate is not dominated by a handful of
        # scheduler hiccups.
        baseline = one_run(max(10.0, baseline_fraction * capacity),
                           run_s=duration_s * 2)
        points = {f"{factor:g}x": one_run(factor * capacity)
                  for factor in factors}

        suite: Dict = {
            "kind": "open-loop-overload",
            "seed": seed,
            "nodes": num_nodes,
            "capacity_ops_s": round(capacity, 1),
            "admission": {
                "max_inflight": config.max_inflight,
                "max_global_queue": config.max_global_queue,
                "max_client_queue": config.max_client_queue,
                "max_queue_delay_s": config.max_queue_delay_s,
            },
            "baseline": baseline.to_dict(),
            "points": {label: r.to_dict()
                       for label, r in points.items()},
            "admission_stats": [g.admission.stats.to_dict()
                                for g in gateways
                                if g.admission is not None],
        }
        worst = points.get(f"{max(factors):g}x")
        if worst is not None and baseline.p99_us:
            # vs the unloaded anchor: includes the latency cost of
            # *keeping the pipeline loaded* at all (queues are empty at
            # baseline_fraction of capacity by construction).
            suite["p99_ratio_vs_baseline"] = round(
                worst.p99_us / baseline.p99_us, 2)
        saturated = points.get(f"{min(factors):g}x")
        if (worst is not None and saturated is not None
                and saturated is not worst and saturated.p99_us):
            # vs the highest non-overloaded operating point: the
            # no-collapse bound — overload beyond saturation must not
            # stretch the served tail, only raise the shed rate.
            suite["p99_ratio_vs_saturation"] = round(
                worst.p99_us / saturated.p99_us, 2)
        return suite
    finally:
        bed.shutdown()


def record_overload_benchmark(path, suite: Dict) -> Dict:
    """Append one overload suite to the benchmark trajectory (same
    document as :func:`~repro.workloads.loadgen.record_benchmark`)."""
    path = Path(path)
    doc: Dict = {"benchmark": "loadgen-throughput", "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(
                    existing.get("runs"), list):
                doc = existing
        except ValueError:
            pass
    run = dict(suite)
    run["recorded_at"] = datetime.date.today().isoformat()
    doc["runs"].append(run)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
