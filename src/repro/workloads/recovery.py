"""EXT-RECOVERY workload: integration of a new clock (Section 3.2).

A three-way service is running and answering timestamped requests; a
fourth replica joins mid-run.  The workload verifies and measures that

* the group clock stays strictly monotone across the join,
* the joiner's subsequent readings are identical to the old members',
* the joiner adopted its offset via the special CCS round, and
* the state transfer carried the CCS round counters so rounds align.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..replication import Application
from ..sim import ClusterConfig
from ..testbed import Testbed


class RecoveryClockApp(Application):
    """Stateful time server: counts requests, remembers timestamps."""

    def __init__(self):
        self.count = 0
        self.stamps: List[int] = []

    def stamped(self, ctx):
        yield ctx.compute(15e-6)
        value = yield ctx.gettimeofday()
        self.count += 1
        self.stamps.append(value.micros)
        return (self.count, value.micros)

    def get_state(self):
        return {"count": self.count, "stamps": list(self.stamps)}

    def set_state(self, state):
        self.count = state["count"]
        self.stamps = list(state["stamps"])


@dataclass
class RecoveryResult:
    """Outcome of one join-mid-run experiment."""

    seed: int
    before_us: List[int] = field(default_factory=list)
    after_us: List[int] = field(default_factory=list)
    #: The joiner's readings for the post-join calls.
    joiner_after_us: List[int] = field(default_factory=list)
    #: Offset adoptions the joiner performed while recovering.
    recovery_adoptions: int = 0
    #: Counts observed by the joiner vs an old member (state equality).
    joiner_count: int = 0
    member_count: int = 0
    #: Time from replica creation to state-transfer completion, seconds.
    integration_time_s: float = 0.0

    @property
    def monotone(self) -> bool:
        sequence = self.before_us + self.after_us
        return all(b > a for a, b in zip(sequence, sequence[1:]))

    @property
    def joiner_consistent(self) -> bool:
        return self.joiner_after_us == self.after_us[-len(self.joiner_after_us):]


def run_recovery_workload(
    *,
    seed: int = 0,
    calls_before: int = 6,
    calls_after: int = 6,
    epoch_spread_s: float = 30.0,
) -> RecoveryResult:
    """Run service, join a fourth replica mid-run, measure integration."""
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(
            num_nodes=4, clock_epoch_spread_s=epoch_spread_s
        ),
    )
    bed.deploy("svc", RecoveryClockApp, ["n1", "n2"], time_source="cts")
    client = bed.client("n0")
    bed.start()

    def calls(n):
        def scenario():
            values = []
            for _ in range(n):
                result, _ = yield from client.timed_call(
                    "svc", "stamped", timeout=3.0
                )
                assert result.ok, result.error
                values.append(result.value[1])
            return values

        return bed.run_process(scenario())

    result = RecoveryResult(seed=seed)
    result.before_us = calls(calls_before)

    joined_at = bed.sim.now
    joiner = bed.add_replica("svc", "n3", RecoveryClockApp, time_source="cts")
    while not joiner.state_transfer.ready and bed.sim.now < joined_at + 5.0:
        bed.run(0.01)
    result.integration_time_s = bed.sim.now - joined_at

    result.after_us = calls(calls_after)
    bed.run(0.05)
    result.joiner_after_us = [
        v.micros for _, _, _, v in joiner.time_source.readings
    ][-calls_after:]
    result.recovery_adoptions = joiner.time_source.stats.recovery_adoptions
    result.joiner_count = joiner.app.count
    result.member_count = bed.replicas("svc")["n1"].app.count
    return result
