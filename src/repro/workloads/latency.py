"""Figure 5 workload: end-to-end latency with and without the CTS.

Reproduces Section 4.2's first application: "the client invokes a remote
method that returns the current time in two CORBA longs.  The server
simply calls gettimeofday()."  The client runs unreplicated on the ring
leader n0; the server is three-way actively replicated on n1-n3.  The
probability density function of the end-to-end latency is measured at
the client over many invocations, with and without the consistent time
service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..replication import Application
from ..sim import ClusterConfig
from ..testbed import Testbed


class TimeServerApp(Application):
    """Returns the current time in two longs (tv_sec, tv_usec)."""

    #: CPU cost of ORB dispatch + servant body before the clock call.
    WORK_S = 80e-6
    #: CPU cost of marshaling the reply after the clock call.
    MARSHAL_S = 30e-6

    def get_time(self, ctx):
        yield ctx.compute(self.WORK_S)
        value = yield ctx.gettimeofday()
        yield ctx.compute(self.MARSHAL_S)
        return (value.seconds, value.microseconds)


#: Per-node CPU speed factors calibrated so the synchronizer skew matches
#: the paper's measured CCS counts (1 / 9,977 / 22 across n1 / n2 / n3):
#: one server replica is consistently much faster, so it decides nearly
#: every round, and the slower replicas' clock operations usually find
#: the winning CCS message already in their input buffers.
PAPER_CPU_PROFILE = {"n1": 0.35, "n2": 1.6, "n3": 0.4}


@dataclass
class LatencyRunResult:
    """Outcome of one latency run."""

    time_source: str
    invocations: int
    #: End-to-end latencies at the client, microseconds, in call order.
    latencies_us: List[int] = field(default_factory=list)
    #: CCS messages transmitted per server node (empty for baselines).
    ccs_transmitted: Dict[str, int] = field(default_factory=dict)
    #: Rounds decided by the time service (0 for baselines).
    rounds: int = 0
    #: Clock operations completed per replica (0 for baselines).
    ops_completed: int = 0
    #: Operations that shared a coalesced round, per replica.
    ops_coalesced: int = 0

    @property
    def mean_us(self) -> float:
        return sum(self.latencies_us) / len(self.latencies_us)


def run_latency_workload(
    *,
    time_source: str = "cts",
    invocations: int = 2_000,
    seed: int = 0,
    server_nodes: tuple = ("n1", "n2", "n3"),
    client_node: str = "n0",
    cpu_profile: dict = None,
    coalesce: bool = True,
) -> LatencyRunResult:
    """Run the Figure 5 measurement once.

    ``time_source="cts"`` measures with the consistent time service;
    ``"local"`` measures the same application without it (replica
    consistency is then *not* guaranteed — exactly the paper's caveat).
    ``cpu_profile`` maps node ids to relative CPU speeds; defaults to
    :data:`PAPER_CPU_PROFILE`.
    """
    profile = PAPER_CPU_PROFILE if cpu_profile is None else cpu_profile
    bed = Testbed(
        seed=seed,
        cluster_config=ClusterConfig(num_nodes=4, cpu_factor_overrides=profile),
    )
    bed.deploy(
        "timesvc", TimeServerApp, list(server_nodes),
        style="active", time_source=time_source, coalesce=coalesce,
    )
    client = bed.client(client_node)
    bed.start()

    def scenario():
        for _ in range(invocations):
            result, _latency = yield from client.timed_call(
                "timesvc", "get_time", timeout=5.0
            )
            assert result.ok, result.error
        return None

    bed.run_process(scenario())
    bed.run(0.05)

    run = LatencyRunResult(
        time_source=time_source,
        invocations=invocations,
        latencies_us=list(client.stats.latencies_us),
    )
    for node_id, replica in bed.replicas("timesvc").items():
        stats = getattr(replica.time_source, "stats", None)
        if stats is not None and hasattr(stats, "ccs_transmitted"):
            run.ccs_transmitted[node_id] = stats.ccs_transmitted
            run.rounds = max(run.rounds, len(replica.time_source.winners))
            run.ops_completed = max(run.ops_completed,
                                    getattr(stats, "ops_completed", 0))
            run.ops_coalesced = max(run.ops_coalesced,
                                    getattr(stats, "ops_coalesced", 0))
    return run
