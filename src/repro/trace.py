"""Structured protocol tracing.

Production debugging of a group-communication stack lives and dies by
its traces.  This module provides a lightweight, zero-cost-when-disabled
event stream that the protocol layers feed:

* ``round.start`` / ``round.won`` / ``round.suppressed`` — time service;
* ``membership.gather`` / ``membership.install`` — Totem membership;
* ``replica.promote`` / ``replica.checkpoint`` / ``state.transfer`` —
  replication;

Usage::

    from repro import trace

    with trace.capture() as events:
        ...run a scenario...
    for event in events:
        print(event)

    # or stream to a callback:
    trace.subscribe(print)
"""

from __future__ import annotations

import random
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """Causal identity of one cross-node operation.

    ``trace_id`` names the end-to-end operation (one client call);
    ``parent`` names the hop that forwarded it (``client.c7``,
    ``gw.n0``).  The context is carried in the live wire format
    (:mod:`repro.net.wire`), so every node an operation touches stamps
    its trace events with the same id and the
    :class:`~repro.obs.crossnode.CrossNodeSpanAssembler` can stitch
    per-node shards into one timeline.
    """

    trace_id: str
    parent: str = ""

    def child(self, hop: str) -> "TraceContext":
        """The context this hop forwards downstream: same trace, new
        causal parent."""
        return TraceContext(self.trace_id, hop)


def new_trace_id(rng: Optional[random.Random] = None) -> str:
    """A compact 64-bit hex trace id (deterministic given ``rng``)."""
    bits = (rng or random).getrandbits(64)
    return f"{bits:016x}"


class Baggage:
    """A bounded map from message identity to :class:`TraceContext`.

    Trace contexts ride the *frame*, not the envelope, so a message that
    crosses the Totem total order (request → regular message → delivery)
    loses its frame en route.  The receiving port parks the context
    here, keyed by the envelope's ``message_id``; downstream layers
    (replica execution, reply forwarding) look it up by the same key and
    the sending port re-attaches it to outgoing frames.  Bounded FIFO:
    one entry per in-flight operation, oldest evicted first.
    """

    LIMIT = 2048

    def __init__(self, limit: int = LIMIT):
        self.limit = limit
        self._entries: "OrderedDict[Hashable, TraceContext]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def put(self, key: Hashable, context: TraceContext) -> None:
        self._entries[key] = context
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def get(self, key: Hashable) -> Optional[TraceContext]:
        return self._entries.get(key)

    def clear(self) -> None:
        self._entries.clear()


#: The process-wide trace baggage (one node per daemon process; the
#: in-process testbeds share it, which is harmless — every node maps the
#: same message identity to the same context).
BAGGAGE = Baggage()


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    kind: str
    node: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.node}] {self.kind} {details}"


class _Subscription:
    """One registration of a sink.

    A unique token per ``subscribe()`` call: unsubscribing is scoped to
    this registration, so subscribing the same callable twice yields two
    independent handles and releasing one (even repeatedly) never strips
    the other.
    """

    __slots__ = ("sink",)

    def __init__(self, sink: Callable[[TraceEvent], None]):
        self.sink = sink


class Tracer:
    """A fan-out sink for trace events.

    Disabled (the default) it is a single attribute check per call site;
    enabling attaches sinks that receive every event.
    """

    def __init__(self):
        self._sinks: List[_Subscription] = []

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def subscribe(self, sink: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Attach a sink; returns an idempotent unsubscribe function
        scoped to this registration."""
        entry = _Subscription(sink)
        self._sinks.append(entry)

        def unsubscribe() -> None:
            try:
                self._sinks.remove(entry)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def emit(self, kind: str, node: str = "?", **fields: Any) -> None:
        """Record one event (no-op when no sink is attached)."""
        if not self._sinks:
            return
        event = TraceEvent(kind, node, fields)
        for entry in list(self._sinks):
            entry.sink(event)

    @contextmanager
    def capture(
        self, kinds: Optional[List[str]] = None
    ) -> Iterator[List[TraceEvent]]:
        """Collect events for the duration of a ``with`` block.

        ``kinds`` optionally filters by event kind prefix, e.g.
        ``["round."]`` keeps only time-service round events.
        """
        events: List[TraceEvent] = []

        def sink(event: TraceEvent) -> None:
            if kinds is None or any(event.kind.startswith(k) for k in kinds):
                events.append(event)

        unsubscribe = self.subscribe(sink)
        try:
            yield events
        finally:
            unsubscribe()


#: The process-wide tracer the protocol layers emit into.
TRACER = Tracer()

#: Convenience aliases mirroring the module docstring.
subscribe = TRACER.subscribe
emit = TRACER.emit
capture = TRACER.capture
