"""Structured protocol tracing.

Production debugging of a group-communication stack lives and dies by
its traces.  This module provides a lightweight, zero-cost-when-disabled
event stream that the protocol layers feed:

* ``round.start`` / ``round.won`` / ``round.suppressed`` — time service;
* ``membership.gather`` / ``membership.install`` — Totem membership;
* ``replica.promote`` / ``replica.checkpoint`` / ``state.transfer`` —
  replication;

Usage::

    from repro import trace

    with trace.capture() as events:
        ...run a scenario...
    for event in events:
        print(event)

    # or stream to a callback:
    trace.subscribe(print)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    kind: str
    node: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.node}] {self.kind} {details}"


class _Subscription:
    """One registration of a sink.

    A unique token per ``subscribe()`` call: unsubscribing is scoped to
    this registration, so subscribing the same callable twice yields two
    independent handles and releasing one (even repeatedly) never strips
    the other.
    """

    __slots__ = ("sink",)

    def __init__(self, sink: Callable[[TraceEvent], None]):
        self.sink = sink


class Tracer:
    """A fan-out sink for trace events.

    Disabled (the default) it is a single attribute check per call site;
    enabling attaches sinks that receive every event.
    """

    def __init__(self):
        self._sinks: List[_Subscription] = []

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def subscribe(self, sink: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Attach a sink; returns an idempotent unsubscribe function
        scoped to this registration."""
        entry = _Subscription(sink)
        self._sinks.append(entry)

        def unsubscribe() -> None:
            try:
                self._sinks.remove(entry)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def emit(self, kind: str, node: str = "?", **fields: Any) -> None:
        """Record one event (no-op when no sink is attached)."""
        if not self._sinks:
            return
        event = TraceEvent(kind, node, fields)
        for entry in list(self._sinks):
            entry.sink(event)

    @contextmanager
    def capture(
        self, kinds: Optional[List[str]] = None
    ) -> Iterator[List[TraceEvent]]:
        """Collect events for the duration of a ``with`` block.

        ``kinds`` optionally filters by event kind prefix, e.g.
        ``["round."]`` keeps only time-service round events.
        """
        events: List[TraceEvent] = []

        def sink(event: TraceEvent) -> None:
            if kinds is None or any(event.kind.startswith(k) for k in kinds):
                events.append(event)

        unsubscribe = self.subscribe(sink)
        try:
            yield events
        finally:
            unsubscribe()


#: The process-wide tracer the protocol layers emit into.
TRACER = Tracer()

#: Convenience aliases mirroring the module docstring.
subscribe = TRACER.subscribe
emit = TRACER.emit
capture = TRACER.capture
