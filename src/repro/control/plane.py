"""Live group reconfiguration: admit and drain replicas under load.

The paper's deployment model keeps a *fixed* replica set alive through
Totem membership; production elasticity needs the set itself to change
while the service keeps answering.  :class:`ControlPlane` drives both
directions against a running testbed (simulated or live — every wait is
expressed as ``bed.run(poll)`` steps, which advances virtual time on the
sim kernel and pumps the event loop on the live one):

**Join** re-uses the paper's §3.2 recovery machinery: the new replica
announces GET_STATE through the ordered request queue, shadows rounds
while queuing (``observe_while_recovering``), receives the checkpoint at
a quiescent point — including the special CCS round that integrates its
clock — and only then serves.  The control plane's job is sequencing and
*verification*: wait until state transfer reports ready, the group view
includes the joiner on every node, and (optionally) the joiner has
completed fresh CCS rounds of its own.

**Drain** is the inverse, built so the primary component never breaks:
the replica first quiesces (stops accepting new work locally; its
parked operations are already executing on every other active replica,
which is what "hand off" means under active replication), then leaves
the group with an **ordered** ``GROUP_LEAVE`` — every node observes the
same view sequence, so primary succession is deterministic — and only
after every remaining node's view excludes it is its endpoint removed.
The node itself *stays in the Totem ring*: its gateway keeps forwarding
client traffic into the order, so draining a replica is invisible to
clients routed at that node.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ReconfigurationError
from ..replication.replica import Replica

#: Default deadline for a reconfiguration step, in bed-clock seconds.
DEFAULT_TIMEOUT_S = 20.0


class ControlPlane:
    """Join/drain/restart driver for one replicated group on a testbed."""

    def __init__(
        self,
        bed,
        *,
        group: str = "timesvc",
        app_factory: Optional[Callable] = None,
        poll_s: float = 0.02,
        on_node_ready: Optional[Callable[[str], None]] = None,
        **replica_kwargs,
    ) -> None:
        self.bed = bed
        self.group = group
        if app_factory is None:
            # Imported here, not at module top: the gateway imports the
            # admission half of this package, so the package must not
            # pull the daemon module back in at import time.
            from ..net.daemon import TimeApp

            app_factory = TimeApp
        self.app_factory = app_factory
        self.poll_s = poll_s
        #: Invoked after a crashed node's stack is rebuilt, before its
        #: replica is re-added — the chaos/rolling drivers re-interpose
        #: their client gateway here (a recovered runtime is fresh).
        self.on_node_ready = on_node_ready
        #: Passed through to ``add_replica`` (style, time_source,
        #: fast_path, ... — keep them identical to the original deploy).
        self.replica_kwargs = dict(replica_kwargs)
        #: Chronological record of completed reconfigurations.
        self.log: List[Dict[str, object]] = []

    # -- queries -------------------------------------------------------

    def serving(self) -> List[str]:
        """Node ids currently hosting a replica of the group."""
        return sorted(self.bed.services.get(self.group, {}))

    def view_members(self, node_id: str) -> List[str]:
        """The group view as computed on ``node_id``."""
        return list(self.bed.runtimes[node_id]._views.get(self.group, []))

    def status(self) -> Dict[str, object]:
        replicas = self.bed.services.get(self.group, {})
        return {
            "group": self.group,
            "serving": sorted(replicas),
            "views": {node_id: self.view_members(node_id)
                      for node_id in self.bed.node_ids
                      if node_id in self.bed.runtimes},
            "ready": {node_id: replica.state_transfer.ready
                      for node_id, replica in replicas.items()},
            "log": list(self.log),
        }

    # -- join ----------------------------------------------------------

    def join(self, node_id: str, *, timeout_s: float = DEFAULT_TIMEOUT_S,
             require_rounds: int = 0) -> Replica:
        """Admit ``node_id`` as a serving replica and wait until it is
        fully caught up (state transferred, present in every view, and —
        when ``require_rounds`` is set and traffic flows — having
        completed that many fresh CCS rounds of its own)."""
        replicas = self.bed.services.get(self.group, {})
        existing = replicas.get(node_id)
        if existing is not None:
            if existing.endpoint.joined:
                return existing
            # An async drain left the group but has not finalized yet:
            # retire the departed replica now so the re-join starts from
            # a fresh endpoint (the finalizer's identity guard makes it
            # a no-op afterwards).
            self._retire(node_id, existing)
        if not self._node_alive(node_id):
            self.bed.recover(node_id)
            if self.on_node_ready is not None:
                self.on_node_ready(node_id)
        replica = self.bed.add_replica(self.group, node_id,
                                       self.app_factory,
                                       **self.replica_kwargs)
        self._wait(lambda: replica.state_transfer.ready,
                   timeout_s=timeout_s,
                   what=f"state transfer to {node_id}")
        others = [n for n in self.serving() if n != node_id]
        self._wait(lambda: all(node_id in self.view_members(n)
                               for n in others + [node_id]),
                   timeout_s=timeout_s,
                   what=f"{node_id} in every group view")
        if require_rounds:
            stats = getattr(replica.time_source, "stats", None)
            if stats is not None and hasattr(stats, "rounds_completed"):
                self._wait(
                    lambda: stats.rounds_completed >= require_rounds,
                    timeout_s=timeout_s,
                    what=f"{node_id} completing {require_rounds} rounds")
        self.log.append({"op": "join", "node": node_id,
                         "at": self.bed.sim.now})
        return replica

    # -- drain ---------------------------------------------------------

    def drain(self, node_id: str, *, timeout_s: float = DEFAULT_TIMEOUT_S,
              quiesce_s: float = 2.0) -> None:
        """Retire ``node_id``'s replica without breaking the group.

        Refuses to drain the last serving replica.  The node keeps its
        place in the Totem ring (and its gateway keeps serving clients);
        only its group membership ends.
        """
        replicas = self.bed.services.get(self.group, {})
        replica = replicas.get(node_id)
        if replica is None:
            raise ReconfigurationError(
                f"{node_id} hosts no replica of {self.group!r}")
        if len(replicas) <= 1:
            raise ReconfigurationError(
                f"refusing to drain {node_id}: it is the last serving "
                f"replica of {self.group!r}")
        # Quiesce best-effort: let locally in-flight operations finish so
        # the departure lands between operations, not inside one.  Under
        # sustained load the replica may never be perfectly idle — that
        # is fine, every parked operation is also ordered at (and
        # answered by) the remaining active replicas.
        self._wait(lambda: replica._inflight == 0 and not replica._resumable,
                   timeout_s=quiesce_s, what="", raise_on_timeout=False)
        replica.endpoint.leave()
        remaining = [n for n in replicas if n != node_id]
        self._wait(lambda: all(node_id not in self.view_members(n)
                               for n in remaining),
                   timeout_s=timeout_s,
                   what=f"views excluding {node_id}")
        self._retire(node_id, replica)
        self.log.append({"op": "drain", "node": node_id,
                         "at": self.bed.sim.now})

    def drain_async(self, node_id: str, *, grace_s: float = 0.5) -> bool:
        """Non-blocking drain for use inside a kernel callback (the
        chaos fault injector cannot spin the kernel it is running on).
        Leaves immediately; endpoint removal follows after ``grace_s``
        (by which time the ordered LEAVE has propagated).  Returns False
        when the drain would be unsafe (last replica / not serving)."""
        replicas = self.bed.services.get(self.group, {})
        replica = replicas.get(node_id)
        if replica is None or len(replicas) <= 1:
            return False
        replica.endpoint.leave()

        def finalize() -> None:
            if self.bed.services.get(self.group, {}).get(node_id) is replica:
                self._retire(node_id, replica)
                self.log.append({"op": "drain", "node": node_id,
                                 "at": self.bed.sim.now})

        self.bed.sim.schedule(grace_s, finalize)
        return True

    def join_async(self, node_id: str) -> bool:
        """Non-blocking join for kernel callbacks: start the admission
        (recover + add_replica → state transfer) without waiting for
        catch-up.  Returns False when the node already serves."""
        existing = self.bed.services.get(self.group, {}).get(node_id)
        if existing is not None:
            if existing.endpoint.joined:
                return False
            # Pending async drain: finalize it now, then re-admit.
            self._retire(node_id, existing)
        if not self._node_alive(node_id):
            self.bed.recover(node_id)
            if self.on_node_ready is not None:
                self.on_node_ready(node_id)
        self.bed.add_replica(self.group, node_id, self.app_factory,
                             **self.replica_kwargs)
        self.log.append({"op": "join", "node": node_id,
                         "at": self.bed.sim.now})
        return True

    # -- restart -------------------------------------------------------

    def restart_node(self, node_id: str, *,
                     timeout_s: float = DEFAULT_TIMEOUT_S,
                     require_rounds: int = 0) -> Replica:
        """One rolling-restart step: drain, fail-stop, recover, rejoin.

        Returns only once the node is fully re-admitted, which is the
        gate the rolling driver relies on — at most one node is ever
        outside the group.
        """
        self.drain(node_id, timeout_s=timeout_s)
        self.bed.crash(node_id)
        self.bed.run(self.poll_s)
        self.bed.recover(node_id)
        if self.on_node_ready is not None:
            self.on_node_ready(node_id)
        return self.join(node_id, timeout_s=timeout_s,
                         require_rounds=require_rounds)

    # -- internals -----------------------------------------------------

    def _retire(self, node_id: str, replica: Replica) -> None:
        # Delivery routes by endpoint registration, not view membership:
        # without removal the retired endpoint would keep receiving (and
        # executing!) ordered requests it no longer answers for.
        replica.suspended = True
        self.bed.runtimes[node_id].remove_endpoint(self.group)
        self.bed.services.get(self.group, {}).pop(node_id, None)

    def _node_alive(self, node_id: str) -> bool:
        node = self.bed.node(node_id)
        return bool(getattr(node, "alive", True))

    def _wait(self, predicate: Callable[[], bool], *, timeout_s: float,
              what: str, raise_on_timeout: bool = True) -> bool:
        elapsed = 0.0
        while not predicate():
            if elapsed >= timeout_s:
                if raise_on_timeout:
                    raise ReconfigurationError(
                        f"timed out after {timeout_s:.1f}s waiting for "
                        f"{what}")
                return False
            self.bed.run(self.poll_s)
            elapsed += self.poll_s
        return True
