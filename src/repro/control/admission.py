"""Shed-before-collapse admission control for the client gateway.

The gateway sits between an unbounded client population and a total
order whose throughput is bounded by CCS round latency.  Without
admission control, offered load beyond round throughput turns into an
ever-growing queue of parked operations: every request is eventually
answered, but so late that the client gave up long ago — goodput
collapses while the queues (and reply latency) grow without bound.

The controller keeps the pipeline loaded and **sheds the rest early**:

* a bounded number of operations are *in flight* (injected into the
  order, awaiting their first reply);
* excess arrivals wait in bounded **per-client FIFOs** drained
  round-robin, so one chatty identity cannot starve the others;
* an arrival that cannot be queued — or whose estimated queueing delay
  already exceeds the deadline budget — is answered immediately with a
  typed ``Overloaded`` result carrying a retry-after hint, *before* it
  costs the group a CCS round.

Shedding is deliberately cheap (one UDP reply, no ordered traffic) so
the service degrades to "some clients are told to back off" instead of
"every client times out".  All decisions are surfaced as ``repro.obs``
instruments (``cts_admission_*``) for SLO-burn dashboards.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from .. import obs

M_ADM_ADMITTED = obs.REGISTRY.counter(
    "cts_admission_admitted_total",
    "operations dispatched into the total order")
M_ADM_QUEUED = obs.REGISTRY.counter(
    "cts_admission_queued_total",
    "operations parked in a bounded client queue before dispatch")
M_ADM_SHED = obs.REGISTRY.counter(
    "cts_admission_shed_total",
    "operations answered Overloaded, by reason "
    "(global_full|client_full|deadline|aged_out)")
G_ADM_QUEUE_DEPTH = obs.REGISTRY.gauge(
    "cts_admission_queue_depth", "operations currently parked")
G_ADM_INFLIGHT = obs.REGISTRY.gauge(
    "cts_admission_inflight", "operations in the order awaiting replies")
H_ADM_QUEUE_AGE = obs.REGISTRY.histogram(
    "cts_admission_queue_age_seconds",
    "time from arrival to dispatch or shed for queued operations",
    unit="s",
    buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5))


@dataclass
class AdmissionConfig:
    """Tuning knobs (documented for operators in docs/operations.md)."""

    #: Operations concurrently inside the total order.  Round
    #: coalescing means these share CCS rounds, so this is the pipeline
    #: depth, not a rate limit.
    max_inflight: int = 64
    #: Parked operations across all clients.
    max_global_queue: int = 256
    #: Parked operations per client identity (fairness bound).
    max_client_queue: int = 32
    #: An operation predicted (or observed) to wait longer than this is
    #: shed — its reply would arrive after any sane client deadline.
    max_queue_delay_s: float = 0.25
    #: Inflight entries older than this are presumed lost and reclaimed
    #: so a dropped reply cannot wedge admission shut.
    inflight_timeout_s: float = 5.0
    #: Bounds for the retry-after hint carried by Overloaded replies.
    retry_after_floor_s: float = 0.05
    retry_after_cap_s: float = 2.0


@dataclass
class AdmissionStats:
    admitted: int = 0
    queued: int = 0
    completed: int = 0
    reclaimed: int = 0
    shed: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "completed": self.completed,
            "reclaimed": self.reclaimed,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
        }


@dataclass
class _Pending:
    key: object
    dispatch: Callable[[], None]
    shed: Callable[[float], None]
    enqueued_at: float


class AdmissionController:
    """Bounded queues + fair dequeue + deadline-aware shedding.

    The host (the gateway) calls :meth:`submit` per *new* operation
    (retries are deduplicated upstream) with two callbacks: ``dispatch``
    injects the operation into the order, ``shed`` answers the client
    ``Overloaded`` with a retry-after hint.  Exactly one of them is
    invoked, possibly later (a parked operation dispatches when capacity
    frees, or sheds when it ages out).  :meth:`complete` must be called
    when the operation's first reply leaves the gateway.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None, *,
                 node_id: str = "?",
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or AdmissionConfig()
        self.node_id = node_id
        self._clock = clock
        self.stats = AdmissionStats()
        #: op key -> dispatch instant (insertion-ordered for timeouts).
        self._inflight: "OrderedDict[object, float]" = OrderedDict()
        self._queues: Dict[str, Deque[_Pending]] = {}
        #: round-robin rotation over clients with parked operations.
        self._rr: Deque[str] = deque()
        self._depth = 0
        #: EWMA of dispatch->complete service time (retry-after basis).
        self._service_ewma_s = 0.05

    # -- host interface ------------------------------------------------

    def submit(self, client: str, key: object,
               dispatch: Callable[[], None],
               shed: Callable[[float], None]) -> bool:
        """Admit, park, or shed one operation.  True unless shed now."""
        now = self._clock()
        self._expire_inflight(now)
        if len(self._inflight) < self.config.max_inflight and self._depth == 0:
            self._dispatch_now(key, dispatch, now)
            return True
        if self._depth >= self.config.max_global_queue:
            self._shed_now(shed, "global_full", now)
            return False
        queue = self._queues.get(client)
        if queue is not None and len(queue) >= self.config.max_client_queue:
            self._shed_now(shed, "client_full", now)
            return False
        if self._estimated_wait_s() > self.config.max_queue_delay_s:
            self._shed_now(shed, "deadline", now)
            return False
        if queue is None:
            queue = self._queues[client] = deque()
        if not queue:
            self._rr.append(client)
        queue.append(_Pending(key, dispatch, shed, now))
        self._depth += 1
        self.stats.queued += 1
        if obs.REGISTRY.enabled:
            M_ADM_QUEUED.inc(node=self.node_id)
            G_ADM_QUEUE_DEPTH.set(self._depth, node=self.node_id)
        return True

    def complete(self, key: object) -> None:
        """First reply for ``key`` left the gateway (idempotent)."""
        dispatched_at = self._inflight.pop(key, None)
        if dispatched_at is None:
            return
        now = self._clock()
        service_s = max(0.0, now - dispatched_at)
        self._service_ewma_s += 0.1 * (service_s - self._service_ewma_s)
        self.stats.completed += 1
        if obs.REGISTRY.enabled:
            G_ADM_INFLIGHT.set(len(self._inflight), node=self.node_id)
        self._pump(now)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        return self._depth

    def retry_after_s(self) -> float:
        """The backoff hint for a reply shed right now."""
        waiting = self._depth + len(self._inflight)
        parallel = max(1, self.config.max_inflight)
        estimate = (waiting / parallel + 1.0) * self._service_ewma_s
        return min(self.config.retry_after_cap_s,
                   max(self.config.retry_after_floor_s, estimate))

    # -- internals -----------------------------------------------------

    def _estimated_wait_s(self) -> float:
        # An arrival parks behind the whole backlog *and* the pipeline
        # already in the order; both drain at ~max_inflight ops per
        # service time.  Undercounting the pipeline admits operations
        # that then age out in the queue — a shed either way, but paid
        # after the wait instead of before it.
        parallel = max(1, self.config.max_inflight)
        return ((self._depth + len(self._inflight)) / parallel
                ) * self._service_ewma_s

    def _dispatch_now(self, key: object, dispatch: Callable[[], None],
                      now: float) -> None:
        self._inflight[key] = now
        self.stats.admitted += 1
        if obs.REGISTRY.enabled:
            M_ADM_ADMITTED.inc(node=self.node_id)
            G_ADM_INFLIGHT.set(len(self._inflight), node=self.node_id)
        dispatch()

    def _shed_now(self, shed: Callable[[float], None], reason: str,
                  now: float) -> None:
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        if obs.REGISTRY.enabled:
            M_ADM_SHED.inc(node=self.node_id, reason=reason)
        shed(self.retry_after_s())

    def _expire_inflight(self, now: float) -> None:
        horizon = now - self.config.inflight_timeout_s
        while self._inflight:
            key = next(iter(self._inflight))
            if self._inflight[key] > horizon:
                break
            del self._inflight[key]
            self.stats.reclaimed += 1
        # Reclaimed capacity should immediately serve parked work.
        if len(self._inflight) < self.config.max_inflight:
            self._pump(now)

    def _pump(self, now: float) -> None:
        while self._depth and len(self._inflight) < self.config.max_inflight:
            entry = self._next_fair()
            age = now - entry.enqueued_at
            if obs.REGISTRY.enabled:
                H_ADM_QUEUE_AGE.observe(age, node=self.node_id)
            if age > self.config.max_queue_delay_s:
                self._shed_now(entry.shed, "aged_out", now)
                continue
            self._dispatch_now(entry.key, entry.dispatch, now)
        if obs.REGISTRY.enabled:
            G_ADM_QUEUE_DEPTH.set(self._depth, node=self.node_id)

    def _next_fair(self) -> _Pending:
        client = self._rr.popleft()
        queue = self._queues[client]
        entry = queue.popleft()
        if queue:
            self._rr.append(client)
        else:
            del self._queues[client]
        self._depth -= 1
        return entry


# -- the typed Overloaded result -------------------------------------

#: Error string carried by a shed reply's :class:`~repro.rpc.messages.Result`.
OVERLOADED = "Overloaded"


def overloaded_value(retry_after_s: float) -> Dict[str, float]:
    return {"retry_after_s": round(retry_after_s, 4)}


def is_overloaded(result) -> bool:
    """True when a Result (or its dict form) is a typed shed reply."""
    error = getattr(result, "error", None)
    if error is None and isinstance(result, dict):
        error = result.get("error")
    return error == OVERLOADED


def retry_after_of(result) -> float:
    """The retry-after hint of a shed reply (0.0 when absent)."""
    value = getattr(result, "value", None)
    if value is None and isinstance(result, dict):
        value = result.get("value")
    if isinstance(value, dict):
        try:
            return float(value.get("retry_after_s", 0.0))
        except (TypeError, ValueError):
            return 0.0
    return 0.0


__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "OVERLOADED",
    "overloaded_value",
    "is_overloaded",
    "retry_after_of",
]
