"""``repro.control`` — the elastic control plane.

Live group reconfiguration (:class:`~repro.control.plane.ControlPlane`:
join/drain/rolling restart without losing the primary component),
shed-before-collapse admission control at the client gateway
(:class:`~repro.control.admission.AdmissionController`), and the
scripted drivers behind ``repro control`` / CI's ``reconfig-smoke``
(:mod:`repro.control.rolling`).

``rolling`` is imported lazily: it pulls in the live testbed and chaos
harness, which the gateway (an importer of :mod:`.admission`) must not
load at import time.
"""

from ..errors import OverloadedError, ReconfigurationError
from .admission import (
    OVERLOADED,
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    is_overloaded,
    overloaded_value,
    retry_after_of,
)
from .plane import ControlPlane

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "ControlPlane",
    "OVERLOADED",
    "OverloadedError",
    "ReconfigurationError",
    "is_overloaded",
    "overloaded_value",
    "retry_after_of",
    "run_rolling_restart",
    "run_reconfig_sequence",
]


def __getattr__(name):
    if name in ("run_rolling_restart", "run_reconfig_sequence"):
        from . import rolling

        return getattr(rolling, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
