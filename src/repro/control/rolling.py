"""Rolling restarts and scripted reconfiguration under sustained load.

Two drivers, both modeled on the chaos harness (in-process
:class:`~repro.net.testbed.LiveTestbed`, threaded gateway clients, the
:class:`~repro.chaos.oracle.InvariantOracle` judging every reply):

* :func:`run_rolling_restart` cycles every node of a serving group in
  sequence — drain, fail-stop, recover, rejoin — gated on the previous
  node being *fully re-admitted* (state transferred, in every view, and
  having completed fresh CCS rounds), so at most one replica is ever
  outside the group.  This is ``repro control rolling-restart`` and the
  CI ``reconfig-smoke`` job.

* :func:`run_reconfig_sequence` is the acceptance script: join a cold
  replica into a 3-node group, drain the original primary, then rolling-
  restart the remaining members — all while clients hammer the gateways
  and the oracle checks monotonicity, agreement, and staleness.

Verdicts are JSON-able and judged the same way as chaos verdicts: a run
is ``ok`` only when every step completed, the oracle saw traffic, and it
found zero violations.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..chaos.oracle import InvariantOracle
from ..chaos.runner import _ChaosClient, self_timeout
from ..net.daemon import ClientGateway, TimeApp
from ..net.testbed import LiveTestbed
from ..replication.envelope import Envelope
from .admission import AdmissionConfig, AdmissionController
from .plane import ControlPlane

GROUP = "timesvc"


def _install_gateway(bed: LiveTestbed, node_id: str, gateways: list,
                     admission_config: Optional[AdmissionConfig]) -> None:
    """Interpose an (admission-controlled) client gateway in front of
    the node's Totem receiver; same shape as the chaos harness but with
    the shed-before-collapse controller installed."""
    node = bed.node(node_id)
    totem_receiver = node._receiver
    admission = None
    if admission_config is not None:
        admission = AdmissionController(admission_config, node_id=node_id)
    gateway = ClientGateway(bed.runtimes[node_id], node.iface,
                            node_id=node_id, admission=admission)
    gateways.append(gateway)

    def dispatch(frame) -> None:
        if isinstance(frame.payload, Envelope):
            gateway.handle(frame)
        else:
            totem_receiver(frame)

    node.set_receiver(dispatch)


class _ReconfigHarness:
    """Shared scaffolding: bed + gateways + oracle + threaded load."""

    def __init__(self, node_ids: List[str], serving: List[str], *,
                 seed: int, clients: int, fast_path: bool,
                 max_staleness_us: int,
                 admission_config: Optional[AdmissionConfig],
                 require_rounds: int, timeout_s: float):
        # Reconfiguration legitimately lets served time lag while a
        # membership change drains its round backlog; the oracle must
        # see the lag *repaid*, so give it a transient bound sized to a
        # restart outage rather than the default.
        self.oracle = InvariantOracle(staleness_budget_us=max_staleness_us,
                                      max_transient_lag_us=5_000_000)
        self.bed = LiveTestbed(node_ids=node_ids, seed=seed)
        self.gateways: list = []
        self.admission_config = admission_config
        self.require_rounds = require_rounds
        self.timeout_s = timeout_s
        self.bed.deploy(GROUP, TimeApp, nodes=serving,
                        style="active", time_source="cts",
                        fast_path=fast_path,
                        max_staleness_us=max_staleness_us)
        self.bed.start()
        for node_id in node_ids:
            _install_gateway(self.bed, node_id, self.gateways,
                             admission_config)
        self.oracle.attach()
        self.plane = ControlPlane(
            self.bed, group=GROUP, app_factory=TimeApp,
            on_node_ready=self._node_ready,
            style="active", time_source="cts", fast_path=fast_path,
            max_staleness_us=max_staleness_us)
        self.stop = threading.Event()
        servers = [self.bed.node(node_id).address for node_id in node_ids]
        self.workers = [_ChaosClient(i, servers, self.oracle, self.stop)
                        for i in range(clients)]
        self.steps: List[Dict[str, object]] = []

    def _node_ready(self, node_id: str) -> None:
        # A recovered node's runtime is fresh: the oracle must know a
        # restart happened (it expects post-recovery rounds) and the
        # gateway must be re-interposed before client frames arrive.
        self.oracle.note_recovery(node_id)
        _install_gateway(self.bed, node_id, self.gateways,
                         self.admission_config)

    def start_load(self, warmup_s: float = 1.0) -> None:
        for worker in self.workers:
            worker.thread.start()
        self.run_under_load(warmup_s)

    def run_under_load(self, duration_s: float) -> None:
        deadline = time.monotonic() + duration_s
        while time.monotonic() < deadline:
            self.bed.run(0.05)

    def step(self, label: str, action: Callable[[], object]) -> bool:
        started = time.monotonic()
        self.oracle.note_reconfig()
        try:
            action()
            ok, error = True, None
        except Exception as exc:  # recorded, not raised: judge the run
            ok, error = False, f"{type(exc).__name__}: {exc}"
        self.steps.append({
            "step": label,
            "ok": ok,
            "error": error,
            "elapsed_s": round(time.monotonic() - started, 3),
        })
        return ok

    def finish(self, drain_s: float = 1.5) -> Dict[str, object]:
        # Keep load running past the last step: the post-reformation
        # rounds that repay the reconfiguration's staleness debt must
        # be *observed* for the oracle to credit them.
        self.run_under_load(drain_s)
        self.stop.set()
        for worker in self.workers:
            worker.thread.join(timeout=self_timeout(worker))
        self.bed.run(0.2)
        self.oracle.finish(self.bed, group=GROUP)
        calls = sum(w.calls for w in self.workers)
        errors = sum(w.errors for w in self.workers)
        steps_ok = all(s["ok"] for s in self.steps)
        verdict: Dict[str, object] = {
            "steps": self.steps,
            "reconfig_log": list(self.plane.log),
            "serving": self.plane.serving(),
            "clients": {
                "count": len(self.workers),
                "calls": calls,
                "errors": errors,
                "retries": sum(w.caller.stats.retries for w in self.workers),
                "error_rate": (errors / calls) if calls else 1.0,
            },
            "gateway": {
                "requests_injected": sum(
                    g.requests_injected for g in self.gateways),
                "requests_deduplicated": sum(
                    g.requests_deduplicated for g in self.gateways),
                "requests_shed": sum(
                    g.requests_shed for g in self.gateways),
            },
            "admission": [
                g.admission.stats.to_dict() for g in self.gateways
                if g.admission is not None
            ],
            "oracle": self.oracle.report(),
        }
        verdict["ok"] = (self.oracle.ok
                         and steps_ok
                         and self.oracle.replies_checked > 0)
        for worker in self.workers:
            worker.close()
        return verdict

    def shutdown(self) -> None:
        self.stop.set()
        self.oracle.detach()
        self.bed.shutdown()


def run_rolling_restart(
    *,
    num_nodes: int = 3,
    seed: int = 0,
    clients: int = 4,
    require_rounds: int = 1,
    timeout_s: float = 20.0,
    settle_s: float = 1.0,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
    admission_config: Optional[AdmissionConfig] = None,
) -> Dict[str, object]:
    """Cycle every node of a live group under sustained client load."""
    node_ids = [f"n{i}" for i in range(num_nodes)]
    harness = _ReconfigHarness(
        node_ids, node_ids, seed=seed, clients=clients,
        fast_path=fast_path, max_staleness_us=max_staleness_us,
        admission_config=admission_config or AdmissionConfig(),
        require_rounds=require_rounds, timeout_s=timeout_s)
    try:
        harness.start_load(settle_s)
        for node_id in node_ids:
            ok = harness.step(
                f"restart {node_id}",
                lambda node_id=node_id: harness.plane.restart_node(
                    node_id, timeout_s=timeout_s,
                    require_rounds=require_rounds))
            if not ok:
                break
            harness.run_under_load(0.3)
        verdict = harness.finish()
        verdict["mode"] = "rolling-restart"
        verdict["nodes"] = node_ids
        verdict["seed"] = seed
        return verdict
    finally:
        harness.shutdown()


def run_reconfig_sequence(
    *,
    seed: int = 0,
    clients: int = 4,
    require_rounds: int = 1,
    timeout_s: float = 20.0,
    settle_s: float = 1.0,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
    admission_config: Optional[AdmissionConfig] = None,
) -> Dict[str, object]:
    """The acceptance script: join a 4th replica into a 3-node group,
    drain the original primary, rolling-restart the remaining members —
    all under sustained load, with zero oracle violations required."""
    node_ids = ["n0", "n1", "n2", "n3"]
    serving = node_ids[:3]
    harness = _ReconfigHarness(
        node_ids, serving, seed=seed, clients=clients,
        fast_path=fast_path, max_staleness_us=max_staleness_us,
        admission_config=admission_config or AdmissionConfig(),
        require_rounds=require_rounds, timeout_s=timeout_s)
    try:
        harness.start_load(settle_s)
        plane = harness.plane
        # The "original primary" is the head of the group view as the
        # serving members computed it, not an assumption about n0.
        primary = (plane.view_members(serving[0]) or serving)[0]
        sequence_ok = harness.step(
            "join n3",
            lambda: plane.join("n3", timeout_s=timeout_s,
                               require_rounds=require_rounds))
        if sequence_ok:
            harness.run_under_load(0.3)
            sequence_ok = harness.step(
                f"drain primary {primary}",
                lambda: plane.drain(primary, timeout_s=timeout_s))
        if sequence_ok:
            harness.run_under_load(0.3)
            for node_id in list(plane.serving()):
                if not harness.step(
                        f"restart {node_id}",
                        lambda node_id=node_id: plane.restart_node(
                            node_id, timeout_s=timeout_s,
                            require_rounds=require_rounds)):
                    break
                harness.run_under_load(0.3)
        verdict = harness.finish()
        verdict["mode"] = "reconfig-sequence"
        verdict["nodes"] = node_ids
        verdict["seed"] = seed
        verdict["original_primary"] = primary
        return verdict
    finally:
        harness.shutdown()
