"""High-level assembly: the paper's testbed in a few lines.

:class:`Testbed` wires the whole stack together — cluster, one Totem
processor and group runtime per node, replicated services and clients —
mirroring the experimental setup of Section 4.2 (four PCs on a quiet
100 Mbit/s Ethernet, one Totem instance per node, a client on the ring
leader invoking a three-way actively replicated server).

Everything above the substrate — deployment, time-source selection,
execution, fault injection — lives in :class:`TestbedBase`, shared with
the live counterpart :class:`repro.net.testbed.LiveTestbed`, which runs
the identical stack over real UDP sockets and wall clocks.  Workload
code written against this API runs unmodified in either mode.

Example::

    bed = Testbed(seed=42)
    bed.deploy("timesvc", ClockApp, nodes=["n1", "n2", "n3"],
               style="active", time_source="cts")
    client = bed.client("n0")
    bed.start()

    def scenario():
        result, latency_us = yield from client.timed_call("timesvc", "get_time")
        return result

    value = bed.run_process(scenario())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from . import obs
from .baselines import (
    LocalClockSource,
    NtpDisciplinedSource,
    PrimaryBackupClockSource,
    install_ntp_daemons,
)
from .core import (
    ConsistentTimeService,
    DriftCompensation,
    MODE_ACTIVE,
    MODE_PRIMARY,
)
from .errors import ConfigurationError
from .replication import (
    ActiveReplica,
    Application,
    GroupRuntime,
    PassiveReplica,
    Replica,
    SemiActiveReplica,
    TimeSource,
)
from .rpc import RpcClient
from .sim import Cluster, ClusterConfig
from .sim.node import Node
from .totem import TotemConfig, TotemProcessor

#: Replication styles by name.
STYLES = {
    "active": ActiveReplica,
    "passive": PassiveReplica,
    "semi-active": SemiActiveReplica,
}

TimeSourceSpec = Union[str, Callable[[Replica], TimeSource]]


class TestbedBase:
    """Deployment and execution API over a set of nodes with Totem.

    Substrate-independent: subclasses provide the kernel and the nodes
    (simulated cluster or live UDP hosts) by calling :meth:`_init_stack`;
    everything else — replica deployment, clients, time-source wiring,
    fault injection — is identical in both modes.
    """

    __test__ = False  # not a pytest test class, despite the name

    def _init_stack(self, sim, nodes: Dict[str, Node],
                    totem_config: Optional[TotemConfig],
                    memberships: Optional[Dict[str, List[str]]] = None) -> None:
        """Install the protocol stack: one Totem processor and one group
        runtime per node.

        By default every node shares one static membership (one ring).
        ``memberships`` maps node ids to per-node membership lists for
        partitioned deployments — the sharded testbed gives each shard
        its own ring on a common network substrate.
        """
        self.sim = sim
        self._nodes = dict(nodes)
        # Metric samples are stamped in this testbed's kernel time.
        obs.REGISTRY.set_clock(lambda: self.sim.now)
        self.totem_config = totem_config or TotemConfig()
        self.processors: Dict[str, TotemProcessor] = {}
        self.runtimes: Dict[str, GroupRuntime] = {}
        static = list(self._nodes)
        self._memberships: Dict[str, List[str]] = {
            node_id: list((memberships or {}).get(node_id, static))
            for node_id in static
        }
        for node_id in static:
            processor = TotemProcessor(
                self._nodes[node_id],
                self.totem_config,
                static_membership=self._memberships[node_id],
            )
            self.processors[node_id] = processor
            self.runtimes[node_id] = GroupRuntime(processor)
        #: group -> {node_id: Replica}
        self.services: Dict[str, Dict[str, Replica]] = {}
        self.clients: Dict[str, RpcClient] = {}
        self._started = False

    # -- node access ---------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        group: str,
        app_factory: Callable[[], Application],
        nodes: List[str],
        *,
        style: str = "active",
        time_source: TimeSourceSpec = "cts",
        drift: Optional[DriftCompensation] = None,
        coalesce: bool = True,
        fast_path: bool = False,
        max_staleness_us: int = 2_000,
        byzantine: bool = False,
        **style_kwargs,
    ) -> Dict[str, Replica]:
        """Deploy one replicated service: one replica per listed node.

        ``time_source`` is ``"cts"`` (consistent time service), one of the
        baseline names (``"local"``, ``"primary-backup"``, ``"ntp"``), or
        a factory ``Replica -> TimeSource``.  ``coalesce``, ``fast_path``
        and ``max_staleness_us`` configure the CTS round amortization and
        the drift-bounded read fast path; ``byzantine`` arms the winner
        sanity filter and self-stabilization path (all ignored for
        baselines).
        """
        if group in self.services:
            raise ConfigurationError(f"group {group!r} already deployed")
        if style not in STYLES:
            raise ConfigurationError(
                f"unknown style {style!r}; choose from {sorted(STYLES)}"
            )
        factory = self._time_source_factory(
            time_source, style, drift,
            coalesce=coalesce, fast_path=fast_path,
            max_staleness_us=max_staleness_us, byzantine=byzantine,
        )
        replica_cls = STYLES[style]
        replicas: Dict[str, Replica] = {}
        for node_id in nodes:
            replicas[node_id] = replica_cls(
                self.runtimes[node_id], group, app_factory(), factory,
                **style_kwargs,
            )
        self.services[group] = replicas
        if self._started:
            for replica in replicas.values():
                replica.start()
        return replicas

    def add_replica(
        self,
        group: str,
        node_id: str,
        app_factory: Callable[[], Application],
        *,
        style: str = "active",
        time_source: TimeSourceSpec = "cts",
        drift: Optional[DriftCompensation] = None,
        coalesce: bool = True,
        fast_path: bool = False,
        max_staleness_us: int = 2_000,
        byzantine: bool = False,
        **style_kwargs,
    ) -> Replica:
        """Add (or re-add, after a crash) one replica to a running group.

        The new replica recovers via state transfer, including the
        special CCS round that integrates its clock (Section 3.2).
        """
        factory = self._time_source_factory(
            time_source, style, drift,
            coalesce=coalesce, fast_path=fast_path,
            max_staleness_us=max_staleness_us, byzantine=byzantine,
        )
        replica = STYLES[style](
            self.runtimes[node_id], group, app_factory(), factory,
            join_existing=True, **style_kwargs,
        )
        self.services.setdefault(group, {})[node_id] = replica
        if self._started:
            replica.start()
        return replica

    def client(self, node_id: str, group: Optional[str] = None) -> RpcClient:
        """Create an (unreplicated) RPC client on ``node_id``."""
        client = RpcClient(self.runtimes[node_id], group)
        self.clients[client.group] = client
        return client

    @staticmethod
    def _time_source_factory(
        spec: TimeSourceSpec,
        style: str,
        drift: Optional[DriftCompensation],
        *,
        coalesce: bool = True,
        fast_path: bool = False,
        max_staleness_us: int = 2_000,
        byzantine: bool = False,
    ) -> Callable[[Replica], TimeSource]:
        if callable(spec):
            return spec
        if spec == "cts":
            mode = MODE_ACTIVE if style == "active" else MODE_PRIMARY
            return lambda replica: ConsistentTimeService(
                replica, mode=mode, drift=drift,
                coalesce=coalesce, fast_path=fast_path,
                max_staleness_us=max_staleness_us, byzantine=byzantine,
            )
        if spec == "local":
            return LocalClockSource
        if spec == "ntp":
            return NtpDisciplinedSource
        if spec == "primary-backup":
            return PrimaryBackupClockSource
        raise ConfigurationError(
            f"unknown time source {spec!r}; choose 'cts', 'local', 'ntp', "
            "'primary-backup' or pass a factory"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self, settle: float = 0.2) -> None:
        """Boot Totem on every node, start all deployed replicas, and run
        until rings and groups settle (``settle`` kernel seconds)."""
        if self._started:
            return
        self._started = True
        for processor in self.processors.values():
            processor.start()
        for replicas in self.services.values():
            for replica in replicas.values():
                replica.start()
        self.run(settle)

    def run(self, duration: float) -> None:
        """Advance the kernel by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def run_process(self, generator, name: str = "scenario", **kwargs):
        """Run a scenario generator to completion and return its value."""
        return self.sim.run_process(generator, name=name, **kwargs)

    def crash(self, node_id: str) -> None:
        """Fail-stop the node (processes, clock, network all stop)."""
        self.node(node_id).crash()
        for replicas in self.services.values():
            replicas.pop(node_id, None)

    def recover(self, node_id: str) -> None:
        """Restart a crashed node with fresh protocol state.

        Fail-stop semantics: all volatile state is gone, so the Totem
        processor and group runtime are rebuilt from scratch; the node
        rejoins the ring via the membership protocol.  Re-add replicas
        with :meth:`add_replica` afterwards — they recover their state
        via state transfer.
        """
        node = self.node(node_id)
        node.recover()
        processor = TotemProcessor(
            node, self.totem_config,
            static_membership=self._memberships[node_id],
        )
        self.processors[node_id] = processor
        self.runtimes[node_id] = GroupRuntime(processor)
        if self._started:
            processor.start()

    def replicas(self, group: str) -> Dict[str, Replica]:
        """The live replicas of a group, keyed by node."""
        return self.services[group]

    def corrupt_state(self, node_id: str,
                      *, seed: Optional[int] = None) -> Dict[str, int]:
        """Scramble ``node_id``'s time-service state in every deployed
        group — the ``corrupt-state`` chaos event.  Returns what was
        scrambled per group (empty for baseline sources); draws from a
        ``random.Random`` seeded with ``(seed, node_id)`` — defaulting
        to the bed's chaos seed — so a seeded schedule corrupts
        identically across runs."""
        import random

        from .chaos.byzantine import corrupt_time_state

        if seed is None:
            seed = getattr(self, "chaos_seed", None) or 0
        rng = random.Random(f"{seed}|corrupt|{node_id}")
        details: Dict[str, Dict[str, int]] = {}
        for group, replicas in self.services.items():
            replica = replicas.get(node_id)
            if replica is None:
                continue
            scrambled = corrupt_time_state(replica.time_source, rng)
            if scrambled:
                details[group] = scrambled
        return details


class Testbed(TestbedBase):
    """A simulated cluster with Totem and group runtimes on every node."""

    def __init__(
        self,
        *,
        num_nodes: int = 4,
        seed: int = 0,
        cluster_config: Optional[ClusterConfig] = None,
        totem_config: Optional[TotemConfig] = None,
    ):
        config = cluster_config or ClusterConfig(num_nodes=num_nodes)
        self.cluster = Cluster(config, seed=seed)
        self._init_stack(self.cluster.sim, self.cluster.nodes, totem_config)

    def install_ntp(self, **daemon_kwargs):
        """Discipline every node's clock with an NTP-style daemon."""
        return install_ntp_daemons(
            self.cluster.nodes.values(),
            lambda node_id: self.cluster.rngs.stream(f"ntp.{node_id}"),
            **daemon_kwargs,
        )
