"""repro — a consistent time service for fault-tolerant distributed systems.

A full reproduction of W. Zhao, L. E. Moser, P. M. Melliar-Smith,
"Design and Implementation of a Consistent Time Service for
Fault-Tolerant Distributed Systems" (DSN 2003), including every
substrate the paper builds on: a deterministic discrete-event simulation
of the testbed, the Totem single-ring group communication protocol, a
replication infrastructure (active / passive / semi-active), an RPC
layer, the consistent time service itself, and the baselines it is
evaluated against.

Quick start::

    from repro import Testbed, Application

    class ClockApp(Application):
        def get_time(self, ctx):
            value = yield ctx.gettimeofday()
            return (value.seconds, value.microseconds)

    bed = Testbed(seed=1)
    bed.deploy("timesvc", ClockApp, ["n1", "n2", "n3"],
               style="active", time_source="cts")
    client = bed.client("n0")
    bed.start()

    def scenario():
        result, latency_us = yield from client.timed_call("timesvc", "get_time")
        return result.value

    print(bed.run_process(scenario()))
"""

from . import obs, trace
from .core import (
    ConsistentTimeService,
    MeanDelayCompensation,
    NoCompensation,
    ReferenceSteering,
)
from .errors import ReproError
from .replication import (
    ActiveReplica,
    Application,
    PassiveReplica,
    SemiActiveReplica,
)
from .rpc import RpcClient, unwrap
from .sim import ClockValue, Cluster, ClusterConfig
from .testbed import Testbed
from .totem import TotemConfig, TotemProcessor

__version__ = "1.0.0"

__all__ = [
    "ActiveReplica",
    "Application",
    "ClockValue",
    "Cluster",
    "ClusterConfig",
    "ConsistentTimeService",
    "MeanDelayCompensation",
    "NoCompensation",
    "PassiveReplica",
    "ReferenceSteering",
    "ReproError",
    "RpcClient",
    "SemiActiveReplica",
    "Testbed",
    "TotemConfig",
    "TotemProcessor",
    "__version__",
    "obs",
    "trace",
    "unwrap",
]
