"""Measurement statistics: histograms, probability densities, summaries.

Pure-Python implementations (no numpy dependency in the library proper)
of the small statistical toolkit the evaluation needs — the probability
density function of Figure 5, percentiles, and linear drift fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Compute the standard summary used in experiment reports."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        p50=percentile(ordered, 50.0, presorted=True),
        p90=percentile(ordered, 90.0, presorted=True),
        p99=percentile(ordered, 99.0, presorted=True),
        maximum=ordered[-1],
    )


def percentile(values: Sequence[float], q: float, *, presorted: bool = False) -> float:
    """The q-th percentile (linear interpolation between ranks)."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = list(values) if presorted else sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp away floating-point ulp drift: the interpolated value must
    # lie between its neighbouring order statistics.
    return min(max(value, ordered[low]), ordered[high])


def histogram(
    values: Sequence[float],
    *,
    bin_width: float,
    lo: float = None,
    hi: float = None,
) -> List[Tuple[float, int]]:
    """Fixed-width histogram: list of (bin_left_edge, count)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if not values:
        return []
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    bins = max(1, int(math.ceil((hi - lo) / bin_width)) + 1)
    counts = [0] * bins
    for value in values:
        index = int((value - lo) / bin_width)
        if 0 <= index < bins:
            counts[index] += 1
    return [(lo + i * bin_width, counts[i]) for i in range(bins)]


def probability_density(
    values: Sequence[float], *, bin_width: float, lo: float = None, hi: float = None
) -> List[Tuple[float, float]]:
    """The empirical PDF used in Figure 5: (bin_left_edge, density) with
    density normalized so the bin areas sum to 1."""
    bins = histogram(values, bin_width=bin_width, lo=lo, hi=hi)
    total = sum(count for _, count in bins)
    if total == 0:
        return []
    return [(edge, count / (total * bin_width)) for edge, count in bins]


def mode_bin(values: Sequence[float], *, bin_width: float) -> float:
    """Left edge of the most populated bin (the PDF peak location)."""
    bins = histogram(values, bin_width=bin_width)
    if not bins:
        raise ValueError("cannot take the mode of an empty sample")
    return max(bins, key=lambda pair: pair[1])[0]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares line ``y = slope * x + intercept``.

    Used to estimate clock drift rates (slope of clock value vs real
    time minus one, in ppm).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two same-length samples of size >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x
