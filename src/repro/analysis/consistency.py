"""Client-history consistency checking.

The guarantees the consistent time service makes are *externally
observable*: any client-side history of completed clock reads must be
explainable by a single monotonically increasing group clock, even when
the reads interleave across clients, replicas, failovers and partitions.
This module checks recorded histories the way an external auditor
(Jepsen-style) would — from invocation/response intervals only.

An *operation* is ``(start, end, value)`` in some common timebase (the
client's view of real time).  The checks:

* :func:`check_monotonic_register` — there exists a linearization of the
  operations, consistent with their real-time intervals, in which values
  never decrease.  For a strictly monotone source (each round hands out
  a fresh value), a violation reduces to: an operation that *ended*
  before another *started* returned a larger value.
* :func:`check_no_duplicates` — a strictly monotone clock never hands
  the same value to two different operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Operation:
    """One completed read: the interval it occupied and its result."""

    start: float
    end: float
    value: int
    client: str = "?"

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"operation ends before it starts: {self}")


@dataclass(frozen=True)
class Violation:
    """A pair of operations that no monotone register can explain."""

    earlier: Operation
    later: Operation
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.reason}: {self.earlier.client} read {self.earlier.value} "
            f"(ended {self.earlier.end:.6f}) but {self.later.client} read "
            f"{self.later.value} (started {self.later.start:.6f})"
        )


def check_monotonic_register(
    operations: Sequence[Operation],
) -> Optional[Violation]:
    """Return the first real-time monotonicity violation, or None.

    If operation A completed strictly before operation B began, then B's
    value must be at least A's (strictly greater for a strictly monotone
    clock; we check ``>=`` for the general register and leave strictness
    to :func:`check_no_duplicates`).
    """
    by_end = sorted(operations, key=lambda op: op.end)
    # Sweep: track the maximum value among operations that have ended
    # before each operation's start.
    by_start = sorted(operations, key=lambda op: op.start)
    max_ended: Optional[Operation] = None
    end_index = 0
    for op in by_start:
        while end_index < len(by_end) and by_end[end_index].end < op.start:
            candidate = by_end[end_index]
            if max_ended is None or candidate.value > max_ended.value:
                max_ended = candidate
            end_index += 1
        if max_ended is not None and op.value < max_ended.value:
            return Violation(max_ended, op, "clock rolled back")
    return None


def check_no_duplicates(
    operations: Sequence[Operation],
) -> Optional[Tuple[Operation, Operation]]:
    """Return a pair of distinct operations that got the same value, or
    None.  A strictly monotone clock (one fresh round per read) never
    repeats a value."""
    seen = {}
    for op in operations:
        if op.value in seen:
            return (seen[op.value], op)
        seen[op.value] = op
    return None


def audit_history(operations: Sequence[Operation]) -> List[str]:
    """Run every check; return human-readable findings (empty == clean)."""
    findings: List[str] = []
    violation = check_monotonic_register(operations)
    if violation is not None:
        findings.append(str(violation))
    duplicate = check_no_duplicates(operations)
    if duplicate is not None:
        first, second = duplicate
        findings.append(
            f"duplicate value {first.value} handed to {first.client} "
            f"and {second.client}"
        )
    return findings
