"""Plain-text tables and sparkline plots for benchmark reports.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


#: Eight-level vertical bars for terminal sparklines.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """Compress a series into a one-line terminal plot."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        # Downsample by averaging fixed-size chunks.
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):int((i + 1) * chunk) or None])
            / max(1, len(values[int(i * chunk):int((i + 1) * chunk) or None]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[min(7, int((v - lo) / span * 8))] for v in values
    )


def ascii_series(
    values: Sequence[float], *, label: str = "", width: int = 60
) -> str:
    """A labelled sparkline with min/max annotations."""
    if not values:
        return f"{label}: (empty)"
    return (
        f"{label:<28s} {sparkline(values, width=width)}  "
        f"[{min(values):.6g} .. {max(values):.6g}]"
    )


def ascii_pdf_plot(
    series: dict,
    *,
    bin_labels: Sequence[float],
    height: int = 12,
    label_format: str = "{:.0f}",
) -> str:
    """Render overlaid probability density curves as ASCII art.

    ``series`` maps a single-character marker to a density list (one
    density per entry of ``bin_labels``).  Used to render the Figure 5
    comparison in benchmark reports.
    """
    if not series or not bin_labels:
        return "(no data)"
    peak = max(max(values) for values in series.values()) or 1.0
    columns = len(bin_labels)
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        row = []
        for col in range(columns):
            cell = " "
            for marker, values in series.items():
                if col < len(values) and values[col] >= threshold:
                    cell = marker
            row.append(cell)
        prefix = f"{peak * level / height:8.5f} |" if level in (height, 1) else "         |"
        rows.append(prefix + "".join(row))
    axis = "         +" + "-" * columns
    first = label_format.format(bin_labels[0])
    last = label_format.format(bin_labels[-1])
    gap = max(1, columns - len(first) - len(last))
    labels = "          " + first + " " * gap + last
    legend = "  ".join(f"{marker}={marker}" for marker in series)
    return "\n".join(rows + [axis, labels])
