"""Measurement analysis utilities (S15 in DESIGN.md)."""

from .consistency import (
    Operation,
    Violation,
    audit_history,
    check_monotonic_register,
    check_no_duplicates,
)
from .stats import (
    Summary,
    histogram,
    linear_fit,
    mode_bin,
    percentile,
    probability_density,
    summarize,
)
from .tables import ascii_pdf_plot, ascii_series, format_table, sparkline

__all__ = [
    "Operation",
    "Summary",
    "Violation",
    "audit_history",
    "check_monotonic_register",
    "check_no_duplicates",
    "ascii_pdf_plot",
    "ascii_series",
    "format_table",
    "histogram",
    "linear_fit",
    "mode_bin",
    "percentile",
    "probability_density",
    "sparkline",
    "summarize",
]
