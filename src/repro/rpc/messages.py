"""Remote-method-invocation payloads (the e*ORB/CORBA stand-in).

An :class:`Invocation` names an application method and its arguments; a
:class:`Result` carries the return value or the raised error back to the
client.  Both travel inside :class:`~repro.replication.envelope.Envelope`
bodies over the totally-ordered group layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class Invocation:
    """One remote method invocation."""

    method: str
    args: Tuple[Any, ...] = ()

    def wire_size(self) -> int:
        return 24 + 16 * len(self.args)

    def __str__(self) -> str:
        return f"{self.method}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Result:
    """The outcome of one invocation."""

    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def wire_size(self) -> int:
        return 32
