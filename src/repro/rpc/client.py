"""RPC client: remote method invocations on a replicated server group.

The client is typically unreplicated (a singleton group, as in the
paper's experiments where the client runs on the ring leader n0).  It
multicasts ``REQUEST`` envelopes to the server group over the total
order, collects the first matching ``REPLY`` and discards duplicates —
with active replication every replica answers; the first reply wins.

Because the client is not replicated, it reads its node's physical clock
directly to timestamp requests, which is how the paper measures
end-to-end latency (Section 4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .. import obs
from ..errors import RpcTimeout
from ..replication.envelope import Envelope, MsgType, make_envelope
from ..replication.group import GroupRuntime
from ..sim.kernel import Event
from .messages import Invocation, Result

M_RPC_RETRIES = obs.REGISTRY.counter(
    "rpc_retries_total", "in-process client re-invocations after timeout")


@dataclass
class ClientStats:
    """Counters for tests and the evaluation harness."""

    calls: int = 0
    replies_first: int = 0
    replies_duplicate: int = 0
    timeouts: int = 0
    #: Re-invocations issued by :meth:`RpcClient.retrying_call`.
    retries: int = 0
    #: Per-call end-to-end latency in microseconds, by call order.
    latencies_us: list = field(default_factory=list)


class RpcClient:
    """One client endpoint on one node."""

    def __init__(self, runtime: GroupRuntime, group: Optional[str] = None):
        self.runtime = runtime
        self.node = runtime.processor.node
        self.sim = runtime.sim
        self.group = group or f"client.{runtime.node_id}"
        self.endpoint = runtime.endpoint(self.group)
        self.endpoint.on_message = self._on_message
        self.endpoint.join()
        self.stats = ClientStats()
        self._next_conn = 1
        self._conns: Dict[str, int] = {}
        self._next_seq: Dict[int, int] = {}
        self._pending: Dict[Tuple[int, int], Event] = {}
        self._answered: set = set()
        # Deterministic backoff jitter (the kernel itself is seeded, but
        # the client must not perturb other streams).
        self._rng = random.Random(f"rpc|{self.group}")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def call(
        self,
        server_group: str,
        method: str,
        *args,
        timeout: float = 1.0,
    ) -> Event:
        """Invoke ``method(*args)`` on ``server_group``.

        Returns a yieldable event that succeeds with the
        :class:`~repro.rpc.messages.Result` of the first reply, or fails
        with :class:`~repro.errors.RpcTimeout`.
        """
        conn_id = self._conn_for(server_group)
        seq = self._next_seq[conn_id]
        self._next_seq[conn_id] += 1
        event = Event(self.sim)
        key = (conn_id, seq)
        self._pending[key] = event
        self.stats.calls += 1
        self.endpoint.mcast(
            make_envelope(
                MsgType.REQUEST,
                self.group,
                server_group,
                conn_id,
                seq,
                self.node.node_id,
                body=Invocation(method, tuple(args)),
            )
        )
        if timeout is not None:
            self.sim.schedule(timeout, self._on_timeout, key, server_group, method)
        return event

    def timed_call(self, server_group: str, method: str, *args, timeout: float = 1.0):
        """Generator: invoke and measure end-to-end latency at the client
        with its local ``gettimeofday()`` (the client is unreplicated, so
        reading the physical clock directly is legitimate).

        Returns ``(result, latency_us)``.
        """
        start_us = self.node.read_clock_us()
        result = yield self.call(server_group, method, *args, timeout=timeout)
        latency_us = self.node.read_clock_us() - start_us
        self.stats.latencies_us.append(latency_us)
        return result, latency_us

    def retrying_call(
        self,
        server_group: str,
        method: str,
        *args,
        timeout: float = 0.25,
        attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
    ):
        """Generator: invoke with timeout-driven re-invocation.

        Each attempt is a fresh :meth:`call` with its own per-attempt
        ``timeout``; between attempts the client sleeps an exponentially
        growing, jittered backoff.  Retries mask a replica crash or a
        lossy network from the workload — the chaos loadgen runs on
        this path.  Raises the last :class:`~repro.errors.RpcTimeout`
        when ``attempts`` are exhausted.
        """
        last_error = None
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
                if obs.REGISTRY.enabled:
                    M_RPC_RETRIES.inc(node=self.node.node_id)
                pause = self._rng.uniform(0.5, 1.0) * min(
                    backoff_base * (2 ** (attempt - 1)), backoff_cap)
                yield self.sim.timeout(pause)
            try:
                result = yield self.call(
                    server_group, method, *args, timeout=timeout)
                return result
            except RpcTimeout as exc:
                last_error = exc
        raise last_error

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _conn_for(self, server_group: str) -> int:
        if server_group not in self._conns:
            conn_id = self._next_conn
            self._next_conn += 1
            self._conns[server_group] = conn_id
            self._next_seq[conn_id] = 1
        return self._conns[server_group]

    def _on_message(self, envelope: Envelope) -> None:
        if envelope.header.msg_type is not MsgType.REPLY:
            return
        key = (envelope.header.conn_id, envelope.header.msg_seq_num)
        event = self._pending.pop(key, None)
        if event is not None:
            self._answered.add(key)
            self.stats.replies_first += 1
            if not event.triggered:
                event.succeed(envelope.body)
        elif key in self._answered:
            # Later replicas' replies for an answered invocation.
            self.stats.replies_duplicate += 1

    def _on_timeout(self, key, server_group: str, method: str) -> None:
        event = self._pending.pop(key, None)
        if event is not None and not event.triggered:
            self.stats.timeouts += 1
            event.fail(
                RpcTimeout(f"no reply from {server_group}.{method} (call {key})")
            )


def unwrap(result: Result):
    """Return ``result.value`` or raise the carried application error."""
    if not result.ok:
        raise RuntimeError(result.error)
    return result.value
