"""Remote method invocation over the group layer (S9 in DESIGN.md)."""

from .client import ClientStats, RpcClient, unwrap
from .messages import Invocation, Result

__all__ = ["ClientStats", "Invocation", "Result", "RpcClient", "unwrap"]
