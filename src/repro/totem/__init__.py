"""Totem single-ring group communication (S5-S6 in DESIGN.md).

A from-scratch reimplementation of the substrate the paper builds on:
reliable totally-ordered multicast with token-passing ordering,
retransmission, membership (gather/commit/recover) and the
primary-component partition model.
"""

from .api import TotemBus
from .config import TotemConfig
from .messages import (
    CommitMemberInfo,
    CommitToken,
    ConfigurationChange,
    JoinMessage,
    LostMessage,
    RegularMessage,
    RegularToken,
    RingId,
)
from .ring import ProcessorState, ProcessorStats, RingConfig, TotemProcessor

__all__ = [
    "CommitMemberInfo",
    "TotemBus",
    "CommitToken",
    "ConfigurationChange",
    "JoinMessage",
    "LostMessage",
    "ProcessorState",
    "ProcessorStats",
    "RegularMessage",
    "RegularToken",
    "RingConfig",
    "RingId",
    "TotemConfig",
    "TotemProcessor",
]
