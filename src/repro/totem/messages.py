"""Wire-level messages of the Totem single-ring protocol.

Faithful (simplified) counterparts of the message types in Amir, Moser,
Melliar-Smith, Agarwal, Ciarfella, *"The Totem Single-Ring Ordering and
Membership Protocol"*, ACM TOCS 1995 — the group communication substrate
the paper's consistent time service is built on:

* :class:`RegularMessage` — an application multicast, sequenced on a ring.
* :class:`RegularToken`   — the circulating token that assigns sequence
  numbers, carries the all-received-up-to (aru) watermark and the
  retransmission-request (rtr) list.
* :class:`JoinMessage`    — membership: a processor's current view of the
  live and failed processor sets during the gather phase.
* :class:`CommitToken`    — membership: circulated around the proposed new
  ring to agree on it and to drive old-ring message recovery.
* :class:`ConfigurationChange` — not a wire message: the membership event
  delivered to the application, in total order with regular messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class RingId:
    """Identifies one ring: a monotonically increasing sequence number
    plus the representative (lowest-id member) that formed it."""

    seq: int
    representative: str

    def __str__(self) -> str:
        return f"ring({self.seq}@{self.representative})"


class LostMessage:
    """Tombstone payload for an irrecoverable old-ring message.

    During recovery, a sequence number that *no* surviving member holds
    (its sender crashed before anyone received it) is filled with a
    tombstone so that contiguous delivery can proceed identically at
    every member.  Tombstones are never delivered to the application.
    """

    def __repr__(self) -> str:
        return "<lost message>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LostMessage)

    def __hash__(self) -> int:
        return hash(LostMessage)

    def wire_size(self) -> int:
        return 0


@dataclass(frozen=True)
class RegularMessage:
    """A sequenced application multicast on a specific ring."""

    ring_id: RingId
    seq: int
    sender: str
    payload: Any
    #: True when this transmission is a retransmission (rtr-driven or
    #: recovery); receivers treat both identically, the flag is for
    #: statistics.
    retransmission: bool = False

    def wire_size(self) -> int:
        """Approximate frame size in bytes for the latency model."""
        payload_size = getattr(self.payload, "wire_size", lambda: 64)()
        return 48 + payload_size


@dataclass(frozen=True)
class RegularToken:
    """The rotating token of the single ring.

    * ``token_seq`` increments on every transmission; receivers discard
      tokens with a ``token_seq`` they have already seen (duplicate
      tokens arise from token retransmission).
    * ``seq`` is the highest message sequence number assigned so far.
    * ``aru`` ("all received up to") is the lowest contiguous-receive
      watermark among processors on the current rotation; ``aru_id``
      names the processor that lowered it.
    * ``rtr`` lists sequence numbers whose messages some processor is
      missing and has asked to be retransmitted.
    """

    ring_id: RingId
    token_seq: int
    seq: int
    aru: int
    aru_id: Optional[str]
    rtr: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        return 64 + 4 * len(self.rtr)


@dataclass(frozen=True)
class JoinMessage:
    """Gather-phase membership advertisement."""

    sender: str
    proc_set: FrozenSet[str]
    fail_set: FrozenSet[str]
    #: Highest ring sequence number the sender has ever been part of or
    #: heard of; the new ring id must exceed all of these.
    ring_seq: int

    def wire_size(self) -> int:
        return 32 + 8 * (len(self.proc_set) + len(self.fail_set))


@dataclass
class CommitMemberInfo:
    """Per-member recovery information accumulated on the commit token."""

    old_ring_id: Optional[RingId] = None
    #: Highest message sequence number the member holds from its old ring.
    high_seq: int = 0
    #: The member's all-received-up-to watermark on the *new* ring's
    #: recovery exchange (old-ring messages being re-sequenced).
    recovery_aru: int = 0
    #: Set once the member has all old-ring messages up to the recovery
    #: ceiling and has delivered them.
    recovered: bool = False


@dataclass
class CommitToken:
    """Membership commit token, circulated around the proposed new ring.

    Rotation 1 collects each member's old-ring state; subsequent
    rotations drive retransmission of old-ring messages until every
    member reports ``recovered``; the representative then installs the
    new ring and injects a fresh regular token.
    """

    ring_id: RingId
    members: Tuple[str, ...]
    token_seq: int = 0
    rotation: int = 0
    info: Dict[str, CommitMemberInfo] = field(default_factory=dict)
    #: Outstanding retransmission requests: (old_ring_id, seq) pairs.
    rtr: List[Tuple[RingId, int]] = field(default_factory=list)

    def next_member(self, after: str) -> str:
        index = self.members.index(after)
        return self.members[(index + 1) % len(self.members)]

    def copy(self) -> "CommitToken":
        return replace(
            self,
            info={m: replace(i) for m, i in self.info.items()},
            rtr=list(self.rtr),
        )

    def wire_size(self) -> int:
        return 64 + 24 * len(self.members) + 12 * len(self.rtr)


@dataclass(frozen=True)
class RingBeacon:
    """Periodic multicast from a ring's representative.

    Totem proper detects partition remerge when foreign multicast traffic
    arrives; an idle ring sends nothing, so two healed-but-idle components
    would never find each other.  The beacon is a low-rate liveness
    advertisement that makes remerge detection independent of application
    traffic (a small, documented deviation from the original protocol).
    """

    ring_id: RingId
    sender: str

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True)
class ConfigurationChange:
    """Membership event delivered to the application.

    Delivered in total order with regular messages; ``is_primary`` tells
    the application whether this component may make progress under the
    primary-component partition model (paper Section 2).
    """

    ring_id: RingId
    members: Tuple[str, ...]
    joined: Tuple[str, ...]
    departed: Tuple[str, ...]
    is_primary: bool

    def __str__(self) -> str:
        return (
            f"config-change[{self.ring_id} members={','.join(self.members)} "
            f"+{','.join(self.joined) or '-'} -{','.join(self.departed) or '-'} "
            f"{'primary' if self.is_primary else 'non-primary'}]"
        )
