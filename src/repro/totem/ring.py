"""The Totem single-ring protocol processor: total ordering on a ring.

One :class:`TotemProcessor` runs per node (the paper runs "one and only
one instance of Totem on each node").  The processor implements:

* **Total ordering** — a token rotates around the logical ring; only the
  token holder may broadcast, assigning consecutive sequence numbers, so
  every processor delivers the same messages in the same order (*agreed
  delivery*).
* **Reliability** — receivers request missing sequence numbers through
  the token's retransmission-request (rtr) list; the token's ``aru``
  watermark tracks what everyone has received.
* **Token retransmission** — the token is retransmitted if no progress
  evidence follows its transmission, masking token loss.
* **Membership hand-off** — failures, joins and partitions are detected
  here (token-loss timeout, foreign messages) and handled by the
  :class:`~repro.totem.membership.MembershipEngine`, which reforms the
  ring and recovers old-ring messages (extended virtual synchrony).

The consistent time service relies on exactly the guarantee this module
provides (paper Section 2): "the reliable ordered delivery protocol of
the multicast group communication system ensures that the replicas
receive the same messages in the same order."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from .. import obs, trace
from ..errors import TotemError
from ..sim.node import Node
from .config import TotemConfig
from .messages import (
    CommitToken,
    ConfigurationChange,
    JoinMessage,
    LostMessage,
    RegularMessage,
    RegularToken,
    RingBeacon,
    RingId,
)


# -- observability instruments (zero-cost while the registry is off) ----
M_MULTICAST = obs.REGISTRY.counter(
    "totem_messages_multicast_total", "regular messages broadcast on the ring")
M_RETRANSMIT = obs.REGISTRY.counter(
    "totem_retransmissions_total", "regular messages retransmitted (rtr served)")
M_TOKENS = obs.REGISTRY.counter(
    "totem_tokens_forwarded_total", "token visits forwarded to the successor")
M_TOKEN_RETRANSMIT = obs.REGISTRY.counter(
    "totem_token_retransmissions_total",
    "token retransmissions after missing progress evidence")
M_DELIVERED = obs.REGISTRY.counter(
    "totem_messages_delivered_total", "messages delivered in agreed order")
M_CANCELLED = obs.REGISTRY.counter(
    "totem_sends_cancelled_total",
    "queued payloads withdrawn before transmission")
M_FLOW_DEFERRALS = obs.REGISTRY.counter(
    "totem_flow_control_deferrals_total",
    "token visits that left payloads queued (window exhausted)")
M_TOKEN_INTERVAL = obs.REGISTRY.histogram(
    "totem_token_rotation_us", "interval between token visits at one node",
    unit="us",
    buckets=(50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600))


class ProcessorState(enum.Enum):
    """Totem processor states (Amir et al. 1995, Fig. 2)."""

    GATHER = "gather"
    COMMIT = "commit"
    RECOVER = "recover"
    OPERATIONAL = "operational"


@dataclass
class RingConfig:
    """The installed ring: identity plus members in token-passing order."""

    ring_id: RingId
    members: Tuple[str, ...]

    def successor(self, member: str) -> str:
        index = self.members.index(member)
        return self.members[(index + 1) % len(self.members)]


@dataclass
class ProcessorStats:
    """Wire/delivery statistics, used by the evaluation harness."""

    messages_multicast: int = 0
    retransmissions: int = 0
    tokens_forwarded: int = 0
    token_retransmissions: int = 0
    messages_delivered: int = 0
    duplicate_tokens: int = 0
    membership_changes: int = 0
    sends_cancelled: int = 0


class TotemProcessor:
    """One node's Totem protocol entity.

    Applications interact through :meth:`mcast`, :meth:`cancel_pending`
    and the ``on_deliver`` / ``on_config_change`` callbacks; everything
    else is protocol machinery.
    """

    def __init__(
        self,
        node: Node,
        config: Optional[TotemConfig] = None,
        *,
        static_membership: Optional[List[str]] = None,
    ):
        from .membership import MembershipEngine  # local import: cyclic module pair

        self.node = node
        self.sim = node.sim
        self.me = node.node_id
        self.config = config or TotemConfig()
        self.config.validate()
        #: The configured processor universe; majority of this set makes a
        #: component primary under the primary-component partition model.
        self.static_membership = tuple(static_membership or [self.me])

        self.state = ProcessorState.GATHER
        self.ring: Optional[RingConfig] = None
        self.stats = ProcessorStats()

        # -- regular-ring state (reset on every ring install) -----------
        self.received: Dict[int, RegularMessage] = {}
        self.my_aru = 0
        self.high_seq = 0
        self.delivered_seq = 0
        self.safe_seq = 0
        self.last_token_seq = 0
        self._prev_visit_aru = 0
        self.send_queue: Deque[Any] = deque()
        #: Timestamps of token arrivals (for calibration measurements);
        #: populated only when the config asks for it.
        self.token_arrival_times: List[float] = []
        #: Previous token arrival, for the rotation-interval histogram.
        self._last_token_at: Optional[float] = None

        # -- application callbacks ---------------------------------------
        self.on_deliver: Optional[Callable[[RegularMessage], None]] = None
        #: Safe delivery (Totem's stronger guarantee): fired for a message
        #: once every ring member is known to have received it — i.e. its
        #: sequence number has fallen below the aru watermark on two
        #: consecutive token visits.  Safe delivery trails agreed delivery
        #: by one-to-two token rotations.
        self.on_safe_deliver: Optional[Callable[[RegularMessage], None]] = None
        self.on_config_change: Optional[Callable[[ConfigurationChange], None]] = None
        #: Raw-reception hook: fires when a message first arrives, before
        #: total-order delivery.  Used by the time service's "effective
        #: duplicate detection" [Zhao et al. 2002]: a replica that *sees*
        #: another proposal for its round on the wire can withdraw its
        #: own still-queued CCS message immediately (a queued message
        #: would be sequenced after one already observed, so it would
        #: lose the round with certainty).
        self.on_raw_message: Optional[Callable[[Any], None]] = None

        # -- timers (generation counters make stale callbacks no-ops) ----
        self._token_loss_gen = 0
        self._retransmit_gen = 0
        self._last_sent_token: Optional[RegularToken] = None
        self._retransmit_count = 0

        self.membership = MembershipEngine(self)
        self.started = False
        node.set_receiver(self._on_frame)

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Boot the processor: begin the initial gather phase."""
        self.started = True
        self.membership.start_gather(reason="boot")

    def mcast(self, payload: Any) -> None:
        """Queue ``payload`` for totally-ordered multicast.

        It is transmitted at this processor's next token visit (subject
        to flow control) and delivered at every processor in the agreed
        total order.
        """
        self.send_queue.append(payload)

    def cancel_pending(self, predicate: Callable[[Any], bool]) -> int:
        """Withdraw queued-but-untransmitted payloads matching
        ``predicate``.

        This implements the "effective duplicate detection mechanism"
        (paper Section 4.3): a replica that sees another replica's CCS
        message for the current round ordered first cancels its own
        still-queued CCS message instead of wasting a broadcast.

        Returns the number of payloads withdrawn.
        """
        kept = deque(p for p in self.send_queue if not predicate(p))
        cancelled = len(self.send_queue) - len(kept)
        self.send_queue = kept
        self.stats.sends_cancelled += cancelled
        if cancelled and obs.REGISTRY.enabled:
            M_CANCELLED.inc(cancelled, node=self.me)
        return cancelled

    @property
    def is_operational(self) -> bool:
        return self.state is ProcessorState.OPERATIONAL

    @property
    def members(self) -> Tuple[str, ...]:
        """Members of the installed ring (empty before the first ring)."""
        return self.ring.members if self.ring else ()

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    def _on_frame(self, frame) -> None:
        if not self.started:
            return  # the Totem daemon has not been launched on this node
        payload = frame.payload
        if isinstance(payload, RegularToken):
            self._handle_regular_token(payload)
        elif isinstance(payload, RegularMessage):
            self._handle_regular_message(payload)
        elif isinstance(payload, JoinMessage):
            self.membership.handle_join(payload)
        elif isinstance(payload, CommitToken):
            self.membership.handle_commit_token(payload)
        elif isinstance(payload, RingBeacon):
            self._handle_beacon(payload)
        else:
            raise TotemError(f"unknown frame payload {payload!r}")

    def _handle_beacon(self, beacon: RingBeacon) -> None:
        """A foreign ring's beacon means a healed partition: remerge."""
        if (
            self.state is ProcessorState.OPERATIONAL
            and self.ring is not None
            and beacon.ring_id != self.ring.ring_id
        ):
            self.membership.start_gather(reason=f"foreign beacon {beacon.ring_id}")

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def multicast_raw(self, message) -> None:
        self.node.iface.multicast(message, size_bytes=message.wire_size())

    def unicast_raw(self, dst: str, message) -> None:
        self.node.iface.unicast(dst, message, size_bytes=message.wire_size())

    # ------------------------------------------------------------------
    # Regular message path
    # ------------------------------------------------------------------

    def _handle_regular_message(self, msg: RegularMessage) -> None:
        if self.state in (ProcessorState.RECOVER, ProcessorState.COMMIT):
            self.membership.handle_recovery_message(msg)
            return
        if self.ring is None or msg.ring_id != self.ring.ring_id:
            # A message from a ring we are not on: evidence of another
            # component (partition remerge) or of a ring we missed.
            if self.state is ProcessorState.OPERATIONAL and (
                self.ring is None or msg.ring_id.seq >= self.ring.ring_id.seq
            ):
                self.membership.start_gather(reason=f"foreign message {msg.ring_id}")
            return
        self._token_evidence()
        self._store_message(msg)
        self._try_deliver()

    def _store_message(self, msg: RegularMessage) -> None:
        if msg.seq in self.received or msg.seq <= self.delivered_seq:
            return  # duplicate (retransmission we already have)
        self.received[msg.seq] = msg
        self.high_seq = max(self.high_seq, msg.seq)
        if self.on_raw_message is not None and msg.sender != self.me:
            self.on_raw_message(msg.payload)
        while self.my_aru + 1 in self.received or self.my_aru + 1 <= self.delivered_seq:
            self.my_aru += 1

    def _try_deliver(self) -> None:
        """Agreed delivery: hand contiguous messages to the application."""
        while self.delivered_seq + 1 in self.received:
            self.delivered_seq += 1
            msg = self.received[self.delivered_seq]
            if isinstance(msg.payload, LostMessage):
                continue  # recovery tombstone: skipped everywhere alike
            self.stats.messages_delivered += 1
            if obs.REGISTRY.enabled:
                M_DELIVERED.inc(node=self.me)
            if self.on_deliver is not None:
                self.on_deliver(msg)

    # ------------------------------------------------------------------
    # Token path
    # ------------------------------------------------------------------

    def _handle_regular_token(self, token: RegularToken) -> None:
        if self.state is not ProcessorState.OPERATIONAL or self.ring is None:
            return
        if token.ring_id != self.ring.ring_id:
            if token.ring_id.seq > self.ring.ring_id.seq:
                self.membership.start_gather(reason=f"foreign token {token.ring_id}")
            return
        if token.token_seq <= self.last_token_seq:
            self.stats.duplicate_tokens += 1
            return
        self.last_token_seq = token.token_seq
        if self.config.record_token_times:
            self.token_arrival_times.append(self.sim.now)
        if obs.REGISTRY.enabled and self._last_token_at is not None:
            M_TOKEN_INTERVAL.observe(
                (self.sim.now - self._last_token_at) * 1e6, node=self.me)
        self._last_token_at = self.sim.now
        self._token_evidence()
        # Simulated CPU cost of the token visit, then forward.
        self.sim.schedule(self.config.token_processing_s, self._process_token, token)

    def _process_token(self, token: RegularToken) -> None:
        if (
            self.state is not ProcessorState.OPERATIONAL
            or self.ring is None
            or token.ring_id != self.ring.ring_id
            or not self.node.alive
        ):
            return

        rtr = set(token.rtr)

        # 1. Serve retransmission requests we can satisfy.
        for seq in sorted(rtr):
            msg = self.received.get(seq)
            if msg is not None:
                self.multicast_raw(replace(msg, retransmission=True))
                self.stats.retransmissions += 1
                if obs.REGISTRY.enabled:
                    M_RETRANSMIT.inc(node=self.me)
                if trace.TRACER.enabled:
                    trace.emit(
                        "totem.retransmit", self.me, seq=seq,
                        ring=str(self.ring.ring_id),
                        token_seq=token.token_seq,
                    )
                rtr.discard(seq)

        # 2. Broadcast new messages within the flow-control window.
        new_seq = token.seq
        sent = 0
        while self.send_queue and sent < self.config.window_size:
            payload = self.send_queue.popleft()
            new_seq += 1
            msg = RegularMessage(self.ring.ring_id, new_seq, self.me, payload)
            # Record our own message immediately: Totem receives its own
            # multicasts, but acting on the loopback copy would race the
            # token we are about to forward.
            self._store_message(msg)
            self.multicast_raw(msg)
            self.stats.messages_multicast += 1
            sent += 1
        if obs.REGISTRY.enabled and sent:
            M_MULTICAST.inc(sent, node=self.me)
        if self.send_queue and sent >= self.config.window_size:
            # Flow control: the window closed with payloads still queued.
            if obs.REGISTRY.enabled:
                M_FLOW_DEFERRALS.inc(node=self.me)
            if trace.TRACER.enabled:
                trace.emit(
                    "totem.flow_control", self.me, seq=new_seq,
                    deferred=len(self.send_queue),
                    window=self.config.window_size,
                )
        self._try_deliver()

        # 3. Request retransmission of anything we are missing.
        for missing in range(self.my_aru + 1, new_seq + 1):
            if missing not in self.received:
                rtr.add(missing)

        # 4. Update the aru watermark (all-received-up-to).
        aru, aru_id = token.aru, token.aru_id
        if self.my_aru < aru:
            aru, aru_id = self.my_aru, self.me
        elif aru_id == self.me:
            aru = self.my_aru
            if aru >= new_seq:
                aru_id = None
        elif aru_id is None:
            aru = self.my_aru

        # 5. Safe delivery and garbage collection: min(aru over the last
        #    two visits) bounds what every member has received.  Messages
        #    at or below it (and already agreed-delivered here) are safe;
        #    fire the safe callback in order, then reclaim them.
        stable = min(self._prev_visit_aru, aru, self.delivered_seq)
        self._prev_visit_aru = aru
        while self.safe_seq < stable:
            self.safe_seq += 1
            msg = self.received.get(self.safe_seq)
            if (
                msg is not None
                and self.on_safe_deliver is not None
                and not isinstance(msg.payload, LostMessage)
            ):
                self.on_safe_deliver(msg)
        for seq in [s for s in self.received if s <= stable]:
            del self.received[seq]

        # 6. Forward the token.
        next_token = RegularToken(
            ring_id=self.ring.ring_id,
            token_seq=token.token_seq + 1,
            seq=new_seq,
            aru=aru,
            aru_id=aru_id,
            rtr=tuple(sorted(rtr)),
        )
        self._forward_token(next_token)

    def _forward_token(self, token: RegularToken) -> None:
        successor = self.ring.successor(self.me)
        self.unicast_raw(successor, token)
        self.stats.tokens_forwarded += 1
        if obs.REGISTRY.enabled:
            M_TOKENS.inc(node=self.me)
        if trace.TRACER.enabled:
            trace.emit(
                "totem.token.forward", self.me, to=successor,
                token_seq=token.token_seq, seq=token.seq, aru=token.aru,
                rtr=len(token.rtr), ring=str(token.ring_id),
            )
        self._last_sent_token = token
        self._retransmit_count = 0
        self._arm_token_retransmit()

    def inject_regular_token(self) -> None:
        """Create and circulate the first token of a fresh ring.

        Called by the membership engine on the ring representative once
        recovery completes.
        """
        if self.ring is None:
            raise TotemError("cannot inject token without an installed ring")
        token = RegularToken(
            ring_id=self.ring.ring_id,
            token_seq=self.last_token_seq + 1,
            seq=0,
            aru=0,
            aru_id=None,
            rtr=(),
        )
        self.last_token_seq = token.token_seq
        self.sim.schedule(self.config.token_processing_s, self._process_token, token)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _token_evidence(self) -> None:
        """Progress observed on the ring: cancel token retransmission and
        re-arm the token-loss timeout."""
        self._retransmit_gen += 1
        self._last_sent_token = None
        self._arm_token_loss()

    def _arm_token_loss(self) -> None:
        self._token_loss_gen += 1
        generation = self._token_loss_gen
        self.sim.schedule(
            self.config.token_loss_timeout_s, self._on_token_loss, generation
        )

    def _on_token_loss(self, generation: int) -> None:
        if (
            generation != self._token_loss_gen
            or not self.node.alive
            or self.state is not ProcessorState.OPERATIONAL
        ):
            return
        self.membership.start_gather(reason="token loss")

    def _arm_token_retransmit(self) -> None:
        self._retransmit_gen += 1
        generation = self._retransmit_gen
        self.sim.schedule(
            self.config.token_retransmit_timeout_s, self._on_retransmit_timer, generation
        )

    def _on_retransmit_timer(self, generation: int) -> None:
        if (
            generation != self._retransmit_gen
            or not self.node.alive
            or self.state is not ProcessorState.OPERATIONAL
            or self._last_sent_token is None
        ):
            return
        if self._retransmit_count >= self.config.token_retransmit_limit:
            return  # give up; the token-loss timeout will trigger membership
        self._retransmit_count += 1
        self.stats.token_retransmissions += 1
        if obs.REGISTRY.enabled:
            M_TOKEN_RETRANSMIT.inc(node=self.me)
        if trace.TRACER.enabled:
            trace.emit(
                "totem.token.retransmit", self.me,
                token_seq=self._last_sent_token.token_seq,
                attempt=self._retransmit_count,
                ring=str(self._last_sent_token.ring_id),
            )
        self.unicast_raw(self.ring.successor(self.me), self._last_sent_token)
        self._arm_token_retransmit()

    # ------------------------------------------------------------------
    # Ring installation (called by the membership engine)
    # ------------------------------------------------------------------

    def install_ring(self, ring_id: RingId, members: Tuple[str, ...]) -> None:
        """Reset regular-ring state for a newly agreed ring and become
        operational on it."""
        self.ring = RingConfig(ring_id, tuple(members))
        self.received = {}
        self.my_aru = 0
        self.high_seq = 0
        self.delivered_seq = 0
        self.safe_seq = 0
        self.last_token_seq = 0
        self._prev_visit_aru = 0
        self._last_sent_token = None
        self._last_token_at = None
        self.state = ProcessorState.OPERATIONAL
        self.stats.membership_changes += 1
        self._arm_token_loss()
        if (
            self.me == ring_id.representative
            and self.config.beacon_interval_s > 0
        ):
            self._arm_beacon()

    def _arm_beacon(self) -> None:
        self._beacon_gen = getattr(self, "_beacon_gen", 0) + 1
        self.sim.schedule(
            self.config.beacon_interval_s, self._on_beacon, self._beacon_gen
        )

    def _on_beacon(self, generation: int) -> None:
        if (
            generation != getattr(self, "_beacon_gen", 0)
            or not self.node.alive
            or self.state is not ProcessorState.OPERATIONAL
            or self.ring is None
            or self.me != self.ring.ring_id.representative
        ):
            return
        self.multicast_raw(RingBeacon(self.ring.ring_id, self.me))
        self._arm_beacon()

    def deliver_config_change(self, change: ConfigurationChange) -> None:
        if self.on_config_change is not None:
            self.on_config_change(change)

    def deliver_recovered(self, msg: RegularMessage) -> None:
        """Deliver an old-ring message during recovery (in old-ring
        order, before the configuration change)."""
        self.stats.messages_delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ring = self.ring.ring_id if self.ring else None
        return f"<TotemProcessor {self.me} {self.state.value} ring={ring}>"
