"""Totem membership: failure detection, ring formation, and recovery.

Implements a (simplified but functional) version of the Totem membership
protocol [Amir et al. 1995]:

* **Gather** — on token loss, a foreign message, or a Join from an
  unknown processor, every processor multicasts Join messages carrying
  its ``proc_set`` (processors it believes alive) and ``fail_set``
  (processors it has given up on).  Sets are merged as Joins arrive;
  consensus is reached when every candidate member advertises identical
  sets.
* **Commit** — the representative (lowest-id candidate) circulates a
  :class:`~repro.totem.messages.CommitToken` around the proposed ring;
  each member contributes its old-ring state (first rotation).
* **Recover** — further commit-token rotations drive retransmission of
  old-ring messages until every member holds the same prefix (up to the
  *recovery ceiling* = the highest sequence number any member of the old
  ring holds).  Messages held by no survivor are tombstoned.  Each member
  then delivers the remaining old-ring messages in order, delivers the
  :class:`~repro.totem.messages.ConfigurationChange`, and installs the
  new ring; the representative finally injects a fresh regular token.

This provides extended virtual synchrony to the layers above: processors
that move together from one ring to the next deliver the same messages
in the same order before the configuration change event, which is what
the consistent time service's correctness argument relies on ("if the
message ... is delivered to any non-faulty replica, it will be delivered
to all non-faulty replicas", paper Section 3).

The primary-component partition model (paper Section 2) is implemented
here as well: a configuration is flagged primary iff it contains a
strict majority of the configured processor universe.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .. import obs, trace
from .messages import (
    CommitMemberInfo,
    CommitToken,
    ConfigurationChange,
    JoinMessage,
    LostMessage,
    RegularMessage,
    RingId,
)
from .ring import ProcessorState


# -- observability instruments (zero-cost while the registry is off) ----
M_GATHERS = obs.REGISTRY.counter(
    "totem_membership_gathers_total", "gather phases entered")
M_INSTALLS = obs.REGISTRY.counter(
    "totem_membership_installs_total", "rings installed")
M_MEMBERSHIP_DURATION = obs.REGISTRY.histogram(
    "totem_membership_duration_s",
    "gather start to ring installation", unit="s",
    buckets=(0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0))


class MembershipEngine:
    """The membership state machine of one Totem processor."""

    IDLE = "idle"
    GATHER = "gather"
    RECOVER = "recover"

    def __init__(self, processor):
        self.p = processor
        self.phase = self.IDLE
        #: Highest ring sequence number ever seen; new rings must exceed it.
        self.highest_ring_seq = 0

        # -- gather state ------------------------------------------------
        self.proc_set: Set[str] = set()
        self.fail_set: Set[str] = set()
        self.joins: Dict[str, JoinMessage] = {}
        self.heard: Set[str] = set()
        self.tick = 0
        self._tick_gen = 0
        #: When the current reconfiguration began (for install durations).
        self._gather_started_at: Optional[float] = None

        # -- commit/recover state -------------------------------------------
        self.commit: Optional[CommitToken] = None
        self.old_members: Tuple[str, ...] = ()
        #: (old_ring_id, seq) -> commit-token rotation when we first asked.
        self._rtr_requested: Dict[Tuple[RingId, int], int] = {}
        #: Old-ring messages kept after *we* finished recovery, so we can
        #: keep serving retransmissions to members that have not: a
        #: processor recovers as soon as it delivered up to the ceiling,
        #: but ``install_ring`` wipes its receive buffer — without this
        #: snapshot, a slower member's outstanding request could go
        #: unserved and tombstone a message others already delivered.
        self._retired_ring_id: Optional[RingId] = None
        self._retired_received: Dict[int, RegularMessage] = {}
        self._commit_last_token_seq = 0
        self._last_sent_commit: Optional[CommitToken] = None
        self._commit_retransmits = 0
        self._commit_gen = 0

        #: Members of the last primary configuration this processor was
        #: part of.  Primariness is judged against it (dynamic-linear
        #: style), so the system keeps making progress through a sequence
        #: of crashes: 4 -> 3 (3/4) -> 2 (2/3) are each primary, while a
        #: simultaneous 4 -> 2 split is not.
        self.last_primary_members: Tuple[str, ...] = tuple(
            processor.static_membership
        )

    # ------------------------------------------------------------------
    # Gather phase
    # ------------------------------------------------------------------

    def start_gather(self, reason: str = "") -> None:
        """Leave normal operation and begin forming a new ring."""
        if not self.p.node.alive or self.phase == self.GATHER:
            return
        self.p.state = ProcessorState.GATHER
        self.phase = self.GATHER
        if self.p.ring is not None:
            self.highest_ring_seq = max(self.highest_ring_seq, self.p.ring.ring_id.seq)
            self.old_members = self.p.ring.members
        self.proc_set = {self.p.me} | set(self.old_members)
        self.fail_set = set()
        self.joins = {}
        self.heard = {self.p.me}
        self.tick = 0
        self.commit = None
        self._rtr_requested = {}
        self._commit_last_token_seq = 0
        self._last_sent_commit = None
        self._gather_started_at = self.p.sim.now
        if obs.REGISTRY.enabled:
            M_GATHERS.inc(node=self.p.me)
        if trace.TRACER.enabled:
            trace.emit("membership.gather", self.p.me, reason=reason,
                       t=self.p.sim.now)
        self._broadcast_join()
        self._arm_tick()

    def _broadcast_join(self) -> None:
        join = JoinMessage(
            sender=self.p.me,
            proc_set=frozenset(self.proc_set),
            fail_set=frozenset(self.fail_set),
            ring_seq=self.highest_ring_seq,
        )
        self.p.multicast_raw(join)

    def _arm_tick(self) -> None:
        self._tick_gen += 1
        self.p.sim.schedule(
            self.p.config.join_interval_s, self._on_tick, self._tick_gen
        )

    def _on_tick(self, generation: int) -> None:
        if (
            generation != self._tick_gen
            or self.phase != self.GATHER
            or not self.p.node.alive
        ):
            return
        self.tick += 1
        if self.tick >= self.p.config.fail_after_join_ticks:
            silent = self.proc_set - self.heard - self.fail_set - {self.p.me}
            if silent:
                self.fail_set |= silent
        self._broadcast_join()
        self._check_consensus()
        if self.phase == self.GATHER:
            self._arm_tick()

    def handle_join(self, join: JoinMessage) -> None:
        if not self.p.node.alive:
            return
        self.highest_ring_seq = max(self.highest_ring_seq, join.ring_seq)
        if join.sender == self.p.me:
            return  # our own multicast looping back

        if self.phase == self.IDLE:
            ring = self.p.ring
            stale = (
                ring is not None
                and join.sender in ring.members
                and join.ring_seq < ring.ring_id.seq
            )
            if stale:
                return
            self.start_gather(reason=f"join from {join.sender}")
        elif self.phase == self.RECOVER:
            assert self.commit is not None
            disputing = (
                join.sender not in self.commit.members
                or join.ring_seq >= self.commit.ring_id.seq
            )
            if not disputing:
                return
            self.phase = self.IDLE  # allow re-entry
            self.start_gather(reason=f"join during recovery from {join.sender}")

        # Now in gather: merge the sender's view into ours.
        if self.p.me in join.fail_set:
            # Someone has given up on us.  Step aside: form our own
            # (typically singleton) ring without the accusers; a later
            # remerge reconciles the components.
            self.proc_set = {self.p.me}
            self.fail_set = set(join.fail_set - {self.p.me}) | {join.sender}
            self.joins = {}
            self.heard = {self.p.me}
            self.tick = 0
            self._broadcast_join()
            return
        self.heard.add(join.sender)
        self.joins[join.sender] = join
        merged_proc = self.proc_set | set(join.proc_set) | {join.sender}
        merged_fail = self.fail_set | (set(join.fail_set) - {self.p.me})
        if merged_proc != self.proc_set or merged_fail != self.fail_set:
            self.proc_set = merged_proc
            self.fail_set = merged_fail
            self._broadcast_join()
        self._check_consensus()

    def _check_consensus(self) -> None:
        candidate = self.proc_set - self.fail_set
        if self.p.me not in candidate:
            return
        if len(candidate) == 1:
            # Don't conclude we are alone until we have listened a while.
            if self.tick < self.p.config.fail_after_join_ticks:
                return
        else:
            for member in candidate:
                if member == self.p.me:
                    continue
                join = self.joins.get(member)
                if (
                    join is None
                    or set(join.proc_set) != self.proc_set
                    or set(join.fail_set) != self.fail_set
                ):
                    return
        representative = min(candidate)
        if representative != self.p.me:
            return  # wait for the representative's commit token
        token = CommitToken(
            ring_id=RingId(self.highest_ring_seq + 1, representative),
            members=tuple(sorted(candidate)),
            token_seq=1,
            rotation=1,
        )
        self._enter_recover(token)
        self._process_commit_visit(token)

    # ------------------------------------------------------------------
    # Commit / recover phases
    # ------------------------------------------------------------------

    def handle_commit_token(self, token: CommitToken) -> None:
        if not self.p.node.alive or self.p.me not in token.members:
            return
        if self.phase == self.GATHER:
            if self.p.ring is not None and token.ring_id.seq <= self.p.ring.ring_id.seq:
                return  # stale commit token from a ring we already left
            self._enter_recover(token.copy())
            self._process_commit_visit(self.commit)
        elif self.commit is not None and token.ring_id == self.commit.ring_id:
            if token.token_seq <= self._commit_last_token_seq:
                return  # duplicate (commit-token retransmission)
            self.commit = token.copy()
            self._process_commit_visit(self.commit)
        # Anything else is stale and ignored.

    def _enter_recover(self, token: CommitToken) -> None:
        self.phase = self.RECOVER
        self.p.state = ProcessorState.RECOVER
        self.commit = token
        self.highest_ring_seq = max(self.highest_ring_seq, token.ring_id.seq)
        self._rtr_requested = {}
        self._commit_last_token_seq = token.token_seq
        self._commit_retransmits = 0
        self._tick_gen += 1  # stop gather ticks

    def handle_recovery_message(self, msg: RegularMessage) -> None:
        """Old-ring retransmission received during recovery: file it into
        the regular receive machinery (the old ring's state is still the
        processor's live state until the new ring is installed)."""
        if self.p.ring is None or msg.ring_id != self.p.ring.ring_id:
            return
        self.p._store_message(msg)
        self.p._try_deliver()

    def _my_old_ring_id(self) -> Optional[RingId]:
        return self.p.ring.ring_id if self.p.ring is not None else None

    def _process_commit_visit(self, token: CommitToken) -> None:
        """Handle one visit of the commit token at this processor."""
        p = self.p
        self._commit_last_token_seq = token.token_seq
        self._commit_gen += 1  # evidence: cancel pending retransmit
        p._token_evidence()
        self._arm_commit_loss()

        old_ring = self._my_old_ring_id()

        # 1. Contribute / refresh our member info.
        token.info[p.me] = CommitMemberInfo(
            old_ring_id=old_ring,
            high_seq=p.high_seq,
            recovery_aru=p.my_aru,
            recovered=self.phase == self.IDLE,
        )

        # 2. Serve retransmission requests for our old ring (tombstones
        #    are not real copies, so they cannot be served).
        served = []
        for entry in token.rtr:
            entry_ring, seq = entry
            msg = p.received.get(seq) if entry_ring == old_ring else None
            if msg is None and entry_ring == self._retired_ring_id:
                msg = self._retired_received.get(seq)
            if msg is not None and not isinstance(msg.payload, LostMessage):
                p.multicast_raw(
                    RegularMessage(
                        entry_ring, seq, p.me, msg.payload, retransmission=True
                    )
                )
                p.stats.retransmissions += 1
                served.append(entry)
        for entry in served:
            token.rtr.remove(entry)

        # 3. If everyone has contributed, we know the recovery ceiling.
        info_complete = all(m in token.info for m in token.members)
        ceiling = None
        if info_complete and old_ring is not None:
            group = [
                i.high_seq
                for i in token.info.values()
                if i.old_ring_id == old_ring
            ]
            ceiling = max(group) if group else 0

        # 4. Request anything we are missing below the ceiling; tombstone
        #    requests that no member has served for two full rotations.
        if ceiling is not None:
            for seq in range(p.my_aru + 1, ceiling + 1):
                if seq in p.received:
                    continue
                entry = (old_ring, seq)
                asked_at = self._rtr_requested.get(entry)
                if asked_at is not None and entry in token.rtr:
                    # Our request survived in the token unserved.  If it
                    # has done so for two full rotations, no survivor
                    # holds this message (its sender crashed before anyone
                    # received it): tombstone the slot so delivery can
                    # proceed consistently everywhere.
                    if token.rotation >= asked_at + 2:
                        token.rtr.remove(entry)
                        p._store_message(
                            RegularMessage(old_ring, seq, "<lost>", LostMessage(), True)
                        )
                else:
                    # First request, or a previous request was served but
                    # the retransmitted frame did not reach us: (re)issue
                    # with a fresh rotation stamp.
                    self._rtr_requested[entry] = token.rotation
                    if entry not in token.rtr:
                        token.rtr.append(entry)
            p._try_deliver()

        # 5. Finish recovery once we have delivered everything up to the
        #    ceiling (trivially true for fresh processors with no old ring).
        done = self.phase == self.RECOVER and (
            old_ring is None or (ceiling is not None and p.delivered_seq >= ceiling)
        )
        if done and info_complete:
            self._finish_recovery(token)
            token.info[p.me].recovered = True

        # 6. Representative bookkeeping: rotation counting and completion.
        if p.me == token.ring_id.representative and token.token_seq > 1:
            token.rotation += 1
            all_recovered = info_complete and all(
                token.info[m].recovered for m in token.members
            )
            if all_recovered:
                self._last_sent_commit = None
                p.inject_regular_token()
                return

        # 7. Forward (single-member rings loop the token to themselves).
        if len(token.members) == 1 and token.info[p.me].recovered:
            # Singleton and fully recovered: no forwarding needed; inject.
            self._last_sent_commit = None
            p.inject_regular_token()
            return
        forwarded = token.copy()
        forwarded.token_seq = token.token_seq + 1
        self.p.unicast_raw(token.next_member(p.me), forwarded)
        self._last_sent_commit = forwarded
        self._arm_commit_retransmit()

    def _finish_recovery(self, token: CommitToken) -> None:
        """Deliver the configuration change and install the new ring."""
        p = self.p
        old_members = set(self.old_members or (p.ring.members if p.ring else ()))
        new_members = set(token.members)
        change = ConfigurationChange(
            ring_id=token.ring_id,
            members=token.members,
            joined=tuple(sorted(new_members - old_members)),
            departed=tuple(sorted(old_members - new_members)),
            is_primary=self._is_primary(new_members),
        )
        # Snapshot the old ring's messages before install_ring wipes
        # them: members still recovering may yet request retransmission.
        self._retired_ring_id = p.ring.ring_id if p.ring is not None else None
        self._retired_received = dict(p.received)
        p.install_ring(token.ring_id, token.members)
        self.old_members = token.members
        self.phase = self.IDLE
        duration_s = (
            p.sim.now - self._gather_started_at
            if self._gather_started_at is not None else None
        )
        if obs.REGISTRY.enabled:
            M_INSTALLS.inc(node=p.me)
            if duration_s is not None:
                M_MEMBERSHIP_DURATION.observe(duration_s, node=p.me)
        if trace.TRACER.enabled:
            trace.emit(
                "membership.install", p.me, ring=str(token.ring_id),
                members=",".join(token.members),
                primary=change.is_primary, duration_s=duration_s,
                t=p.sim.now,
            )
        self._gather_started_at = None
        p.deliver_config_change(change)

    def _is_primary(self, members: Set[str]) -> bool:
        base = set(self.last_primary_members) | (
            members - set(self.p.static_membership)
        )
        is_primary = 2 * len(members & base) > len(base)
        if is_primary:
            self.last_primary_members = tuple(sorted(members))
        return is_primary

    # ------------------------------------------------------------------
    # Commit-token timers
    # ------------------------------------------------------------------

    def _arm_commit_loss(self) -> None:
        self._tick_gen += 1
        generation = self._tick_gen
        self.p.sim.schedule(
            self.p.config.token_loss_timeout_s, self._on_commit_loss, generation
        )

    def _on_commit_loss(self, generation: int) -> None:
        if (
            generation != self._tick_gen
            or not self.p.node.alive
            or self.phase != self.RECOVER
        ):
            return
        self.phase = self.IDLE  # allow re-entry into gather
        self.start_gather(reason="commit token loss")

    def _arm_commit_retransmit(self) -> None:
        self._commit_gen += 1
        generation = self._commit_gen
        self.p.sim.schedule(
            self.p.config.token_retransmit_timeout_s,
            self._on_commit_retransmit,
            generation,
        )

    def _on_commit_retransmit(self, generation: int) -> None:
        if (
            generation != self._commit_gen
            or not self.p.node.alive
            or self._last_sent_commit is None
            or self._commit_retransmits >= self.p.config.token_retransmit_limit
        ):
            return
        self._commit_retransmits += 1
        self.p.stats.token_retransmissions += 1
        self.p.unicast_raw(
            self._last_sent_commit.next_member(self.p.me), self._last_sent_commit
        )
        self._arm_commit_retransmit()
