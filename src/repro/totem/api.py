"""A small facade for using Totem directly as an ordered-multicast bus.

The replication layer is the primary consumer of Totem, but the
substrate is useful on its own — a totally-ordered, membership-aware
pub/sub bus.  :class:`TotemBus` wires processors onto a cluster and
gives each node a simple publish/subscribe handle.

Example::

    from repro.sim import Cluster
    from repro.totem.api import TotemBus

    cluster = Cluster(seed=1)
    bus = TotemBus(cluster)
    bus.subscribe("n1", lambda sender, payload: print(sender, payload))
    bus.start()
    cluster.run(0.1)
    bus.publish("n0", {"event": "hello"})
    cluster.run(0.1)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.cluster import Cluster
from .config import TotemConfig
from .messages import ConfigurationChange
from .ring import TotemProcessor

#: subscriber callback: (sender_node, payload)
Subscriber = Callable[[str, Any], None]
#: membership callback: ConfigurationChange
MembershipSubscriber = Callable[[ConfigurationChange], None]


class TotemBus:
    """One Totem processor per cluster node, exposed as a pub/sub bus."""

    def __init__(self, cluster: Cluster, config: Optional[TotemConfig] = None):
        self.cluster = cluster
        self.config = config or TotemConfig()
        self.processors: Dict[str, TotemProcessor] = {}
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._membership_subscribers: Dict[str, List[MembershipSubscriber]] = {}
        #: Per-node delivery log: (seq, sender, payload).
        self.delivered: Dict[str, List[Tuple[int, str, Any]]] = {}
        static = cluster.node_ids
        for node_id in static:
            processor = TotemProcessor(
                cluster.node(node_id), self.config, static_membership=static
            )
            processor.on_deliver = self._make_deliver(node_id)
            processor.on_config_change = self._make_config(node_id)
            self.processors[node_id] = processor
            self.delivered[node_id] = []
        self._started = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Boot every processor (they form the initial ring together)."""
        if self._started:
            return
        self._started = True
        for processor in self.processors.values():
            processor.start()

    def wait_operational(self, timeout: float = 2.0) -> None:
        """Run the simulation until every live node's processor is on a
        ring (raises if that does not happen within ``timeout``)."""
        sim = self.cluster.sim
        deadline = sim.now + timeout
        while sim.now < deadline:
            live = [
                p for p in self.processors.values() if p.node.alive
            ]
            if live and all(p.is_operational for p in live):
                return
            sim.run(until=sim.now + 0.001)
        raise ConfigurationError("Totem bus failed to become operational")

    # -- pub/sub ------------------------------------------------------------

    def publish(self, node_id: str, payload: Any) -> None:
        """Multicast ``payload`` into the total order from ``node_id``."""
        self.processors[node_id].mcast(payload)

    def subscribe(self, node_id: str, callback: Subscriber) -> None:
        """Deliver every ordered message to ``callback`` on ``node_id``."""
        self._subscribers.setdefault(node_id, []).append(callback)

    def subscribe_membership(
        self, node_id: str, callback: MembershipSubscriber
    ) -> None:
        """Deliver configuration changes to ``callback`` on ``node_id``."""
        self._membership_subscribers.setdefault(node_id, []).append(callback)

    # -- internals --------------------------------------------------------------

    def _make_deliver(self, node_id: str):
        def deliver(msg):
            self.delivered[node_id].append((msg.seq, msg.sender, msg.payload))
            for callback in self._subscribers.get(node_id, []):
                callback(msg.sender, msg.payload)

        return deliver

    def _make_config(self, node_id: str):
        def config_change(change: ConfigurationChange) -> None:
            for callback in self._membership_subscribers.get(node_id, []):
                callback(change)

        return config_change

    # -- introspection ---------------------------------------------------------

    def orders(self) -> Dict[str, List[Any]]:
        """Per-node delivered payloads, for order comparison."""
        return {
            node_id: [payload for _, _, payload in log]
            for node_id, log in self.delivered.items()
        }
