"""Protocol timing and flow-control parameters for Totem.

Defaults are calibrated against the paper's testbed measurements: the
peak probability density of the token-passing time was ≈51 us on four
1 GHz PCs over 100 Mbit/s Ethernet [Zhao et al. 2002], giving a full
rotation of ≈200 us on a four-node ring.  Timeouts are set an order of
magnitude above those scales, as a deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass
class TotemConfig:
    """Tunable parameters of one Totem processor."""

    #: Maximum new messages a processor may broadcast per token visit.
    window_size: int = 16
    #: Simulated CPU cost of handling the token before forwarding it.
    #: Together with the network latency this sets the token-passing
    #: time, calibrated to the paper's measured ≈51 us peak per hop.
    token_processing_s: float = 21e-6
    #: Simulated CPU cost of handling one regular message.
    message_processing_s: float = 5e-6
    #: No token for this long in operational state => assume token lost /
    #: processor failed, shift to the gather (membership) phase.
    token_loss_timeout_s: float = 5e-3
    #: After forwarding the token, retransmit it if no progress evidence
    #: (a newer token or message) is observed within this long.
    token_retransmit_timeout_s: float = 1.5e-3
    #: Maximum token retransmissions before giving up (membership takes
    #: over via the token-loss timeout).
    token_retransmit_limit: int = 3
    #: Interval between Join message rebroadcasts in the gather phase.
    join_interval_s: float = 1e-3
    #: Gather ticks with no Join heard from a processor before it is
    #: declared failed.
    fail_after_join_ticks: int = 4
    #: Overall cap on one gather phase; on expiry the consensus test is
    #: forced with whatever processors have answered.
    gather_timeout_s: float = 20e-3
    #: Interval between ring beacons multicast by the representative so
    #: that healed partitions remerge even when idle.  0 disables.
    beacon_interval_s: float = 25e-3
    #: Record per-processor token arrival timestamps (calibration
    #: measurements; costs memory on long runs).
    record_token_times: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical settings."""
        if self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        if self.token_loss_timeout_s <= self.token_retransmit_timeout_s:
            raise ConfigurationError(
                "token_loss_timeout_s must exceed token_retransmit_timeout_s"
            )
        if self.fail_after_join_ticks < 1:
            raise ConfigurationError("fail_after_join_ticks must be >= 1")
        for name in (
            "token_processing_s",
            "message_processing_s",
            "join_interval_s",
            "gather_timeout_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
