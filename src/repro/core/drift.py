"""Drift-compensation strategies for the group clock (paper Section 3.3).

The group clock drifts *slow* relative to real time: each round adopts a
value computed from a physical reading taken before communication and
processing delays, so the offset trend is downward (Figure 6(b)) and the
group clock falls behind real time (Figure 6(c)).  The paper sketches
two counter-measures:

* :class:`MeanDelayCompensation` — "increase the value of
  my_clock_offset by a mean delay each time that value is calculated".
  Cheap and approximately cancels the average per-round loss.
* :class:`ReferenceSteering` — "each time that a physical hardware clock
  is read and a proposed consistent clock is calculated at the start of
  a round, a small proportion of the difference between the 'real time'
  and the proposed consistent clock is added" — an NTP/GPS-anchored
  correction that removes long-term drift entirely.

Strategies only ever adjust *inputs to proposals* (never delivered group
values), so every replica stays consistent: the winner's adjusted
proposal is what everyone adopts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class DriftBound:
    """Worst-case clock-rate error budget for the read fast path.

    Between CCS rounds a replica may serve reads from its own physical
    clock plus the last committed offset.  Such a read is wrong by at
    most ``elapsed * drift_ppm / 1e6`` microseconds relative to the group
    clock (the gradient-clock-synchronization bound): once that error —
    or the raw staleness ``elapsed`` itself — would exceed its budget,
    the service must fall back to a full CCS round.
    """

    #: Assumed worst-case physical clock drift rate, parts per million.
    drift_ppm: float = 100.0
    #: Maximum tolerated drift-induced error, microseconds.
    max_error_us: int = 100

    def error_us(self, elapsed_us: int) -> float:
        """Worst-case drift error accumulated over ``elapsed_us``."""
        return elapsed_us * self.drift_ppm / 1e6

    def permits(self, elapsed_us: int) -> bool:
        """True while the drift-error budget covers ``elapsed_us``."""
        return self.error_us(elapsed_us) <= self.max_error_us


class DriftCompensation(abc.ABC):
    """Strategy hooks called by the consistent time service."""

    name = "abstract"

    def adjust_offset(self, offset_us: int) -> int:
        """Hook applied when my_clock_offset is recomputed (line 7)."""
        return offset_us

    def adjust_proposal(self, proposal_us: int) -> int:
        """Hook applied to the local clock value proposed for the group
        clock (line 4)."""
        return proposal_us

    def adjust_fast_value(self, value_us: int) -> int:
        """Hook applied to a drift-bounded fast-path reading.

        Defaults to :meth:`adjust_proposal` — continuous compensators
        steer every served value the same way.  Stateful one-shot
        compensators (:class:`GradientSteering`) override this to a
        no-op so their pending correction is spent on a CCS round
        proposal, where the commit makes it durable group state, rather
        than on a single local read."""
        return self.adjust_proposal(value_us)


class NoCompensation(DriftCompensation):
    """The algorithm exactly as in Figure 2: drifts slow over time."""

    name = "none"


class MeanDelayCompensation(DriftCompensation):
    """Add a fixed mean round delay to the offset each recomputation.

    ``mean_delay_us`` should approximate the average gap between reading
    the physical clock and the round's CCS message being delivered (about
    one token rotation on the paper's testbed).
    """

    name = "mean-delay"

    def __init__(self, mean_delay_us: int):
        if mean_delay_us < 0:
            raise ValueError("mean_delay_us must be non-negative")
        self.mean_delay_us = int(mean_delay_us)

    def adjust_offset(self, offset_us: int) -> int:
        return offset_us + self.mean_delay_us


class ReferenceSteering(DriftCompensation):
    """Steer proposals toward an external reference (NTP/GPS).

    ``reference_us`` returns the reference time in microseconds (possibly
    with transient skew but no long-term drift); ``proportion`` is the
    fraction of the measured difference folded into each proposal.

    The reference must share the group clock's epoch (wall-clock time in
    a real deployment).  If your reference counts from a different origin
    — e.g. the simulation's time-zero — use
    :class:`AlignedReferenceSteering`, which calibrates the constant
    epoch difference away at the first round and then corrects rate only.
    """

    name = "reference-steering"

    def __init__(self, reference_us: Callable[[], int], proportion: float = 0.1):
        if not 0.0 < proportion <= 1.0:
            raise ValueError("proportion must be in (0, 1]")
        self.reference_us = reference_us
        self.proportion = proportion

    def adjust_proposal(self, proposal_us: int) -> int:
        difference = self.reference_us() - proposal_us
        return proposal_us + int(self.proportion * difference)


class GradientSteering(DriftCompensation):
    """Steer proposals toward neighboring shards' group clocks.

    The cross-shard sync overlay (:mod:`repro.shard.overlay`) delivers
    signed clock summaries from ring neighbors; the positive part of
    each neighbor delta (neighbor group clock minus ours) is recorded
    here and folded into the *next local proposal* — never into a
    delivered group value, so intra-group agreement is untouched and
    :meth:`GroupClockState.clamp_to_floor` still guarantees the group
    clock never regresses.

    Applying only positive deltas makes every shard chase the fastest
    one (the gradient-clock idiom from the TRIX line of work): the
    system converges toward the maximum group clock instead of
    oscillating around a mean.  Per delivery the step is bounded by
    ``proportion * pending`` capped at ``max_step_us``, which yields the
    per-hop envelope documented in docs/sharding.md — except during
    initial alignment, when shard epochs may sit seconds apart: a
    pending delta at or above ``align_threshold_us`` is applied in full
    once (a forward jump is always monotone-safe).

    One instance is shared by all replicas of a group (the testbed hands
    a single drift object to every replica factory).  The pending
    correction is consumed by whichever replica proposes first; if a
    losing proposal consumed it, the next summary re-measures the
    remaining gap, so corrections are never permanently lost.
    """

    name = "gradient-steering"

    def __init__(self, proportion: float = 0.5, *, max_step_us: int = 500,
                 align_threshold_us: int = 50_000):
        if not 0.0 < proportion <= 1.0:
            raise ValueError("proportion must be in (0, 1]")
        if max_step_us < 1:
            raise ValueError("max_step_us must be >= 1")
        if align_threshold_us <= max_step_us:
            raise ValueError("align_threshold_us must exceed max_step_us")
        self.proportion = proportion
        self.max_step_us = int(max_step_us)
        self.align_threshold_us = int(align_threshold_us)
        self._pending_us: int = 0
        self.deltas_observed = 0
        self.steps_applied = 0
        self.align_jumps = 0

    @property
    def pending_us(self) -> int:
        """The neighbor correction awaiting the next proposal."""
        return self._pending_us

    def observe_neighbor_delta(self, delta_us: int) -> None:
        """Record a neighbor's lead over our group clock.

        Non-positive deltas (we are ahead or level) are ignored — the
        slower side is the one that steers.  Concurrent summaries from
        both neighbors keep the largest lead.
        """
        self.deltas_observed += 1
        if delta_us > self._pending_us:
            self._pending_us = int(delta_us)

    def adjust_proposal(self, proposal_us: int) -> int:
        pending = self._pending_us
        if pending <= 0:
            return proposal_us
        self._pending_us = 0
        if pending >= self.align_threshold_us:
            self.align_jumps += 1
            return proposal_us + pending
        step = min(self.max_step_us, int(self.proportion * pending))
        if step <= 0:
            step = 1  # pending > 0: always make forward progress
        self.steps_applied += 1
        return proposal_us + step

    def adjust_fast_value(self, value_us: int) -> int:
        # Never spend the one-shot correction on a local fast-path read:
        # a step served there lives only in one replica's fast floor and
        # is mostly lost, while a round proposal commits it group-wide.
        return value_us


class AlignedReferenceSteering(ReferenceSteering):
    """Reference steering against a drift-free source with an arbitrary
    epoch.

    On the first proposal the constant offset between the reference and
    the group clock is measured and subsequently treated as the
    reference's (permanent) skew; only the *drift* relative to the
    reference is corrected thereafter — matching the paper's framing of
    a source "that might have a transient skew from real time but that
    has no drift".

    Deterministic across replicas in primary-only modes by construction;
    in active mode each replica aligns at its own first proposal, so
    per-replica skew estimates differ by at most the initial round's
    uncertainty — only the winner's (consistent) proposal is ever adopted.
    """

    name = "aligned-reference-steering"

    def __init__(self, reference_us: Callable[[], int], proportion: float = 0.1):
        super().__init__(reference_us, proportion)
        self._epoch_skew_us: int = 0
        self._aligned = False

    def adjust_proposal(self, proposal_us: int) -> int:
        raw = self.reference_us()
        if not self._aligned:
            self._epoch_skew_us = proposal_us - raw
            self._aligned = True
        difference = (raw + self._epoch_skew_us) - proposal_us
        return proposal_us + int(self.proportion * difference)
