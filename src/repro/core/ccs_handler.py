"""Per-thread Consistent Clock Synchronization handler objects.

"There is one such handler object for each thread" (paper Section 3.1).
A :class:`CCSHandler` owns the thread's CCS round counter and input
buffer; the thread blocks in ``get_grp_clock_time()`` until the first
matching CCS message is delivered — here, the blocked operation parks on
an event the handler wakes when a message lands in the empty buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..errors import TimeServiceError
from ..sim.kernel import Event, Simulator
from .messages import CCSMessage


@dataclass
class PendingRound:
    """The round a thread is currently blocked in."""

    round_number: int
    proposal_us: int
    call_type_id: int
    physical_us: int
    #: True once our own CCS message for this round was handed to Totem.
    sent: bool
    result: Event
    started_at: float


class CCSHandler:
    """my_thread_id, my_round_number, my_input_buffer and friends."""

    def __init__(self, sim: Simulator, thread_id: str, start_round: int = 0):
        self.sim = sim
        self.my_thread_id = thread_id
        #: Incremented once per clock-related operation (Figure 2 line 9).
        self.my_round_number = start_round
        #: Received CCS messages not yet consumed by an operation.
        self.my_input_buffer: Deque[CCSMessage] = deque()
        #: The operation currently blocked waiting for a message, if any.
        self.pending: Optional[PendingRound] = None
        self._waiter: Optional[Event] = None
        self.rounds_completed = 0

    # ------------------------------------------------------------------

    def next_round(self) -> int:
        """Start a new round (only one can be in flight per thread)."""
        if self.pending is not None:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} started a clock operation "
                "while a previous one is still blocked"
            )
        self.my_round_number += 1
        return self.my_round_number

    def recv_CCS_msg(self, msg: CCSMessage) -> None:
        """Append a (non-duplicate) CCS message; wake a blocked thread if
        the buffer was empty (Figure 3 lines 6-9)."""
        was_empty = not self.my_input_buffer
        self.my_input_buffer.append(msg)
        if was_empty and self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()

    def wait_for_message(self) -> Event:
        """Event that fires when the (currently empty) buffer fills."""
        if self._waiter is not None and not self._waiter.triggered:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} already has a blocked waiter"
            )
        self._waiter = Event(self.sim)
        return self._waiter

    def pop_message(self) -> CCSMessage:
        """Select (and remove) the first message in the input buffer."""
        if not self.my_input_buffer:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} popped from an empty buffer"
            )
        return self.my_input_buffer.popleft()

    def abort_pending(self, reason: str) -> bool:
        """Fail the blocked operation (if any) and orphan its waiter.

        Returns True if an operation was aborted.  The orphaned waiter
        event is never triggered; subsequent messages land in the buffer
        without waking anyone until the next operation installs a fresh
        waiter.
        """
        pending, self.pending = self.pending, None
        self._waiter = None
        if pending is None:
            return False
        if not pending.result.triggered:
            pending.result.fail(
                TimeServiceError(
                    f"clock operation round {pending.round_number} on "
                    f"thread {self.my_thread_id!r} aborted: {reason}"
                )
            )
            # A deliberate abort, not a bug: don't let the scheduler
            # re-raise if the waiting process died before observing it.
            pending.result._fail_silently = True
        return True

    def drop_through(self, round_number: int) -> int:
        """Discard buffered messages for rounds <= ``round_number``
        (applied when a checkpoint fast-forwards this thread past them).

        Returns how many were dropped.
        """
        before = len(self.my_input_buffer)
        self.my_input_buffer = deque(
            m for m in self.my_input_buffer if m.round_number > round_number
        )
        return before - len(self.my_input_buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CCSHandler {self.my_thread_id} round={self.my_round_number} "
            f"buffered={len(self.my_input_buffer)}>"
        )
