"""Per-thread Consistent Clock Synchronization handler objects.

"There is one such handler object for each thread" (paper Section 3.1).
A :class:`CCSHandler` owns the thread's CCS round counter and input
buffer; the thread blocks in ``get_grp_clock_time()`` until the first
matching CCS message is delivered — here, the blocked operation parks on
an event the handler wakes when a message lands in the empty buffer.

Two execution disciplines share the handler:

* **Per-operation rounds** (the paper's Figure 2, one round per clock
  operation): the blocked operation is a :class:`PendingRound` and
  ``my_round_number`` advances when the operation starts.
* **Coalesced rounds** (round amortization): many concurrent operations
  share one round.  Operations park as :class:`PendingOp` entries keyed
  by replica-independent operation ids, at most one
  :class:`RoundInFlight` exists per handler, and ``my_round_number``
  advances when a round's winning message is *consumed*.  Consumed
  rounds are retained (:class:`ConsumedRound`) so a covered operation
  that is issued late — after its round was already consumed — still
  adopts the agreed value of the correct round.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from ..errors import TimeServiceError
from ..sim.kernel import Event, Simulator
from .messages import CCSMessage, OpId


@dataclass
class PendingRound:
    """The round a thread is currently blocked in (per-op mode)."""

    round_number: int
    proposal_us: int
    call_type_id: int
    physical_us: int
    #: True once our own CCS message for this round was handed to Totem.
    sent: bool
    result: Event
    started_at: float


@dataclass(order=True)
class PendingOp:
    """One coalesced clock operation parked while a round is in flight."""

    op_id: OpId
    call: object = field(compare=False)
    result: Event = field(compare=False)
    started_at: float = field(compare=False)
    #: Session floor carried by the request (the client's last-seen
    #: value): the reply must exceed it.  Rides the totally ordered
    #: request, so every replica applies the same clamp to this op.
    floor_us: Optional[int] = field(default=None, compare=False)


@dataclass
class RoundInFlight:
    """The (single) coalesced round currently awaiting its winner."""

    round_number: int
    #: Operation id this round covers *as proposed by us*; the winning
    #: message's covering point is what actually binds.
    covers: OpId
    proposal_us: int
    physical_us: int
    call_type_id: int
    sent: bool
    started_at: float


@dataclass(frozen=True)
class ConsumedRound:
    """A consumed coalesced round, retained for late-issued covered ops."""

    round_number: int
    covers: OpId
    group_us: int


class CCSHandler:
    """my_thread_id, my_round_number, my_input_buffer and friends."""

    def __init__(self, sim: Simulator, thread_id: str, start_round: int = 0):
        self.sim = sim
        self.my_thread_id = thread_id
        #: Per-op mode: incremented once per clock operation (Figure 2
        #: line 9).  Coalesced mode: the highest *consumed* round.
        self.my_round_number = start_round
        #: Received CCS messages not yet consumed by an operation.
        self.my_input_buffer: Deque[CCSMessage] = deque()
        #: The operation currently blocked waiting for a message, if any
        #: (per-op mode only; see the ``pending`` property).
        self._pending: Optional[PendingRound] = None
        self._waiter: Optional[Event] = None
        self.rounds_completed = 0
        # -- coalesced-mode state --------------------------------------
        #: Operations parked until a round covering them is consumed,
        #: kept sorted by operation id.
        self.parked: List[PendingOp] = []
        #: The coalesced round awaiting its winning message, if any.
        self.in_flight: Optional[RoundInFlight] = None
        #: Consumed rounds retained for late-issued covered operations,
        #: in round order (covering points strictly increase with it).
        self.consumed: Deque[ConsumedRound] = deque()
        #: Highest operation id assigned on this thread — resumes the
        #: fallback numbering for reads without an explicit id.
        self.last_op_id: OpId = (0, 0)

    # ------------------------------------------------------------------

    @property
    def pending(self):
        """The protocol position currently blocked, whatever the mode:
        the per-op :class:`PendingRound` or the coalesced
        :class:`RoundInFlight` (both carry ``round_number`` and ``sent``,
        which is all the suppression and failover paths touch)."""
        return self._pending if self._pending is not None else self.in_flight

    @pending.setter
    def pending(self, value: Optional[PendingRound]) -> None:
        self._pending = value

    def next_round(self) -> int:
        """Start a new per-op round (only one can be in flight)."""
        if self._pending is not None:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} started a clock operation "
                "while a previous one is still blocked"
            )
        self.my_round_number += 1
        return self.my_round_number

    def recv_CCS_msg(self, msg: CCSMessage) -> None:
        """Append a (non-duplicate) CCS message; wake a blocked thread if
        the buffer was empty (Figure 3 lines 6-9)."""
        was_empty = not self.my_input_buffer
        self.my_input_buffer.append(msg)
        if was_empty and self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()

    def wait_for_message(self) -> Event:
        """Event that fires when the (currently empty) buffer fills."""
        if self._waiter is not None and not self._waiter.triggered:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} already has a blocked waiter"
            )
        self._waiter = Event(self.sim)
        return self._waiter

    def pop_message(self) -> CCSMessage:
        """Select (and remove) the first message in the input buffer."""
        if not self.my_input_buffer:
            raise TimeServiceError(
                f"thread {self.my_thread_id!r} popped from an empty buffer"
            )
        return self.my_input_buffer.popleft()

    # ------------------------------------------------------------------
    # Coalesced operations
    # ------------------------------------------------------------------

    def assign_op_id(self, op_id: Optional[OpId]) -> OpId:
        """Fix the identity of one coalesced operation.

        Explicit ids come from the replica runtime (``(request_index,
        read_seq)``, replica-independent).  Reads without one — dedicated
        threads, the special state-transfer round — continue the thread's
        own sequence, which is deterministic because such reads are
        issued sequentially (the special round runs at a quiescent
        point, where ``last_op_id`` is identical at every replica).
        """
        if op_id is None:
            op_id = (self.last_op_id[0], self.last_op_id[1] + 1)
        if op_id > self.last_op_id:
            self.last_op_id = op_id
        return op_id

    def park(self, op: PendingOp) -> None:
        """Park an operation until a round covering it is consumed."""
        bisect.insort(self.parked, op)

    def take_covered(self, covers: OpId) -> List[PendingOp]:
        """Remove and return the parked operations with id <= ``covers``,
        in operation order."""
        cut = 0
        while cut < len(self.parked) and self.parked[cut].op_id <= covers:
            cut += 1
        served, self.parked = self.parked[:cut], self.parked[cut:]
        return served

    def take_oldest(self) -> List[PendingOp]:
        """Remove and return just the oldest parked operation (the
        serving discipline for a legacy per-op message, which covers
        exactly one operation)."""
        if not self.parked:
            return []
        return [self.parked.pop(0)]

    def retain_consumed(self, entry: ConsumedRound) -> None:
        """Remember a consumed round for late-issued covered operations."""
        self.consumed.append(entry)

    def lookup_consumed(self, op_id: OpId) -> Optional[ConsumedRound]:
        """The first consumed round covering ``op_id``, if any.

        Covering points increase strictly with the round number, so the
        first (oldest) retained entry with ``covers >= op_id`` is the
        round every replica serves this operation from.
        """
        for entry in self.consumed:
            if entry.covers >= op_id:
                return entry
        return None

    def prune_consumed(self, min_request_index: int) -> None:
        """Drop retained rounds no not-yet-issued operation can need:
        once every request below ``min_request_index`` has finished, all
        operations with ids below ``(min_request_index, 0)`` have been
        issued, and later operations have later ids."""
        while self.consumed and self.consumed[0].covers < (min_request_index, 0):
            self.consumed.popleft()

    # ------------------------------------------------------------------

    def abort_pending(self, reason: str) -> bool:
        """Fail every blocked operation and orphan the waiter.

        Returns True if anything was aborted.  The orphaned waiter event
        is never triggered; subsequent messages land in the buffer
        without waking anyone until the next operation installs a fresh
        waiter.
        """
        aborted = False
        legacy, self._pending = self._pending, None
        self._waiter = None
        if legacy is not None:
            self._fail_result(legacy.result, legacy.round_number, reason)
            aborted = True
        round_, self.in_flight = self.in_flight, None
        parked, self.parked = self.parked, []
        for op in parked:
            number = round_.round_number if round_ else self.my_round_number + 1
            self._fail_result(op.result, number, reason)
            aborted = True
        return aborted

    def _fail_result(self, result: Event, round_number: int, reason: str) -> None:
        if result.triggered:
            return
        result.fail(
            TimeServiceError(
                f"clock operation round {round_number} on "
                f"thread {self.my_thread_id!r} aborted: {reason}"
            )
        )
        # A deliberate abort, not a bug: don't let the scheduler
        # re-raise if the waiting process died before observing it.
        result._fail_silently = True

    def drop_through(self, round_number: int) -> int:
        """Discard buffered messages for rounds <= ``round_number``
        (applied when a checkpoint fast-forwards this thread past them).

        Returns how many were dropped.
        """
        before = len(self.my_input_buffer)
        self.my_input_buffer = deque(
            m for m in self.my_input_buffer if m.round_number > round_number
        )
        return before - len(self.my_input_buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CCSHandler {self.my_thread_id} round={self.my_round_number} "
            f"buffered={len(self.my_input_buffer)} parked={len(self.parked)}>"
        )
