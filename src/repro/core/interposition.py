"""Clock-call interposition: the library-interpositioning stand-in.

The paper's implementation captures clock-related system calls with
library interpositioning and assigns each call a unique type identifier
so the consistent clock synchronization algorithm can recognise and
distinguish them (Section 4.1: "most operating systems offer more than
one system call to access the physical hardware clock, such as
gettimeofday(), time() and ftime()"; "each CCS message includes an
additional field for this purpose").

Here the equivalent is a dispatch table: application code calls
``ctx.gettimeofday()`` / ``ctx.time()`` / ``ctx.ftime()``, the context
routes to the replica's time source with the call *name*, and this
module supplies the type id and result granularity for each call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import TimeServiceError
from ..sim.clock import ClockValue


@dataclass(frozen=True)
class ClockCall:
    """One interposable clock-related system call."""

    name: str
    type_id: int
    granularity_us: int

    def quantize(self, micros: int) -> int:
        """Truncate a reading to this call's granularity, as the real
        system call would (``time()`` returns whole seconds, ``ftime()``
        milliseconds, ``gettimeofday()`` microseconds)."""
        return micros - (micros % self.granularity_us)

    def quantize_value(self, value: ClockValue) -> ClockValue:
        return ClockValue(self.quantize(value.micros))


#: The interposed system calls, keyed by name.
CLOCK_CALLS: Dict[str, ClockCall] = {
    "gettimeofday": ClockCall("gettimeofday", 1, 1),
    "ftime": ClockCall("ftime", 2, 1_000),
    "time": ClockCall("time", 3, 1_000_000),
}

#: Reverse lookup by wire type id (CCS messages carry the id, not the name).
CLOCK_CALLS_BY_ID: Dict[int, ClockCall] = {
    call.type_id: call for call in CLOCK_CALLS.values()
}


def resolve_call(name: str) -> ClockCall:
    """Look up an interposed call by name; unknown names are a
    programming error in the application."""
    try:
        return CLOCK_CALLS[name]
    except KeyError:
        raise TimeServiceError(
            f"unknown clock-related call {name!r}; interposable calls are "
            f"{sorted(CLOCK_CALLS)}"
        ) from None
