"""CCS (Consistent Clock Synchronization) message payloads.

A CCS message travels in an :class:`~repro.replication.envelope.Envelope`
whose header carries the common fault-tolerant protocol fields; per the
paper (Section 3.1) the envelope's ``msg_seq_num`` holds the CCS round
number, and the payload holds the sending thread identifier and the
local clock value being proposed for the group clock, plus the clock
call type identifier (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CCSMessage:
    """Payload of one Consistent Clock Synchronization message."""

    #: Identifier of the sending logical thread; CCS messages are matched
    #: to the handler of the thread performing the same logical operation.
    thread_id: str
    #: The CCS round number (duplicated from the envelope header for
    #: self-containedness).
    round_number: int
    #: The local logical clock value proposed for the group clock:
    #: physical hardware clock + the sender's clock offset, microseconds.
    proposed_micros: int
    #: Which interposed call started the round (gettimeofday/time/ftime).
    call_type_id: int
    #: True for the special round run during state transfer (Section 3.2).
    special: bool = False

    def wire_size(self) -> int:
        return 40

    def __str__(self) -> str:
        return (
            f"CCS[{self.thread_id} r{self.round_number} "
            f"propose={self.proposed_micros}us call={self.call_type_id}"
            f"{' special' if self.special else ''}]"
        )
