"""CCS (Consistent Clock Synchronization) message payloads.

A CCS message travels in an :class:`~repro.replication.envelope.Envelope`
whose header carries the common fault-tolerant protocol fields; per the
paper (Section 3.1) the envelope's ``msg_seq_num`` holds the CCS round
number, and the payload holds the sending thread identifier and the
local clock value being proposed for the group clock, plus the clock
call type identifier (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: A coalesced clock-operation identifier: ``(request_index, read_seq)``.
#: Replica-independent by construction — the request index comes from the
#: total order and the read sequence from the handler's program order —
#: and totally ordered by lexicographic comparison.
OpId = Tuple[int, int]


@dataclass(frozen=True)
class CCSMessage:
    """Payload of one Consistent Clock Synchronization message."""

    #: Identifier of the sending logical thread; CCS messages are matched
    #: to the handler of the thread performing the same logical operation.
    thread_id: str
    #: The CCS round number (duplicated from the envelope header for
    #: self-containedness).
    round_number: int
    #: The local logical clock value proposed for the group clock:
    #: physical hardware clock + the sender's clock offset, microseconds.
    proposed_micros: int
    #: Which interposed call started the round (gettimeofday/time/ftime).
    call_type_id: int
    #: True for the special round run during state transfer (Section 3.2).
    special: bool = False
    #: Coalescing (round amortization): the highest operation id this
    #: round serves — every operation with id <= ``(covers_req,
    #: covers_seq)`` adopts the round's group-clock value.  Because the
    #: covering point rides *in* the message that wins the round, batch
    #: membership is agreed across replicas, not a local timing accident.
    #: ``(0, 0)`` marks a per-operation (uncoalesced) round.
    covers_req: int = 0
    covers_seq: int = 0

    @property
    def covers(self) -> Optional[OpId]:
        """The covering operation id, or None for a per-op round."""
        if self.covers_req == 0 and self.covers_seq == 0:
            return None
        return (self.covers_req, self.covers_seq)

    def wire_size(self) -> int:
        return 40

    def __str__(self) -> str:
        covering = (
            f" covers={self.covers_req}.{self.covers_seq}"
            if self.covers is not None else ""
        )
        return (
            f"CCS[{self.thread_id} r{self.round_number} "
            f"propose={self.proposed_micros}us call={self.call_type_id}"
            f"{covering}{' special' if self.special else ''}]"
        )
