"""Per-replica group-clock state: the clock offset and monotonic floor.

Implements the arithmetic of the consistent clock synchronization
algorithm (paper Figure 2):

* ``my_clock_offset`` — offset of the group clock from this replica's
  physical hardware clock, recomputed once per round as
  ``group_clock_value − my_physical_clock_val`` (line 7).
* proposals — ``my_local_clock_val = my_physical_clock_val +
  my_clock_offset`` (line 4), optionally adjusted by a drift-compensation
  strategy (Section 3.3) and floored so the group clock is *strictly*
  monotonically increasing even across sub-microsecond rounds and
  cross-group causal dependencies (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class GroupClockState:
    """The offset-tracking state of one replica's time service."""

    #: my_clock_offset: group clock minus local physical clock (us).
    offset_us: int = 0
    #: The last group clock value decided (replica-independent).
    last_group_us: Optional[int] = None
    #: Causal floor from other groups' piggybacked timestamps (Section 5).
    causal_floor_us: Optional[int] = None
    #: Highest value served by the drift-bounded read fast path.  Purely
    #: local (never transferred): it keeps this replica's *own* proposals
    #: and fast reads strictly above everything it already handed out.
    fast_floor_us: Optional[int] = None
    #: (round-independent) history for the evaluation harness:
    #: [(group_value_us, physical_us, offset_us)]
    history: List[Tuple[int, int, int]] = field(default_factory=list)

    # ------------------------------------------------------------------

    def propose(self, physical_us: int) -> int:
        """Compute the local logical clock value to propose for the group
        clock (Figure 2, line 4), with the strict-monotonicity floor."""
        return self.clamp_to_floor(physical_us + self.offset_us)

    def clamp_to_floor(self, proposal_us: int) -> int:
        """Enforce the strict-monotonicity and causal floors on a
        proposal.  Applied both to the raw proposal and again after any
        drift-compensation adjustment (an aggressive steering reference
        must never pull a winning proposal below the last group value)."""
        proposal = proposal_us
        if self.last_group_us is not None and proposal <= self.last_group_us:
            proposal = self.last_group_us + 1
        if self.causal_floor_us is not None and proposal <= self.causal_floor_us:
            proposal = self.causal_floor_us + 1
        if self.fast_floor_us is not None and proposal <= self.fast_floor_us:
            proposal = self.fast_floor_us + 1
        return proposal

    def commit(self, group_us: int, physical_us: int) -> int:
        """A round decided ``group_us``; recompute the offset against the
        physical value read at the start of the round (Figure 2, line 7).

        Returns the new offset.
        """
        self.offset_us = group_us - physical_us
        self.observe_group_value(group_us)
        self.history.append((group_us, physical_us, self.offset_us))
        return self.offset_us

    def observe_group_value(self, group_us: int) -> None:
        """Track a decided group clock value without recomputing the
        offset (backups observe rounds they do not perform)."""
        if self.last_group_us is None or group_us > self.last_group_us:
            self.last_group_us = group_us

    def note_fast_value(self, value_us: int) -> None:
        """A drift-bounded fast-path read served ``value_us`` locally;
        raise the fast floor so later fast reads and our own proposals
        stay strictly above it."""
        if self.fast_floor_us is None or value_us > self.fast_floor_us:
            self.fast_floor_us = value_us

    def observe_causal_timestamp(self, timestamp_us: int) -> None:
        """Raise the causal floor from another group's timestamp
        (Section 5 / multigroup extension)."""
        if self.causal_floor_us is None or timestamp_us > self.causal_floor_us:
            self.causal_floor_us = timestamp_us

    def stabilize(self) -> None:
        """Self-stabilization repair: drop every monotonicity floor.

        Called by the Byzantine-mode recovery path when the floors are
        provably implausible (they sit far above a freshly agreed group
        value, so they came from corrupted state, not from real rounds).
        The next commit re-derives ``offset_us`` and re-anchors every
        floor from the agreed value; ``history`` is untouched — it is
        the audit trail the invariant oracle re-derives offsets from.
        """
        self.last_group_us = None
        self.causal_floor_us = None
        self.fast_floor_us = None

    # -- reporting ---------------------------------------------------------

    @property
    def rounds_committed(self) -> int:
        return len(self.history)

    def offset_series(self) -> List[int]:
        """Offsets after each committed round (Figure 6(b))."""
        return [offset for _, _, offset in self.history]
