"""The consistent time service — the paper's contribution (S10-S11, S16).

Public surface: :class:`ConsistentTimeService` (plug into a replica as
its time source), the drift-compensation strategies of Section 3.3, the
clock-call interposition table, and the Section-5 multigroup causal
timestamp helpers.
"""

from .ccs_handler import CCSHandler, PendingRound
from .drift import (
    AlignedReferenceSteering,
    DriftCompensation,
    GradientSteering,
    MeanDelayCompensation,
    NoCompensation,
    ReferenceSteering,
)
from .group_clock import GroupClockState
from .interposition import CLOCK_CALLS, CLOCK_CALLS_BY_ID, ClockCall, resolve_call
from .messages import CCSMessage
from .multigroup import GroupClockStamp, observe_incoming, stamp_outgoing
from .recovery import TimeTransferState
from .time_service import (
    MODE_ACTIVE,
    MODE_PRIMARY,
    ConsistentTimeService,
    CTSStats,
)

__all__ = [
    "AlignedReferenceSteering",
    "CCSHandler",
    "CCSMessage",
    "CLOCK_CALLS",
    "CLOCK_CALLS_BY_ID",
    "CTSStats",
    "ClockCall",
    "ConsistentTimeService",
    "DriftCompensation",
    "GradientSteering",
    "GroupClockStamp",
    "GroupClockState",
    "MODE_ACTIVE",
    "MODE_PRIMARY",
    "MeanDelayCompensation",
    "NoCompensation",
    "PendingRound",
    "ReferenceSteering",
    "TimeTransferState",
    "observe_incoming",
    "resolve_call",
    "stamp_outgoing",
]
