"""The Consistent Time Service (the paper's contribution, Section 3).

Every clock-related operation starts a *round* of the consistent clock
synchronization algorithm:

1. The replica reads its physical hardware clock and computes the local
   logical clock value ``physical + my_clock_offset`` (Figure 2, 3-4).
2. It multicasts the value in a CCS message via Totem's reliable ordered
   multicast — *unless* a CCS message for the round has already arrived
   (Figure 2, 11-13); queued-but-untransmitted CCS messages are also
   withdrawn when the winner's message is ordered first (the "effective
   duplicate detection mechanism" of Section 4.3).
3. The first CCS message ordered for the round wins: its value is the
   group clock value at **every** replica; its sender is the round's
   *synchronizer*.
4. Each replica recomputes ``my_clock_offset = group − physical``
   (Figure 2, 7) and returns the group value to the application.

The service supports the three replication styles: in ``active`` mode
every replica competes to be the synchronizer; in ``primary`` mode
(passive/semi-active) only the primary sends CCS messages, and a backup
that takes over first checks whether a CCS message for its round has
already been delivered (Section 3.3) before sending its own.

Integration of new clocks (Section 3.2) is implemented through
``begin_recovery``/``finish_recovery`` plus the transfer-state snapshot:
a recovering replica adopts the group clock from delivered CCS messages
(deriving its own offset from its own physical clock) and inherits the
replica-independent round counters from the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import TimeServiceError
from .. import obs, trace
from ..replication.envelope import Envelope, MsgType, make_envelope
from ..replication.timesource import TimeSource
from ..sim.clock import ClockValue
from ..sim.kernel import Event
from .ccs_handler import CCSHandler, PendingRound
from .drift import DriftCompensation, NoCompensation
from .group_clock import GroupClockState
from .interposition import ClockCall, resolve_call
from .messages import CCSMessage
from .recovery import TimeTransferState

if TYPE_CHECKING:  # pragma: no cover
    from ..replication.group import GroupView
    from ..replication.replica import Replica

#: Modes: every replica competes, or only the primary proposes.
MODE_ACTIVE = "active"
MODE_PRIMARY = "primary"

# -- observability instruments (zero-cost while the registry is off) ----
M_ROUNDS = obs.REGISTRY.counter(
    "ccs_rounds_total", "CCS rounds completed")
M_SENT = obs.REGISTRY.counter(
    "ccs_sent_total", "CCS messages handed to Totem for transmission")
M_SUPPRESSED = obs.REGISTRY.counter(
    "ccs_suppressed_total",
    "CCS messages withdrawn before transmission (duplicate suppression)")
M_DUPLICATES = obs.REGISTRY.counter(
    "ccs_duplicates_total",
    "received CCS messages discarded as round duplicates")
M_FROM_BUFFER = obs.REGISTRY.counter(
    "ccs_rounds_from_buffer_total",
    "rounds satisfied from the input buffer without constructing a CCS message")
M_ADOPTIONS = obs.REGISTRY.counter(
    "ccs_recovery_adoptions_total",
    "group-clock adoptions performed while recovering")
M_ROUND_LATENCY = obs.REGISTRY.histogram(
    "cts_round_latency_us",
    "CCS round latency: interposition to group-value delivery", unit="us",
    buckets=(50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600,
             51_200))
M_OFFSET = obs.REGISTRY.gauge(
    "cts_clock_offset_us", "my_clock_offset after the last committed round",
    unit="us")
M_ABORTS = obs.REGISTRY.counter(
    "ccs_rounds_aborted_total",
    "blocked clock operations aborted (abandoned protocol positions)")


@dataclass
class CTSStats:
    """Counters the evaluation harness reads (Section 4.3)."""

    rounds_completed: int = 0
    #: CCS messages handed to Totem for transmission.
    ccs_sent: int = 0
    #: CCS messages withdrawn before transmission (winner ordered first).
    ccs_suppressed: int = 0
    #: Rounds satisfied from the input buffer without constructing a
    #: CCS message at all (Figure 2, line 11 short-circuit).
    rounds_from_buffer: int = 0
    #: Received CCS messages discarded as duplicates (Figure 3, line 10).
    duplicates_discarded: int = 0
    #: Offset adoptions performed while recovering (special rounds).
    recovery_adoptions: int = 0

    @property
    def ccs_transmitted(self) -> int:
        """CCS messages that actually reached the wire."""
        return self.ccs_sent - self.ccs_suppressed


class ConsistentTimeService(TimeSource):
    """The group clock provider for one replica."""

    name = "consistent-time-service"

    def __init__(
        self,
        replica: "Replica",
        *,
        mode: str = MODE_ACTIVE,
        drift: Optional[DriftCompensation] = None,
        suppress_pending: bool = True,
    ):
        if mode not in (MODE_ACTIVE, MODE_PRIMARY):
            raise TimeServiceError(f"unknown mode {mode!r}")
        self.replica = replica
        self.node = replica.node
        self.node_id = replica.node_id
        self.sim = replica.sim
        self.mode = mode
        self.drift = drift or NoCompensation()
        self.suppress_pending = suppress_pending

        self.clock_state = GroupClockState()
        self.stats = CTSStats()
        #: CCS handler objects, one per logical thread (Section 3.1).
        self._handlers: Dict[str, CCSHandler] = {}
        #: Messages for threads whose handler does not exist yet.
        self.my_common_input_buffer: List[CCSMessage] = []
        #: Duplicate detection: thread -> highest round accepted.
        self._accepted: Dict[str, int] = {}
        #: Round counters inherited via state transfer.
        self._initial_rounds: Dict[str, int] = {}
        self._recovering = False
        #: (thread_id, round, winner_node) per accepted round — the
        #: synchronizer history the Figure 6 analysis plots.
        self.winners: List[Tuple[str, int, str]] = []
        #: (sim_time, thread_id, call, ClockValue) values returned to the app.
        self.readings: List[Tuple[float, str, str, ClockValue]] = []

    # ------------------------------------------------------------------
    # TimeSource interface: one clock-related operation
    # ------------------------------------------------------------------

    def read(self, thread_id: str, call_name: str = "gettimeofday") -> Event:
        call = resolve_call(call_name)
        handler = self._handler(thread_id)
        # Figure 2, lines 3-4: physical reading and local logical value.
        physical_us = self.node.read_clock_us()
        proposal_us = self.clock_state.clamp_to_floor(
            self.drift.adjust_proposal(self.clock_state.propose(physical_us))
        )
        # Figure 2, line 9: new round; line 10: drain the common buffer.
        round_number = handler.next_round()
        self._drain_common(handler)

        if trace.TRACER.enabled:
            trace.emit(
                "round.start", self.node_id, thread=thread_id,
                round=round_number, proposal_us=proposal_us, call=call.name,
                buffered=bool(handler.my_input_buffer), t=self.sim.now,
            )
        result = Event(self.sim)
        handler.pending = PendingRound(
            round_number=round_number,
            proposal_us=proposal_us,
            call_type_id=call.type_id,
            physical_us=physical_us,
            sent=False,
            result=result,
            started_at=self.sim.now,
        )
        if handler.my_input_buffer:
            # The round's winner was ordered before we even got here: no
            # CCS message is constructed at all (line 11 short-circuit).
            self.stats.rounds_from_buffer += 1
            if obs.REGISTRY.enabled:
                M_FROM_BUFFER.inc(node=self.node_id)
            self._complete(handler, call)
        else:
            if self._may_send():
                self._send_ccs(handler)
            waiter = handler.wait_for_message()
            waiter._add_callback(lambda _ev: self._complete(handler, call))
        return result

    def _complete(self, handler: CCSHandler, call: ClockCall) -> None:
        """Figure 2, lines 15-17 and 7-8: consume the winner, recompute
        the offset, hand the group clock value to the application."""
        pending = handler.pending
        if pending is None:
            raise TimeServiceError("completion without a pending round")
        msg = handler.pop_message()
        if msg.round_number != pending.round_number:
            raise TimeServiceError(
                f"thread {handler.my_thread_id!r}: buffered CCS round "
                f"{msg.round_number} does not match operation round "
                f"{pending.round_number}"
            )
        handler.pending = None
        handler.rounds_completed += 1
        group_us = msg.proposed_micros
        self.clock_state.commit(group_us, pending.physical_us)
        self.clock_state.offset_us = self.drift.adjust_offset(
            self.clock_state.offset_us
        )
        self.stats.rounds_completed += 1
        value = ClockValue(call.quantize(group_us))
        self.readings.append((self.sim.now, handler.my_thread_id, call.name, value))
        if obs.REGISTRY.enabled:
            M_ROUNDS.inc(node=self.node_id)
            M_ROUND_LATENCY.observe(
                (self.sim.now - pending.started_at) * 1e6, node=self.node_id)
            M_OFFSET.set(self.clock_state.offset_us, node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "round.complete", self.node_id,
                thread=handler.my_thread_id, round=pending.round_number,
                group_us=group_us, offset_us=self.clock_state.offset_us,
                latency_us=(self.sim.now - pending.started_at) * 1e6,
                t=self.sim.now,
            )
        if not pending.result.triggered:
            pending.result.succeed(value)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _may_send(self) -> bool:
        if self._recovering:
            return False  # a recovering replica never competes (§3.2)
        if self.mode == MODE_ACTIVE:
            return True
        return self.replica.endpoint.is_primary

    def _send_ccs(self, handler: CCSHandler) -> None:
        pending = handler.pending
        pending.sent = True
        self.stats.ccs_sent += 1
        if obs.REGISTRY.enabled:
            M_SENT.inc(node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "round.sent", self.node_id, thread=handler.my_thread_id,
                round=pending.round_number, proposal_us=pending.proposal_us,
                t=self.sim.now,
            )
        self.replica.endpoint.mcast(
            make_envelope(
                MsgType.CCS,
                self.replica.group,
                self.replica.group,
                0,
                pending.round_number,
                self.node_id,
                body=CCSMessage(
                    thread_id=handler.my_thread_id,
                    round_number=pending.round_number,
                    proposed_micros=pending.proposal_us,
                    call_type_id=pending.call_type_id,
                ),
            )
        )

    # ------------------------------------------------------------------
    # Reception (Figure 3)
    # ------------------------------------------------------------------

    def handle_ccs(self, envelope: Envelope) -> None:
        msg = envelope.body
        if not isinstance(msg, CCSMessage):
            return  # some other time source's control traffic
        thread_id = msg.thread_id
        watermark = self._accepted.get(
            thread_id, self._initial_rounds.get(thread_id, 0)
        )
        if msg.round_number <= watermark:
            self.stats.duplicates_discarded += 1
            if obs.REGISTRY.enabled:
                M_DUPLICATES.inc(node=self.node_id)
            return
        self._accepted[thread_id] = msg.round_number
        self.winners.append((thread_id, msg.round_number, envelope.sender))
        self.clock_state.observe_group_value(msg.proposed_micros)
        if trace.TRACER.enabled:
            trace.emit(
                "round.won", self.node_id, thread=thread_id,
                round=msg.round_number, winner=envelope.sender,
                group_us=msg.proposed_micros, t=self.sim.now,
            )

        if self._recovering:
            # Integration of a new clock (Section 3.2): adopt the group
            # clock immediately, deriving our own offset from our own
            # physical clock; keep the message for post-recovery replay.
            physical_us = self.node.read_clock_us()
            self.clock_state.commit(msg.proposed_micros, physical_us)
            self.stats.recovery_adoptions += 1
            if obs.REGISTRY.enabled:
                M_ADOPTIONS.inc(node=self.node_id)
            if trace.TRACER.enabled:
                trace.emit(
                    "round.adopted", self.node_id, thread=thread_id,
                    round=msg.round_number, offset_us=self.clock_state.offset_us,
                    t=self.sim.now,
                )
            self.my_common_input_buffer.append(msg)
            return

        self._try_suppress(envelope, msg)

        handler = self._handlers.get(thread_id)
        if handler is not None:
            handler.recv_CCS_msg(msg)
        else:
            self.my_common_input_buffer.append(msg)

    def handle_raw_ccs(self, envelope: Envelope) -> None:
        """Early duplicate suppression (Section 4.3).

        A CCS message observed on the wire already carries a Totem
        sequence number; a message of ours still sitting in the send
        queue would be sequenced *after* it and lose the round with
        certainty — withdraw it without waiting for ordered delivery.
        """
        msg = envelope.body
        if isinstance(msg, CCSMessage):
            self._try_suppress(envelope, msg)

    def _try_suppress(self, envelope: Envelope, msg: CCSMessage) -> None:
        """Withdraw our queued-but-untransmitted CCS message for a round
        another replica's proposal has already beaten."""
        if not self.suppress_pending or envelope.sender == self.node_id:
            return
        handler = self._handlers.get(msg.thread_id)
        if (
            handler is not None
            and handler.pending is not None
            and handler.pending.sent
            and handler.pending.round_number == msg.round_number
        ):
            cancelled = self.replica.endpoint.cancel_pending(
                self._matches_my_ccs(msg.thread_id, msg.round_number)
            )
            self.stats.ccs_suppressed += cancelled
            if cancelled and obs.REGISTRY.enabled:
                M_SUPPRESSED.inc(cancelled, node=self.node_id)
            if cancelled and trace.TRACER.enabled:
                trace.emit(
                    "round.suppressed", self.node_id,
                    thread=msg.thread_id, round=msg.round_number,
                    beaten_by=envelope.sender, t=self.sim.now,
                )

    def _matches_my_ccs(self, thread_id: str, round_number: int) -> Callable:
        def predicate(envelope: Envelope) -> bool:
            body = envelope.body
            return (
                envelope.header.msg_type is MsgType.CCS
                and envelope.sender == self.node_id
                and isinstance(body, CCSMessage)
                and body.thread_id == thread_id
                and body.round_number == round_number
            )

        return predicate

    # ------------------------------------------------------------------
    # Handlers and buffers
    # ------------------------------------------------------------------

    def _handler(self, thread_id: str) -> CCSHandler:
        if thread_id not in self._handlers:
            self._handlers[thread_id] = CCSHandler(
                self.sim, thread_id, self._initial_rounds.get(thread_id, 0)
            )
        return self._handlers[thread_id]

    def _drain_common(self, handler: CCSHandler) -> None:
        """Figure 2, line 10: move matching messages from the common
        input buffer to the thread's handler."""
        if not self.my_common_input_buffer:
            return
        matching = [
            m for m in self.my_common_input_buffer
            if m.thread_id == handler.my_thread_id
        ]
        if not matching:
            return
        self.my_common_input_buffer = [
            m for m in self.my_common_input_buffer
            if m.thread_id != handler.my_thread_id
        ]
        for msg in matching:
            if msg.round_number > handler.my_round_number - 1:
                handler.recv_CCS_msg(msg)

    # ------------------------------------------------------------------
    # Views and primary failover (Section 3.3)
    # ------------------------------------------------------------------

    def on_view_change(self, view: "GroupView") -> None:
        if self.mode != MODE_PRIMARY or view.primary != self.node_id:
            return
        # We just became (or confirmed ourselves as) primary: any round
        # still blocked with no CCS message received must now be driven
        # by us — unless the old primary's message already arrived.
        for handler in self._handlers.values():
            pending = handler.pending
            if (
                pending is not None
                and not pending.sent
                and not handler.my_input_buffer
            ):
                self._send_ccs(handler)

    # ------------------------------------------------------------------
    # State transfer (Section 3.2)
    # ------------------------------------------------------------------

    def abort_in_flight(self) -> None:
        for handler in self._handlers.values():
            aborted = handler.abort_pending(
                "replica abandoned its protocol position"
            )
            if aborted and obs.REGISTRY.enabled:
                M_ABORTS.inc(node=self.node_id)

    def begin_recovery(self) -> None:
        self._recovering = True

    def finish_recovery(self) -> None:
        self._recovering = False

    def get_transfer_state(self) -> TimeTransferState:
        state = TimeTransferState(
            last_group_us=self.clock_state.last_group_us,
            causal_floor_us=self.clock_state.causal_floor_us,
        )
        for thread_id, handler in self._handlers.items():
            state.rounds[thread_id] = handler.my_round_number
            if handler.my_input_buffer:
                state.buffered[thread_id] = list(handler.my_input_buffer)
        for msg in self.my_common_input_buffer:
            state.rounds.setdefault(
                msg.thread_id, self._initial_rounds.get(msg.thread_id, 0)
            )
            state.buffered.setdefault(msg.thread_id, []).append(msg)
        for thread_id, watermark in self._accepted.items():
            state.accepted[thread_id] = watermark
        return state

    def set_transfer_state(self, state: object) -> None:
        if not isinstance(state, TimeTransferState):
            return
        self._initial_rounds = dict(state.rounds)
        # Merge the transferred buffers with what we observed live while
        # recovering: transferred messages are authoritative up to their
        # horizon; our own observations extend beyond it.  A replica that
        # *re*-transfers (rejoining the primary component after a
        # partition) already has handlers; their buffered messages — which
        # may come from the abandoned minority fork — join the merge and
        # are discarded below the transferred horizon, and their round
        # counters fast-forward to the transferred consumption point.
        local: Dict[str, List[CCSMessage]] = {}
        for msg in self.my_common_input_buffer:
            local.setdefault(msg.thread_id, []).append(msg)
        for thread_id, handler in self._handlers.items():
            for msg in handler.my_input_buffer:
                local.setdefault(thread_id, []).append(msg)
            handler.my_input_buffer.clear()
            transferred_round = state.rounds.get(thread_id)
            if transferred_round is not None:
                handler.my_round_number = max(
                    handler.my_round_number, transferred_round
                )
        merged: List[CCSMessage] = []
        threads = set(state.rounds) | set(state.buffered) | set(local) | set(
            state.accepted
        )
        for thread_id in sorted(threads):
            transferred = list(state.buffered.get(thread_id, []))
            horizon = max(
                [m.round_number for m in transferred]
                + [state.rounds.get(thread_id, 0), state.accepted.get(thread_id, 0)]
            )
            beyond = [
                m for m in local.get(thread_id, []) if m.round_number > horizon
            ]
            merged.extend(transferred)
            merged.extend(beyond)
            highest = max([horizon] + [m.round_number for m in beyond])
            self._accepted[thread_id] = max(
                self._accepted.get(thread_id, 0), highest
            )
        self.my_common_input_buffer = merged
        if state.last_group_us is not None:
            self.clock_state.observe_group_value(state.last_group_us)
        if state.causal_floor_us is not None:
            self.clock_state.observe_causal_timestamp(state.causal_floor_us)

    def fast_forward(self, state: object) -> None:
        """Apply a passive-replication checkpoint's time state: jump the
        consumption point past rounds the checkpointed app state already
        reflects, dropping the now-stale buffered messages."""
        if not isinstance(state, TimeTransferState):
            return
        for thread_id, round_number in state.rounds.items():
            self._initial_rounds[thread_id] = max(
                self._initial_rounds.get(thread_id, 0), round_number
            )
            handler = self._handlers.get(thread_id)
            if handler is not None:
                handler.my_round_number = max(
                    handler.my_round_number, round_number
                )
                handler.drop_through(round_number)
        self.my_common_input_buffer = [
            m
            for m in self.my_common_input_buffer
            if m.round_number > state.rounds.get(m.thread_id, 0)
        ]
        if state.last_group_us is not None:
            self.clock_state.observe_group_value(state.last_group_us)

    # ------------------------------------------------------------------
    # Multigroup causal timestamps (Section 5 extension)
    # ------------------------------------------------------------------

    def current_timestamp(self) -> int:
        """The latest group clock value, for piggybacking on messages
        multicast to other groups."""
        return self.clock_state.last_group_us or 0

    def observe_timestamp(self, timestamp_us: int) -> None:
        """A message from another group carried this group-clock
        timestamp; future readings here must exceed it (causality)."""
        self.clock_state.observe_causal_timestamp(timestamp_us)
