"""The Consistent Time Service (the paper's contribution, Section 3).

Every clock-related operation starts a *round* of the consistent clock
synchronization algorithm:

1. The replica reads its physical hardware clock and computes the local
   logical clock value ``physical + my_clock_offset`` (Figure 2, 3-4).
2. It multicasts the value in a CCS message via Totem's reliable ordered
   multicast — *unless* a CCS message for the round has already arrived
   (Figure 2, 11-13); queued-but-untransmitted CCS messages are also
   withdrawn when the winner's message is ordered first (the "effective
   duplicate detection mechanism" of Section 4.3).
3. The first CCS message ordered for the round wins: its value is the
   group clock value at **every** replica; its sender is the round's
   *synchronizer*.
4. Each replica recomputes ``my_clock_offset = group − physical``
   (Figure 2, 7) and returns the group value to the application.

The service supports the three replication styles: in ``active`` mode
every replica competes to be the synchronizer; in ``primary`` mode
(passive/semi-active) only the primary sends CCS messages, and a backup
that takes over first checks whether a CCS message for its round has
already been delivered (Section 3.3) before sending its own.

Integration of new clocks (Section 3.2) is implemented through
``begin_recovery``/``finish_recovery`` plus the transfer-state snapshot:
a recovering replica adopts the group clock from delivered CCS messages
(deriving its own offset from its own physical clock) and inherits the
replica-independent round counters from the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import TimeServiceError
from .. import obs, trace
from ..replication.envelope import Envelope, MsgType, make_envelope
from ..replication.timesource import TimeSource
from ..sim.clock import ClockValue
from ..sim.kernel import Event
from .ccs_handler import (
    CCSHandler,
    ConsumedRound,
    PendingOp,
    PendingRound,
    RoundInFlight,
)
from .drift import DriftBound, DriftCompensation, NoCompensation
from .group_clock import GroupClockState
from .interposition import ClockCall, resolve_call
from .messages import CCSMessage, OpId
from .recovery import TimeTransferState

if TYPE_CHECKING:  # pragma: no cover
    from ..replication.group import GroupView
    from ..replication.replica import Replica

#: Modes: every replica competes, or only the primary proposes.
MODE_ACTIVE = "active"
MODE_PRIMARY = "primary"

# -- observability instruments (zero-cost while the registry is off) ----
M_ROUNDS = obs.REGISTRY.counter(
    "ccs_rounds_total", "CCS rounds completed")
M_SENT = obs.REGISTRY.counter(
    "ccs_sent_total", "CCS messages handed to Totem for transmission")
M_SUPPRESSED = obs.REGISTRY.counter(
    "ccs_suppressed_total",
    "CCS messages withdrawn before transmission (duplicate suppression)")
M_DUPLICATES = obs.REGISTRY.counter(
    "ccs_duplicates_total",
    "received CCS messages discarded as round duplicates")
M_FROM_BUFFER = obs.REGISTRY.counter(
    "ccs_rounds_from_buffer_total",
    "rounds satisfied from the input buffer without constructing a CCS message")
M_ADOPTIONS = obs.REGISTRY.counter(
    "ccs_recovery_adoptions_total",
    "group-clock adoptions performed while recovering")
M_ROUND_LATENCY = obs.REGISTRY.histogram(
    "cts_round_latency_us",
    "CCS round latency: interposition to group-value delivery", unit="us",
    buckets=(50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600,
             51_200))
M_OFFSET = obs.REGISTRY.gauge(
    "cts_clock_offset_us", "my_clock_offset after the last committed round",
    unit="us")
M_ABORTS = obs.REGISTRY.counter(
    "ccs_rounds_aborted_total",
    "blocked clock operations aborted (abandoned protocol positions)")
M_OPS = obs.REGISTRY.counter(
    "cts_ops_total", "clock operations completed")
M_COALESCED = obs.REGISTRY.counter(
    "ccs_coalesced_ops_total",
    "operations served by a round they did not initiate (round amortization)")
M_BATCH = obs.REGISTRY.histogram(
    "ccs_round_batch_size", "operations served per consumed CCS round",
    unit="ops", buckets=(1, 2, 4, 8, 16, 32, 64, 128))
M_FAST_HITS = obs.REGISTRY.counter(
    "cts_fast_path_hits_total",
    "reads served by the drift-bounded local fast path")
M_FAST_FALLBACKS = obs.REGISTRY.counter(
    "cts_fast_path_fallbacks_total",
    "fast-path attempts that fell back to a full CCS round "
    "(staleness or drift bound exceeded)")
M_SKEW = obs.REGISTRY.gauge(
    "cts_estimated_skew_us",
    "estimated inter-replica skew at the last round: this replica's "
    "proposal minus the winning group value (signed)", unit="us")
M_SKEW_ABS = obs.REGISTRY.histogram(
    "cts_estimated_skew_abs_us",
    "absolute estimated inter-replica skew per round", unit="us",
    buckets=(10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000))
M_DRIFT_ERROR = obs.REGISTRY.gauge(
    "cts_drift_bound_error_us",
    "certified worst-case drift error of the last fast-path read",
    unit="us")
M_FAST_STALENESS = obs.REGISTRY.histogram(
    "cts_fast_path_staleness_us",
    "staleness of fast-path reads (physical-clock time since the last "
    "committed round)", unit="us",
    buckets=(50, 100, 250, 500, 1_000, 2_000, 4_000, 8_000))
M_STALENESS_BUDGET = obs.REGISTRY.gauge(
    "cts_max_staleness_us",
    "configured fast-path staleness budget", unit="us")
M_WINNERS_REJECTED = obs.REGISTRY.counter(
    "ccs_winners_rejected_total",
    "ordered CCS winners rejected by the Byzantine sanity filter, "
    "labelled by reason (too-high, too-low)")
M_STABILIZATIONS = obs.REGISTRY.counter(
    "cts_stabilizations_total",
    "self-stabilization repairs of scrambled local state, labelled by "
    "what was repaired (round-counter, watermark, floors, fast-floor)")


@dataclass
class CTSStats:
    """Counters the evaluation harness reads (Section 4.3)."""

    rounds_completed: int = 0
    #: CCS messages handed to Totem for transmission.
    ccs_sent: int = 0
    #: CCS messages withdrawn before transmission (winner ordered first).
    ccs_suppressed: int = 0
    #: Rounds satisfied from the input buffer without constructing a
    #: CCS message at all (Figure 2, line 11 short-circuit).
    rounds_from_buffer: int = 0
    #: Received CCS messages discarded as duplicates (Figure 3, line 10).
    duplicates_discarded: int = 0
    #: Offset adoptions performed while recovering (special rounds).
    recovery_adoptions: int = 0
    #: Clock operations completed (>= rounds_completed under coalescing).
    ops_completed: int = 0
    #: Operations served by a round they did not initiate (amortization).
    ops_coalesced: int = 0
    #: Reads served by the drift-bounded local fast path.
    fast_path_hits: int = 0
    #: Fast-path attempts that fell back to a full round.
    fast_path_fallbacks: int = 0
    #: Ordered round winners rejected by the Byzantine sanity filter.
    winners_rejected: int = 0
    #: Self-stabilization repairs of scrambled local state.
    stabilizations: int = 0

    @property
    def ccs_transmitted(self) -> int:
        """CCS messages that actually reached the wire."""
        return self.ccs_sent - self.ccs_suppressed

    @property
    def ccs_per_op(self) -> float:
        """Transmitted CCS messages per completed clock operation."""
        if not self.ops_completed:
            return 0.0
        return self.ccs_transmitted / self.ops_completed


class ConsistentTimeService(TimeSource):
    """The group clock provider for one replica."""

    name = "consistent-time-service"

    def __init__(
        self,
        replica: "Replica",
        *,
        mode: str = MODE_ACTIVE,
        drift: Optional[DriftCompensation] = None,
        suppress_pending: bool = True,
        coalesce: bool = True,
        fast_path: bool = False,
        max_staleness_us: int = 2_000,
        drift_bound: Optional[DriftBound] = None,
        byzantine: bool = False,
        byz_window_us: int = 10_000,
        byz_lag_us: int = 250_000,
        stabilize_value_gap_us: int = 10_000_000,
        stabilize_round_gap: int = 10_000,
    ):
        if mode not in (MODE_ACTIVE, MODE_PRIMARY):
            raise TimeServiceError(f"unknown mode {mode!r}")
        if fast_path and not coalesce:
            raise TimeServiceError(
                "the drift-bounded fast path requires coalesced rounds "
                "(fast_path=True with coalesce=False)"
            )
        if byzantine and not coalesce:
            raise TimeServiceError(
                "byzantine mode requires coalesced rounds: a rejected "
                "proposal of ours must be recoverable by another "
                "replica's covering round (byzantine=True with "
                "coalesce=False)"
            )
        self.replica = replica
        self.node = replica.node
        self.node_id = replica.node_id
        self.sim = replica.sim
        self.mode = mode
        self.drift = drift or NoCompensation()
        self.suppress_pending = suppress_pending
        #: Round amortization: concurrent clock operations share rounds.
        self.coalesce = coalesce
        #: Serve bounded-staleness reads locally between rounds.
        self.fast_path = fast_path
        self.max_staleness_us = int(max_staleness_us)
        self.drift_bound = drift_bound or DriftBound()
        #: Byzantine mode (WALDEN-style accuracy filter + Herman-style
        #: bounded-round self-stabilization).  Ordered round winners
        #: whose value falls outside the drift-certified window are
        #: rejected; implausible local state (round counters, watermarks
        #: and floors that no real round could have produced) is repaired
        #: instead of trusted.
        self.byzantine = byzantine
        #: High-side slack of the certified window: a winner may exceed
        #: ``last_group + elapsed + drift_error`` by at most this much.
        self.byz_window_us = int(byz_window_us)
        #: Low-side slack: legitimate concurrent proposals may be ordered
        #: up to this far behind the latest committed group value.
        self.byz_lag_us = int(byz_lag_us)
        #: A floor this far above a freshly agreed value is corruption,
        #: not history — stabilize rather than poison proposals.
        self.stabilize_value_gap_us = int(stabilize_value_gap_us)
        #: A duplicate-detection watermark this far ahead of live rounds
        #: is corruption — reset it rather than discard rounds forever.
        self.stabilize_round_gap = int(stabilize_round_gap)
        #: Distinct senders whose ordered values must disagree with our
        #: certified window (by a corruption-scale gap, on the same
        #: side) before we conclude *our* anchor is the corrupted
        #: outlier and stabilize.  Two is sound for f = 1; raise it to
        #: f + 1 for larger fault budgets.
        self.stabilize_quorum = 2
        #: side ("too-high"/"too-low") -> {sender: most conservative
        #: rejected value} since the last accepted winner.
        self._reject_evidence: Dict[str, Dict[str, int]] = {
            "too-high": {}, "too-low": {}}
        #: The replica runtime pipelines request execution (overlapping
        #: clock reads) only when the time source can serve them.
        self.supports_concurrent_reads = coalesce
        #: Reads may carry a per-request session floor (``floor_us``):
        #: the reply is served strictly above it on every replica.
        self.supports_session_floor = True

        self.clock_state = GroupClockState()
        self.stats = CTSStats()
        #: CCS handler objects, one per logical thread (Section 3.1).
        self._handlers: Dict[str, CCSHandler] = {}
        #: Messages for threads whose handler does not exist yet.
        self.my_common_input_buffer: List[CCSMessage] = []
        #: Duplicate detection: thread -> highest round accepted.
        self._accepted: Dict[str, int] = {}
        #: Round counters inherited via state transfer.
        self._initial_rounds: Dict[str, int] = {}
        #: Operation-numbering points inherited via state transfer.
        self._initial_ops: Dict[str, OpId] = {}
        self._recovering = False
        #: Physical clock at the last committed round (fast-path anchor).
        self._last_commit_physical_us: Optional[int] = None
        #: (thread_id, round, winner_node) per accepted round — the
        #: synchronizer history the Figure 6 analysis plots.
        self.winners: List[Tuple[str, int, str]] = []
        #: (sim_time, thread_id, call, ClockValue) values returned to the app.
        self.readings: List[Tuple[float, str, str, ClockValue]] = []
        #: (thread_id, op_id) -> group value, for coalesced operations —
        #: replica-independent by construction; the agreement invariant
        #: the property suites check.
        self.served_ops: Dict[Tuple[str, OpId], int] = {}
        #: (sim_time, value_us, elapsed_us) per fast-path read — lets
        #: tests check the staleness bound the fast path promises.
        self.fast_served: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    # TimeSource interface: one clock-related operation
    # ------------------------------------------------------------------

    def read(
        self,
        thread_id: str,
        call_name: str = "gettimeofday",
        op_id: Optional[OpId] = None,
        fast_ok: bool = True,
        floor_us: Optional[int] = None,
    ) -> Event:
        if floor_us is not None:
            # Session guarantee: the request carries the client's
            # last-seen value, and since the request is totally ordered
            # every replica raises its causal floor before proposing or
            # fast-serving — whichever replica's reply the client takes,
            # it exceeds the floor.
            self.clock_state.observe_causal_timestamp(floor_us)
        if self.coalesce:
            return self._read_coalesced(
                thread_id, call_name, op_id, fast_ok, floor_us
            )
        call = resolve_call(call_name)
        handler = self._handler(thread_id)
        # Figure 2, lines 3-4: physical reading and local logical value.
        physical_us = self.node.read_clock_us()
        proposal_us = self.clock_state.clamp_to_floor(
            self.drift.adjust_proposal(self.clock_state.propose(physical_us))
        )
        # Figure 2, line 9: new round; line 10: drain the common buffer.
        round_number = handler.next_round()
        self._drain_common(handler)

        if trace.TRACER.enabled:
            trace.emit(
                "round.start", self.node_id, thread=thread_id,
                round=round_number, proposal_us=proposal_us, call=call.name,
                buffered=bool(handler.my_input_buffer), t=self.sim.now,
            )
        result = Event(self.sim)
        handler.pending = PendingRound(
            round_number=round_number,
            proposal_us=proposal_us,
            call_type_id=call.type_id,
            physical_us=physical_us,
            sent=False,
            result=result,
            started_at=self.sim.now,
        )
        if handler.my_input_buffer:
            # The round's winner was ordered before we even got here: no
            # CCS message is constructed at all (line 11 short-circuit).
            self.stats.rounds_from_buffer += 1
            if obs.REGISTRY.enabled:
                M_FROM_BUFFER.inc(node=self.node_id)
            self._complete(handler, call)
        else:
            if self._may_send():
                self._send_ccs(handler)
            waiter = handler.wait_for_message()
            waiter._add_callback(lambda _ev: self._complete(handler, call))
        return result

    def _complete(self, handler: CCSHandler, call: ClockCall) -> None:
        """Figure 2, lines 15-17 and 7-8: consume the winner, recompute
        the offset, hand the group clock value to the application."""
        pending = handler.pending
        if pending is None:
            raise TimeServiceError("completion without a pending round")
        msg = handler.pop_message()
        if msg.round_number != pending.round_number:
            raise TimeServiceError(
                f"thread {handler.my_thread_id!r}: buffered CCS round "
                f"{msg.round_number} does not match operation round "
                f"{pending.round_number}"
            )
        handler.pending = None
        handler.rounds_completed += 1
        group_us = msg.proposed_micros
        self.clock_state.commit(group_us, pending.physical_us)
        self.clock_state.offset_us = self.drift.adjust_offset(
            self.clock_state.offset_us
        )
        self.stats.rounds_completed += 1
        self.stats.ops_completed += 1
        value = ClockValue(call.quantize(group_us))
        self.readings.append((self.sim.now, handler.my_thread_id, call.name, value))
        if obs.REGISTRY.enabled:
            M_ROUNDS.inc(node=self.node_id)
            M_OPS.inc(node=self.node_id)
            M_ROUND_LATENCY.observe(
                (self.sim.now - pending.started_at) * 1e6, node=self.node_id)
            M_OFFSET.set(self.clock_state.offset_us, node=self.node_id)
            # Our local logical value vs the winner's: the per-round
            # estimate of this replica's skew against the group.
            skew = pending.proposal_us - group_us
            M_SKEW.set(skew, node=self.node_id)
            M_SKEW_ABS.observe(abs(skew), node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "round.complete", self.node_id,
                group=self.replica.group,
                thread=handler.my_thread_id, round=pending.round_number,
                group_us=group_us, offset_us=self.clock_state.offset_us,
                latency_us=(self.sim.now - pending.started_at) * 1e6,
                t=self.sim.now,
            )
        if not pending.result.triggered:
            pending.result.succeed(value)

    # ------------------------------------------------------------------
    # Coalesced rounds (round amortization) and the read fast path
    # ------------------------------------------------------------------

    def _read_coalesced(
        self,
        thread_id: str,
        call_name: str,
        op_id: Optional[OpId],
        fast_ok: bool = True,
        floor_us: Optional[int] = None,
    ) -> Event:
        """One clock operation under round amortization.

        The operation is identified by a replica-independent id; whatever
        round *covers* that id — per the covering point carried by the
        round's winning CCS message — serves it the round's group value,
        so concurrent operations share rounds and still agree across
        replicas.
        """
        call = resolve_call(call_name)
        handler = self._handler(thread_id)
        op_id = handler.assign_op_id(op_id)
        self._drain_common(handler)
        result = Event(self.sim)
        result._cts_read = True

        # Already covered by a consumed round (the op was issued late,
        # e.g. by a recovered replica replaying the request stream).
        entry = handler.lookup_consumed(op_id)
        if entry is not None:
            self.stats.rounds_from_buffer += 1
            if obs.REGISTRY.enabled:
                M_FROM_BUFFER.inc(node=self.node_id)
            self._serve(
                handler,
                PendingOp(op_id, call, result, self.sim.now, floor_us),
                entry.group_us,
                round_number=entry.round_number,
            )
            return result

        fast_us = self._try_fast_path(handler) if fast_ok else None
        if fast_us is not None:
            self.stats.fast_path_hits += 1
            elapsed = self.node.read_clock_us() - self._last_commit_physical_us
            if obs.REGISTRY.enabled:
                M_FAST_HITS.inc(node=self.node_id)
                M_FAST_STALENESS.observe(elapsed, node=self.node_id)
                M_DRIFT_ERROR.set(self.drift_bound.error_us(elapsed),
                                  node=self.node_id)
                M_STALENESS_BUDGET.set(self.max_staleness_us,
                                       node=self.node_id)
            self.fast_served.append((self.sim.now, fast_us, elapsed))
            self._serve(
                handler,
                PendingOp(op_id, call, result, self.sim.now, floor_us),
                fast_us,
                fast=True,
            )
            return result

        handler.park(PendingOp(op_id, call, result, self.sim.now, floor_us))
        self._pump(handler, from_read=True)
        return result

    def _try_fast_path(self, handler: CCSHandler) -> Optional[int]:
        """A drift-bounded local value, or None to run a full round.

        Only quiescent handlers qualify (nothing parked, in flight or
        buffered): an op admitted to the fast path while a round is
        pending could be covered by that round's winner at another
        replica, breaking agreement on which value serves it.
        """
        if not self.fast_path or self._recovering:
            return None
        if handler.parked or handler.in_flight is not None:
            return None
        if handler.my_input_buffer:
            return None
        if (
            self.clock_state.last_group_us is None
            or self._last_commit_physical_us is None
        ):
            return None
        physical_us = self.node.read_clock_us()
        elapsed = physical_us - self._last_commit_physical_us
        if not (0 <= elapsed <= self.max_staleness_us) or not (
            self.drift_bound.permits(elapsed)
        ):
            self.stats.fast_path_fallbacks += 1
            if obs.REGISTRY.enabled:
                M_FAST_FALLBACKS.inc(node=self.node_id)
            return None
        value = self.clock_state.clamp_to_floor(
            self.drift.adjust_fast_value(self.clock_state.propose(physical_us))
        )
        if self.byzantine:
            hi = (self.clock_state.last_group_us + elapsed
                  + self.drift_bound.error_us(elapsed) + self.byz_window_us)
            if value > hi:
                # Corrupted local state (offset or a floor) would leak
                # straight to a client here.  Repair what is provably
                # implausible and fall back to a full round.
                state = self.clock_state
                repaired = []
                if state.fast_floor_us is not None and state.fast_floor_us > hi:
                    state.fast_floor_us = None
                    repaired.append("fast")
                if (
                    state.causal_floor_us is not None
                    and state.causal_floor_us > hi
                ):
                    state.causal_floor_us = None
                    repaired.append("causal")
                if repaired:
                    self._note_stabilization("fast-floor", floors=repaired)
                self.stats.fast_path_fallbacks += 1
                if obs.REGISTRY.enabled:
                    M_FAST_FALLBACKS.inc(node=self.node_id)
                return None
        self.clock_state.note_fast_value(value)
        return value

    def _serve(
        self,
        handler: CCSHandler,
        op: PendingOp,
        group_us: int,
        *,
        fast: bool = False,
        round_number: Optional[int] = None,
    ) -> None:
        """Hand one coalesced operation its group-clock value."""
        value_us = group_us
        if op.floor_us is not None and value_us <= op.floor_us:
            # The request's session floor binds identically at every
            # replica: a round committed before the floor was observed
            # (a retained round covering a late op) must not hand the
            # client a value it has already seen.
            value_us = op.floor_us + 1
        if not fast and self.fast_path:
            # The fast path may have served values ahead of this round's
            # agreed group value (commit anchors differ across replicas).
            # The *committed* group clock stays the agreed value, but the
            # reply handed to this replica's clients must not step
            # backwards past a fast read it already served.
            floor = self.clock_state.fast_floor_us
            if (
                self.byzantine
                and floor is not None
                and floor - value_us > self.stabilize_value_gap_us
            ):
                # A floor that far above the agreed group value is not a
                # fast read we served — it is corrupted state, and
                # clamping would hand the corruption to a client.  Drop
                # it; monotonicity is re-anchored by this round's value.
                self.clock_state.fast_floor_us = None
                self._note_stabilization("fast-floor", floors=["fast"])
                floor = None
            if floor is not None and value_us <= floor:
                value_us = floor + 1
            self.clock_state.note_fast_value(value_us)
        value = ClockValue(op.call.quantize(value_us))
        self.readings.append(
            (self.sim.now, handler.my_thread_id, op.call.name, value)
        )
        if not fast:
            self.served_ops[(handler.my_thread_id, op.op_id)] = group_us
        self.stats.ops_completed += 1
        if obs.REGISTRY.enabled:
            M_OPS.inc(node=self.node_id)
        if trace.TRACER.enabled:
            # The cross-node assembler joins this to op.execute by
            # (node, request index) and to round.won by (node, thread,
            # round) — see repro.obs.crossnode.
            trace.emit(
                "op.served", self.node_id, thread=handler.my_thread_id,
                req=op.op_id[0], op_seq=op.op_id[1], round=round_number,
                fast=fast, group_us=value_us, t=self.sim.now,
            )
        if not op.result.triggered:
            op.result.succeed(value)

    def _pump(self, handler: CCSHandler, from_read: bool = False) -> None:
        """Advance the handler: consume every buffered winning message,
        then open a new round if operations remain unserved."""
        while handler.parked and handler.my_input_buffer:
            self._consume_round(handler, from_read)
        if (
            handler.parked
            and handler.in_flight is None
            and not handler.my_input_buffer
        ):
            self._open_round(handler)

    def _consume_round(self, handler: CCSHandler, from_read: bool) -> None:
        """Consume the next winning CCS message: commit the group value,
        then serve every parked operation the message's covering point
        binds to this round (Figure 2 lines 15-17, amortized)."""
        msg = handler.pop_message()
        if msg.round_number != handler.my_round_number + 1:
            if not self.byzantine:
                raise TimeServiceError(
                    f"thread {handler.my_thread_id!r}: buffered CCS round "
                    f"{msg.round_number} does not follow consumption point "
                    f"{handler.my_round_number}"
                )
            # Self-stabilization (Herman-style): a consumption point that
            # does not line up with the totally ordered round stream is
            # corrupted local state.  The ordered stream is the ground
            # truth every correct replica shares — adopt its numbering.
            self._note_stabilization(
                "round-counter", thread=handler.my_thread_id,
                had=handler.my_round_number, adopted=msg.round_number - 1)
            if (
                handler.in_flight is not None
                and abs(handler.in_flight.round_number - msg.round_number)
                > self.stabilize_round_gap
            ):
                # The pending proposal carries the corrupted numbering; a
                # round that far from the ordered stream can never
                # complete, and keeping it would block _open_round
                # forever.  Its parked ops are re-proposed by _pump.
                handler.in_flight = None
        handler.my_round_number = msg.round_number
        group_us = msg.proposed_micros
        in_flight, handler.in_flight = handler.in_flight, None
        buffered = False
        if in_flight is not None and in_flight.round_number == msg.round_number:
            physical_us = in_flight.physical_us
            started_at = in_flight.started_at
            if obs.REGISTRY.enabled:
                # We proposed for this round: proposal minus winner is
                # the per-round estimate of our skew against the group.
                skew = in_flight.proposal_us - group_us
                M_SKEW.set(skew, node=self.node_id)
                M_SKEW_ABS.observe(abs(skew), node=self.node_id)
        else:
            # We never proposed for this round (it was driven by another
            # replica, or arrived while we were catching up): anchor the
            # offset to a fresh physical reading.
            buffered = True
            physical_us = self.node.read_clock_us()
            started_at = self.sim.now
            handler.in_flight = in_flight
            if trace.TRACER.enabled:
                trace.emit(
                    "round.start", self.node_id,
                    thread=handler.my_thread_id, round=msg.round_number,
                    proposal_us=None, call=None, buffered=True,
                    t=started_at,
                )
        prior_offset = (
            self.clock_state.offset_us
            if self.clock_state.last_group_us is not None else None
        )
        self.clock_state.commit(group_us, physical_us)
        self.clock_state.offset_us = self.drift.adjust_offset(
            self.clock_state.offset_us
        )
        if self.byzantine and buffered and prior_offset is not None:
            # A buffered commit's physical reading is taken at
            # *processing* time — however late the consume ran — so the
            # derived offset absorbs the scheduling lag, our estimate
            # trails the group, and our next winning proposal regresses
            # group time (every client plateaus until real time catches
            # up).  Keep the prior offset instead: Figure 2 only ever
            # derives the offset from an operation-context reading, and
            # rounds we proposed for keep re-synchronizing it from the
            # open-time reading.  A corruption-scale move stays free —
            # it is the repair path for a scrambled offset.
            move = self.clock_state.offset_us - prior_offset
            if abs(move) <= self.stabilize_value_gap_us:
                self.clock_state.offset_us = prior_offset
        self._last_commit_physical_us = self.node.read_clock_us()
        self.stats.rounds_completed += 1
        handler.rounds_completed += 1

        covers = msg.covers
        if covers is not None:
            handler.retain_consumed(
                ConsumedRound(msg.round_number, covers, group_us)
            )
            served = handler.take_covered(covers)
        else:
            # A legacy per-op message covers exactly one operation.
            served = handler.take_oldest()

        if obs.REGISTRY.enabled:
            M_ROUNDS.inc(node=self.node_id)
            M_OFFSET.set(self.clock_state.offset_us, node=self.node_id)
            M_BATCH.observe(len(served), node=self.node_id)
            for op in served:
                M_ROUND_LATENCY.observe(
                    (self.sim.now - op.started_at) * 1e6, node=self.node_id)
        if len(served) > 1:
            self.stats.ops_coalesced += len(served) - 1
            if obs.REGISTRY.enabled:
                M_COALESCED.inc(len(served) - 1, node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "round.complete", self.node_id,
                group=self.replica.group,
                thread=handler.my_thread_id, round=msg.round_number,
                group_us=group_us, offset_us=self.clock_state.offset_us,
                batch=len(served),
                latency_us=(self.sim.now - started_at) * 1e6,
                t=self.sim.now,
            )
        if from_read and served:
            # The winner was buffered before the read arrived: no CCS
            # message of ours was constructed (line 11 short-circuit).
            self.stats.rounds_from_buffer += 1
            if obs.REGISTRY.enabled:
                M_FROM_BUFFER.inc(node=self.node_id)
        for op in served:
            self._serve(handler, op, group_us, round_number=msg.round_number)

    def _open_round(self, handler: CCSHandler) -> None:
        """Start a coalesced round covering every currently parked
        operation (Figure 2 lines 3-4 and 9, amortized)."""
        round_number = handler.my_round_number + 1
        covers = handler.parked[-1].op_id
        physical_us = self.node.read_clock_us()
        proposal_us = self.clock_state.clamp_to_floor(
            self.drift.adjust_proposal(self.clock_state.propose(physical_us))
        )
        handler.in_flight = RoundInFlight(
            round_number=round_number,
            covers=covers,
            proposal_us=proposal_us,
            physical_us=physical_us,
            call_type_id=handler.parked[0].call.type_id,
            sent=False,
            started_at=self.sim.now,
        )
        if trace.TRACER.enabled:
            trace.emit(
                "round.start", self.node_id, thread=handler.my_thread_id,
                round=round_number, proposal_us=proposal_us,
                covers=list(covers), batch=len(handler.parked),
                buffered=False, t=self.sim.now,
            )
        if self._may_send():
            self._send_ccs(handler)

    def note_min_active_request(self, min_request_index: int) -> None:
        """The replica runtime finished every request below this index:
        retained consumed rounds below ``(min_request_index, 0)`` can no
        longer be asked for and are pruned."""
        for handler in self._handlers.values():
            handler.prune_consumed(min_request_index)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _may_send(self) -> bool:
        if self._recovering:
            return False  # a recovering replica never competes (§3.2)
        if self.mode == MODE_ACTIVE:
            return True
        return self.replica.endpoint.is_primary

    def _send_ccs(self, handler: CCSHandler) -> None:
        pending = handler.pending
        pending.sent = True
        covers = getattr(pending, "covers", None) or (0, 0)
        self.stats.ccs_sent += 1
        if obs.REGISTRY.enabled:
            M_SENT.inc(node=self.node_id)
        if trace.TRACER.enabled:
            trace.emit(
                "round.sent", self.node_id, thread=handler.my_thread_id,
                round=pending.round_number, proposal_us=pending.proposal_us,
                t=self.sim.now,
            )
        self.replica.endpoint.mcast(
            make_envelope(
                MsgType.CCS,
                self.replica.group,
                self.replica.group,
                0,
                pending.round_number,
                self.node_id,
                body=CCSMessage(
                    thread_id=handler.my_thread_id,
                    round_number=pending.round_number,
                    proposed_micros=pending.proposal_us,
                    call_type_id=pending.call_type_id,
                    covers_req=covers[0],
                    covers_seq=covers[1],
                ),
            )
        )

    # ------------------------------------------------------------------
    # Reception (Figure 3)
    # ------------------------------------------------------------------

    def handle_ccs(self, envelope: Envelope) -> None:
        msg = envelope.body
        if not isinstance(msg, CCSMessage):
            return  # some other time source's control traffic
        thread_id = msg.thread_id
        watermark = self._accepted.get(
            thread_id, self._initial_rounds.get(thread_id, 0)
        )
        if msg.round_number <= watermark:
            if (
                self.byzantine
                and watermark - msg.round_number > self.stabilize_round_gap
            ):
                # A watermark this far ahead of live traffic is
                # corruption, not history: reset it from the live round
                # rather than discarding every future winner.
                self._note_stabilization(
                    "watermark", thread=thread_id,
                    watermark=watermark, round=msg.round_number)
            else:
                self.stats.duplicates_discarded += 1
                if obs.REGISTRY.enabled:
                    M_DUPLICATES.inc(node=self.node_id)
                return
        if self.byzantine and not self._recovering:
            reason = self._winner_rejection(msg)
            if reason is not None and self._note_reject_evidence(
                    reason, envelope.sender, msg):
                # A quorum of distinct peers was rejected on the same
                # side of our window: at least one of them is correct
                # (f < n/3), so *our* anchor was the outlier.  The
                # quorum handler repaired it — re-evaluate this winner
                # against the repaired state.
                reason = self._winner_rejection(msg)
            if reason is not None:
                self._reject_ccs(envelope, msg, reason)
                if envelope.sender == self.node_id:
                    # Our own ordered proposal failed our own filter:
                    # some local floor or the offset fed it a poisoned
                    # value.  Repair what is provably implausible so
                    # the re-proposal is clean — we must recover even
                    # when no other replica proposes.
                    self._repair_after_self_reject(msg)
                # Agreement safety: the window is anchored on local
                # state, so accept/reject is not guaranteed unanimous
                # among correct replicas — another replica may commit
                # this winner.  Committing a *different* value for the
                # same round number would diverge, so the round is
                # dead to us: burn its number and re-propose.
                self._skip_round(thread_id, msg)
                return
        self._accepted[thread_id] = msg.round_number
        if self.byzantine:
            self._reject_evidence["too-high"].clear()
            self._reject_evidence["too-low"].clear()
        self.winners.append((thread_id, msg.round_number, envelope.sender))
        self.clock_state.observe_group_value(msg.proposed_micros)
        if trace.TRACER.enabled:
            trace.emit(
                "round.won", self.node_id, thread=thread_id,
                round=msg.round_number, winner=envelope.sender,
                group_us=msg.proposed_micros, t=self.sim.now,
            )

        if self._recovering:
            # Integration of a new clock (Section 3.2): adopt the group
            # clock immediately, deriving our own offset from our own
            # physical clock; keep the message for post-recovery replay.
            physical_us = self.node.read_clock_us()
            self.clock_state.commit(msg.proposed_micros, physical_us)
            self.stats.recovery_adoptions += 1
            if obs.REGISTRY.enabled:
                M_ADOPTIONS.inc(node=self.node_id)
            if trace.TRACER.enabled:
                trace.emit(
                    "round.adopted", self.node_id, thread=thread_id,
                    round=msg.round_number, offset_us=self.clock_state.offset_us,
                    t=self.sim.now,
                )
            self.my_common_input_buffer.append(msg)
            return

        self._try_suppress(envelope, msg)

        handler = self._handlers.get(thread_id)
        if handler is not None:
            handler.recv_CCS_msg(msg)
            if self.coalesce:
                self._pump(handler)
        else:
            self.my_common_input_buffer.append(msg)

    def handle_raw_ccs(self, envelope: Envelope) -> None:
        """Early duplicate suppression (Section 4.3).

        A CCS message observed on the wire already carries a Totem
        sequence number; a message of ours still sitting in the send
        queue would be sequenced *after* it and lose the round with
        certainty — withdraw it without waiting for ordered delivery.
        """
        msg = envelope.body
        if isinstance(msg, CCSMessage):
            if self.byzantine and self._winner_rejection(msg) is not None:
                # A value we will reject once ordered must not withdraw
                # our own honest proposal: the round still needs it.
                return
            self._try_suppress(envelope, msg)

    # ------------------------------------------------------------------
    # Byzantine sanity filter and self-stabilization
    # ------------------------------------------------------------------

    def _winner_rejection(self, msg: CCSMessage) -> Optional[str]:
        """WALDEN-style accuracy filter: the drift-certified window.

        After the first commit, an honest winner's value must sit within
        ``[last_group - byz_lag, last_group + elapsed + drift_error +
        byz_window]``: group time advances at most at real time plus the
        certified drift, and a legitimate concurrent proposal can be
        ordered only boundedly late.  Returns the rejection reason, or
        None to accept.  Before the first commit there is no certified
        anchor (cold-start clock spread is legitimate) and everything is
        accepted.
        """
        last = self.clock_state.last_group_us
        if last is None or self._last_commit_physical_us is None:
            return None
        elapsed = max(
            0, self.node.read_clock_us() - self._last_commit_physical_us
        )
        hi = (last + elapsed + self.drift_bound.error_us(elapsed)
              + self.byz_window_us)
        if msg.proposed_micros > hi:
            return "too-high"
        if msg.proposed_micros < last - self.byz_lag_us:
            return "too-low"
        return None

    def _note_reject_evidence(self, reason: str, sender: str,
                              msg: CCSMessage) -> bool:
        """Accumulate distinct-peer evidence that our own window — not
        the senders' values — is wrong, and repair it at quorum.

        A single liar can fabricate any value, but ``stabilize_quorum``
        *distinct* senders rejected on the same side since our last
        accepted winner include at least one correct replica (f < n/3
        with quorum = f + 1), so our own state is the outlier.  Two
        repairs, by scale of the quorum's most conservative value:

        * corruption-scale (more than ``stabilize_value_gap_us`` off
          our anchor): the anchor itself came from corrupted state —
          drop every floor and re-anchor from the live stream;
        * lag-scale too-high (honest winners keep landing just above
          the window): the physical anchor of our last commit was
          stamped late — processing lag, not clock drift — so the
          window trails real group time.  Rewind the anchor until the
          quorum's *minimum* rejected value fits.  The minimum is safe:
          with a correct sender in the quorum it never exceeds an
          honest proposal (liars overshoot; undershooters land in
          ``too-low``).

        Returns True when a repair happened; the caller re-evaluates
        the current winner against the repaired state, so a liar's
        value stays rejected while the honest quorum minimum passes.
        """
        if sender == self.node_id:
            # Our own rejected proposal indicts our proposal state, not
            # the window — handled by _repair_after_self_reject.  It
            # must not count toward a peer quorum.
            return False
        evidence = self._reject_evidence[reason]
        prev = evidence.get(sender)
        if prev is None or msg.proposed_micros < prev:
            evidence[sender] = msg.proposed_micros
        # Coherence: honest winners over the evidence horizon sit
        # within the ordering-lag bound of each other, while two
        # *faulty* senders (a liar plus a not-yet-repaired corrupted
        # replica) are arbitrarily far apart — without this check they
        # could form a quorum whose minimum is still a lie.  Drop high
        # outliers until the span is coherent; lone faulty values then
        # never reach quorum against an honest entry.
        while (
            len(evidence) >= self.stabilize_quorum
            and max(evidence.values()) - min(evidence.values())
            > self.byz_lag_us
        ):
            worst = max(evidence, key=evidence.get)
            del evidence[worst]
        if len(evidence) < self.stabilize_quorum:
            return False
        target = min(evidence.values())
        evidence.clear()
        last = self.clock_state.last_group_us
        if last is None:
            return False
        if abs(target - last) > self.stabilize_value_gap_us:
            self.clock_state.stabilize()
            self._note_stabilization(
                "floors", thread=msg.thread_id, round=msg.round_number)
            return True
        if reason == "too-high" and self._last_commit_physical_us is not None:
            elapsed = max(
                0, self.node.read_clock_us() - self._last_commit_physical_us
            )
            estimate = last + elapsed
            if target > estimate:
                delta = target - estimate
                self._last_commit_physical_us -= delta
                self._note_stabilization("anchor", adjusted_us=delta)
                return True
        return False

    def _skip_round(self, thread_id: str, msg: CCSMessage) -> None:
        """Burn a round whose ordered winner we rejected.

        Other correct replicas may have accepted the winner, and the
        first ordered proposal *is* the round under Totem — so once we
        reject it, no later proposal may win the same round number for
        us without risking divergence.  Advance the duplicate watermark
        past the round, move the consumption point up, and withdraw any
        in-flight proposal so ``_pump`` re-proposes the parked
        operations for the next round.  A liar that keeps winning the
        order therefore costs correct replicas rounds, never agreement;
        liveness survives because every honest replica's re-proposal
        races for the next round on the rotating token.
        """
        if (
            msg.round_number
            - self._accepted.get(
                thread_id, self._initial_rounds.get(thread_id, 0))
            > self.stabilize_round_gap
        ):
            # A corrupted sender's round numbering is not part of the
            # live stream; adopting it would discard every honest round
            # behind it.  Discarding the message alone is enough.
            return
        self._accepted[thread_id] = msg.round_number
        if trace.TRACER.enabled:
            trace.emit(
                "round.skipped", self.node_id, thread=thread_id,
                round=msg.round_number, t=self.sim.now)
        handler = self._handlers.get(thread_id)
        if handler is None:
            return
        handler.my_round_number = max(
            handler.my_round_number, msg.round_number)
        if (
            handler.in_flight is not None
            and handler.in_flight.round_number <= msg.round_number
        ):
            handler.in_flight = None
        if self.coalesce:
            self._pump(handler)

    def _reject_ccs(self, envelope: Envelope, msg: CCSMessage,
                    reason: str) -> None:
        self.stats.winners_rejected += 1
        if obs.REGISTRY.enabled:
            M_WINNERS_REJECTED.inc(node=self.node_id, reason=reason)
        if trace.TRACER.enabled:
            trace.emit(
                "round.rejected", self.node_id, thread=msg.thread_id,
                round=msg.round_number, sender=envelope.sender,
                proposed_us=msg.proposed_micros, reason=reason,
                t=self.sim.now,
            )

    def _note_stabilization(self, what: str, **fields) -> None:
        self.stats.stabilizations += 1
        if obs.REGISTRY.enabled:
            M_STABILIZATIONS.inc(node=self.node_id, what=what)
        if trace.TRACER.enabled:
            trace.emit("state.repaired", self.node_id, what=what,
                       t=self.sim.now, **fields)

    def _repair_after_self_reject(self, msg: CCSMessage) -> None:
        """Our own ordered proposal failed our own window: whichever
        floor — or the offset itself — is corruption-scale off the
        certified anchor fed it."""
        state = self.clock_state
        anchor = state.last_group_us
        if anchor is None:
            return
        repaired = []
        if (
            abs(msg.proposed_micros - anchor) > self.stabilize_value_gap_us
            and self._last_commit_physical_us is not None
        ):
            # The proposal is corruption-scale off: re-derive the offset
            # from the last committed round (group minus the physical
            # reading taken at that commit — both honest by agreement)
            # instead of waiting for another replica's winner.  A sole
            # proposer must be able to repair itself.
            state.offset_us = anchor - self._last_commit_physical_us
            repaired.append("offset")
        if (
            state.causal_floor_us is not None
            and state.causal_floor_us - anchor > self.stabilize_value_gap_us
        ):
            state.causal_floor_us = None
            repaired.append("causal")
        if (
            state.fast_floor_us is not None
            and state.fast_floor_us - anchor > self.stabilize_value_gap_us
        ):
            state.fast_floor_us = None
            repaired.append("fast")
        if repaired:
            self._note_stabilization("floors", floors=repaired)

    def _try_suppress(self, envelope: Envelope, msg: CCSMessage) -> None:
        """Withdraw our queued-but-untransmitted CCS message for a round
        another replica's proposal has already beaten."""
        if not self.suppress_pending or envelope.sender == self.node_id:
            return
        handler = self._handlers.get(msg.thread_id)
        if (
            handler is not None
            and handler.pending is not None
            and handler.pending.sent
            and handler.pending.round_number == msg.round_number
        ):
            cancelled = self.replica.endpoint.cancel_pending(
                self._matches_my_ccs(msg.thread_id, msg.round_number)
            )
            self.stats.ccs_suppressed += cancelled
            if cancelled and obs.REGISTRY.enabled:
                M_SUPPRESSED.inc(cancelled, node=self.node_id)
            if cancelled and trace.TRACER.enabled:
                trace.emit(
                    "round.suppressed", self.node_id,
                    thread=msg.thread_id, round=msg.round_number,
                    beaten_by=envelope.sender, t=self.sim.now,
                )

    def _matches_my_ccs(self, thread_id: str, round_number: int) -> Callable:
        def predicate(envelope: Envelope) -> bool:
            body = envelope.body
            return (
                envelope.header.msg_type is MsgType.CCS
                and envelope.sender == self.node_id
                and isinstance(body, CCSMessage)
                and body.thread_id == thread_id
                and body.round_number == round_number
            )

        return predicate

    # ------------------------------------------------------------------
    # Handlers and buffers
    # ------------------------------------------------------------------

    def _handler(self, thread_id: str) -> CCSHandler:
        if thread_id not in self._handlers:
            handler = CCSHandler(
                self.sim, thread_id, self._initial_rounds.get(thread_id, 0)
            )
            handler.last_op_id = self._initial_ops.get(thread_id, (0, 0))
            self._handlers[thread_id] = handler
        return self._handlers[thread_id]

    def _drain_common(self, handler: CCSHandler) -> None:
        """Figure 2, line 10: move matching messages from the common
        input buffer to the thread's handler."""
        if not self.my_common_input_buffer:
            return
        matching = [
            m for m in self.my_common_input_buffer
            if m.thread_id == handler.my_thread_id
        ]
        if not matching:
            return
        self.my_common_input_buffer = [
            m for m in self.my_common_input_buffer
            if m.thread_id != handler.my_thread_id
        ]
        # Per-op mode: the current round was already numbered when the
        # drain runs, so "not yet consumed" means round >= my_round_number.
        # Coalesced mode: my_round_number IS the consumption point.
        threshold = (
            handler.my_round_number
            if self.coalesce
            else handler.my_round_number - 1
        )
        for msg in matching:
            if msg.round_number > threshold:
                handler.recv_CCS_msg(msg)

    # ------------------------------------------------------------------
    # Views and primary failover (Section 3.3)
    # ------------------------------------------------------------------

    def on_view_change(self, view: "GroupView") -> None:
        if self.mode != MODE_PRIMARY or view.primary != self.node_id:
            return
        # We just became (or confirmed ourselves as) primary: any round
        # still blocked with no CCS message received must now be driven
        # by us — unless the old primary's message already arrived.
        for handler in self._handlers.values():
            pending = handler.pending
            if (
                pending is not None
                and not pending.sent
                and not handler.my_input_buffer
            ):
                self._send_ccs(handler)

    # ------------------------------------------------------------------
    # State transfer (Section 3.2)
    # ------------------------------------------------------------------

    def abort_in_flight(self) -> None:
        for handler in self._handlers.values():
            aborted = handler.abort_pending(
                "replica abandoned its protocol position"
            )
            if aborted and obs.REGISTRY.enabled:
                M_ABORTS.inc(node=self.node_id)

    def begin_recovery(self) -> None:
        self._recovering = True

    def finish_recovery(self) -> None:
        self._recovering = False

    def get_transfer_state(self) -> TimeTransferState:
        state = TimeTransferState(
            last_group_us=self.clock_state.last_group_us,
            causal_floor_us=self.clock_state.causal_floor_us,
        )
        for thread_id, handler in self._handlers.items():
            state.rounds[thread_id] = handler.my_round_number
            if handler.last_op_id != (0, 0):
                state.ops[thread_id] = handler.last_op_id
            if handler.my_input_buffer:
                state.buffered[thread_id] = list(handler.my_input_buffer)
        for msg in self.my_common_input_buffer:
            state.rounds.setdefault(
                msg.thread_id, self._initial_rounds.get(msg.thread_id, 0)
            )
            state.buffered.setdefault(msg.thread_id, []).append(msg)
        for thread_id, watermark in self._accepted.items():
            state.accepted[thread_id] = watermark
        return state

    def set_transfer_state(self, state: object) -> None:
        if not isinstance(state, TimeTransferState):
            return
        self._initial_rounds = dict(state.rounds)
        self._initial_ops = {
            thread_id: (int(op[0]), int(op[1]))
            for thread_id, op in state.ops.items()
        }
        for thread_id, op in self._initial_ops.items():
            handler = self._handlers.get(thread_id)
            if handler is not None and op > handler.last_op_id:
                handler.last_op_id = op
        # Merge the transferred buffers with what we observed live while
        # recovering: transferred messages are authoritative up to their
        # horizon; our own observations extend beyond it.  A replica that
        # *re*-transfers (rejoining the primary component after a
        # partition) already has handlers; their buffered messages — which
        # may come from the abandoned minority fork — join the merge and
        # are discarded below the transferred horizon, and their round
        # counters fast-forward to the transferred consumption point.
        local: Dict[str, List[CCSMessage]] = {}
        for msg in self.my_common_input_buffer:
            local.setdefault(msg.thread_id, []).append(msg)
        for thread_id, handler in self._handlers.items():
            for msg in handler.my_input_buffer:
                local.setdefault(thread_id, []).append(msg)
            handler.my_input_buffer.clear()
            transferred_round = state.rounds.get(thread_id)
            if transferred_round is not None:
                handler.my_round_number = max(
                    handler.my_round_number, transferred_round
                )
        merged: List[CCSMessage] = []
        threads = set(state.rounds) | set(state.buffered) | set(local) | set(
            state.accepted
        )
        for thread_id in sorted(threads):
            transferred = list(state.buffered.get(thread_id, []))
            horizon = max(
                [m.round_number for m in transferred]
                + [state.rounds.get(thread_id, 0), state.accepted.get(thread_id, 0)]
            )
            beyond = [
                m for m in local.get(thread_id, []) if m.round_number > horizon
            ]
            merged.extend(transferred)
            merged.extend(beyond)
            highest = max([horizon] + [m.round_number for m in beyond])
            self._accepted[thread_id] = max(
                self._accepted.get(thread_id, 0), highest
            )
        self.my_common_input_buffer = merged
        if state.last_group_us is not None:
            self.clock_state.observe_group_value(state.last_group_us)
        if state.causal_floor_us is not None:
            self.clock_state.observe_causal_timestamp(state.causal_floor_us)

    def fast_forward(self, state: object) -> None:
        """Apply a passive-replication checkpoint's time state: jump the
        consumption point past rounds the checkpointed app state already
        reflects, dropping the now-stale buffered messages."""
        if not isinstance(state, TimeTransferState):
            return
        for thread_id, round_number in state.rounds.items():
            self._initial_rounds[thread_id] = max(
                self._initial_rounds.get(thread_id, 0), round_number
            )
            handler = self._handlers.get(thread_id)
            if handler is not None:
                handler.my_round_number = max(
                    handler.my_round_number, round_number
                )
                handler.drop_through(round_number)
        for thread_id, op in state.ops.items():
            op = (int(op[0]), int(op[1]))
            if op > self._initial_ops.get(thread_id, (0, 0)):
                self._initial_ops[thread_id] = op
            handler = self._handlers.get(thread_id)
            if handler is not None and op > handler.last_op_id:
                handler.last_op_id = op
        self.my_common_input_buffer = [
            m
            for m in self.my_common_input_buffer
            if m.round_number > state.rounds.get(m.thread_id, 0)
        ]
        if state.last_group_us is not None:
            self.clock_state.observe_group_value(state.last_group_us)

    # ------------------------------------------------------------------
    # Multigroup causal timestamps (Section 5 extension)
    # ------------------------------------------------------------------

    def current_timestamp(self) -> int:
        """The latest group clock value, for piggybacking on messages
        multicast to other groups."""
        return self.clock_state.last_group_us or 0

    def observe_timestamp(self, timestamp_us: int) -> None:
        """A message from another group carried this group-clock
        timestamp; future readings here must exceed it (causality)."""
        self.clock_state.observe_causal_timestamp(timestamp_us)
