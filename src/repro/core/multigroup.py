"""Multigroup causal group clocks (the paper's Section 5 future work).

With several replica groups, each maintains its own group clock, and
"the problem of maintaining causal relationships of the consistent group
clocks for the different groups arises".  The sketched solution —
implemented here — "includes the value of the consistent group clock as
a timestamp in the user messages multicast to the different groups".

Usage inside replicated application code::

    # sending side (group A): stamp outgoing work
    stamp = stamp_outgoing(ctx)          # A's latest group clock value

    # receiving side (group B): the stamp rides in the ordered request,
    # so every replica of B observes it identically and deterministically
    observe_incoming(ctx, stamp)         # B's clock now exceeds it

After ``observe_incoming``, every subsequent group-clock reading in B is
strictly greater than the stamped value, so causality across groups is
reflected in the clocks: if event *a* in A happened-before event *b* in
B (via a message), then ``clock(a) < clock(b)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TimeServiceError
from ..replication.context import ReplicaContext
from .time_service import ConsistentTimeService


@dataclass(frozen=True)
class GroupClockStamp:
    """A group clock value attached to an inter-group message."""

    group: str
    micros: int

    def wire_size(self) -> int:
        return 16


def _service_of(ctx: ReplicaContext) -> ConsistentTimeService:
    source = ctx.replica.time_source
    if not isinstance(source, ConsistentTimeService):
        raise TimeServiceError(
            "multigroup causal timestamps require the consistent time "
            f"service; this replica uses {source.name!r}"
        )
    return source


def stamp_outgoing(ctx: ReplicaContext) -> GroupClockStamp:
    """Produce the timestamp to piggyback on an inter-group message.

    Deterministic across replicas: the latest group clock value is
    identical everywhere in the group.
    """
    service = _service_of(ctx)
    return GroupClockStamp(ctx.replica.group, service.current_timestamp())


def observe_incoming(ctx: ReplicaContext, stamp: GroupClockStamp) -> None:
    """Fold a received timestamp into this group's causal floor.

    Must be called from replicated request-processing code so that every
    replica observes the stamp at the same point in the total order.
    """
    service = _service_of(ctx)
    service.observe_timestamp(stamp.micros)
