"""Time-service state carried by checkpoints and state transfer.

Only *replica-independent* state travels: per-thread round counters,
unconsumed winning CCS messages, the last decided group clock value and
the cross-group causal floor.  Clock offsets never travel — each replica
derives its own offset from its own physical clock, which is the entire
point of the special CCS round during state transfer (paper Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .messages import CCSMessage, OpId


@dataclass
class TimeTransferState:
    """Snapshot of a replica's time-service protocol position."""

    #: thread_id -> round number consumed up to (the consumption point).
    rounds: Dict[str, int] = field(default_factory=dict)
    #: thread_id -> accepted-but-unconsumed winning CCS messages, in
    #: round order (a passive backup holds many of these).
    buffered: Dict[str, List[CCSMessage]] = field(default_factory=dict)
    #: thread_id -> highest round number accepted (duplicate-detection
    #: watermark; >= the consumption point).
    accepted: Dict[str, int] = field(default_factory=dict)
    #: thread_id -> highest coalesced operation id assigned (the
    #: operation-numbering consumption point; replica-independent, like
    #: the round counters).
    ops: Dict[str, OpId] = field(default_factory=dict)
    #: Last decided group clock value, microseconds.
    last_group_us: Optional[int] = None
    #: Cross-group causal floor (Section 5 extension), microseconds.
    causal_floor_us: Optional[int] = None

    def wire_size(self) -> int:
        buffered = sum(len(msgs) for msgs in self.buffered.values())
        return 48 + 16 * len(self.rounds) + 16 * len(self.ops) + 40 * buffered
