"""Shard placement: consistent hashing with a rendezvous fallback.

One CCS group serves one *shard* of the client population (ROADMAP
item 1).  The routing tier needs a deterministic ``client key -> shard``
map with two properties the gateway relies on:

* **balance** — with enough virtual nodes per shard the max/min load
  ratio over a large key population stays small;
* **minimal reassignment** — adding or removing a shard moves only the
  keys that land on the new (or departed) shard's ring arcs, roughly a
  ``1/N`` fraction; every other key keeps its owner, so sessions do not
  migrate en masse on topology change.

:class:`HashRing` is the classic token ring (each shard owns
``vnodes`` pseudo-random points on a 64-bit circle; a key is owned by
the first token clockwise from its hash).  :class:`RendezvousHash` is
the highest-random-weight fallback — no token table, same minimal
reassignment guarantee — used when a ring would be overkill (very small
shard counts) or as a cross-check in tests.

Both are pure functions of ``(members, salt)``: hashing is SHA-256, so
placement is identical across processes, platforms and Python versions
— a gateway tier can be scaled horizontally with no shared state.

The ring also defines the **overlay topology**: :meth:`HashRing.neighbors`
returns each shard's predecessor and successor in shard order, the
edges along which the gradient sync overlay exchanges clock summaries
(see :mod:`repro.shard.overlay`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["HashRing", "RendezvousHash"]


def _hash64(text: str) -> int:
    """The first 8 bytes of SHA-256 as an unsigned 64-bit point."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes.

    ``members`` may be any ids with stable ``str()`` forms (the testbed
    uses small ints).  ``vnodes`` is the token count per shard — 64
    keeps the max/min load ratio under ~1.6 for 10k keys (pinned by the
    hypothesis suite).  ``salt`` isolates independent rings from each
    other (two rings with different salts place keys independently).
    """

    def __init__(self, members: Sequence, *, vnodes: int = 64,
                 salt: str = "shard-ring"):
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.salt = salt
        self._members: List = []
        self._points: List[int] = []      # sorted token positions
        self._owners: List = []           # token position -> member
        for member in members:
            self.add(member)

    # -- topology -------------------------------------------------------

    @property
    def members(self) -> List:
        """Members in insertion order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member) -> bool:
        return member in self._members

    def add(self, member) -> None:
        """Add one shard; only the keys on its new arcs move to it."""
        if member in self._members:
            raise ConfigurationError(f"shard {member!r} already on the ring")
        self._members.append(member)
        for token in range(self.vnodes):
            point = _hash64(f"{self.salt}|{member}|{token}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, member)

    def remove(self, member) -> None:
        """Remove one shard; only its keys are reassigned (to the next
        token clockwise, i.e. spread over the survivors)."""
        if member not in self._members:
            raise ConfigurationError(f"shard {member!r} is not on the ring")
        self._members.remove(member)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != member]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- placement ------------------------------------------------------

    def owner(self, key: str):
        """The shard owning ``key``: first token clockwise from its hash."""
        if not self._members:
            raise ConfigurationError("ring has no members")
        point = _hash64(f"{self.salt}|key|{key}")
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> Dict:
        """Bulk :meth:`owner`: ``{key: shard}`` for analysis and tests."""
        return {key: self.owner(key) for key in keys}

    # -- overlay topology -----------------------------------------------

    def order(self) -> List:
        """Members ordered by their first (lowest) token position — the
        deterministic 'shard order' the gradient overlay walks."""
        first: Dict = {}
        for point, member in zip(self._points, self._owners):
            if member not in first:
                first[member] = point
        return sorted(self._members, key=lambda m: first[m])

    def neighbors(self, member) -> Tuple:
        """The shard's predecessor and successor in shard order — the
        gradient overlay's edges.  With two members both directions meet
        the same peer (returned once); a singleton has no neighbors."""
        ordered = self.order()
        if member not in ordered:
            raise ConfigurationError(f"shard {member!r} is not on the ring")
        if len(ordered) < 2:
            return ()
        index = ordered.index(member)
        prev_member = ordered[index - 1]
        next_member = ordered[(index + 1) % len(ordered)]
        if prev_member == next_member:
            return (prev_member,)
        return (prev_member, next_member)


class RendezvousHash:
    """Highest-random-weight (rendezvous) placement — the ring fallback.

    ``owner(key) = argmax over members of H(member, key)``.  No token
    table: removal reassigns exactly the departed member's keys, and the
    balance is ideal in expectation.  O(N) per lookup, so it suits small
    shard counts; the gateway uses it when the configured ``vnodes`` is
    zero or the ring would hold fewer than two tokens per member.
    """

    def __init__(self, members: Sequence, *, salt: str = "shard-hrw"):
        self.salt = salt
        self._members: List = []
        for member in members:
            self.add(member)

    @property
    def members(self) -> List:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member) -> bool:
        return member in self._members

    def add(self, member) -> None:
        if member in self._members:
            raise ConfigurationError(f"shard {member!r} already placed")
        self._members.append(member)

    def remove(self, member) -> None:
        if member not in self._members:
            raise ConfigurationError(f"shard {member!r} is not placed")
        self._members.remove(member)

    def owner(self, key: str):
        if not self._members:
            raise ConfigurationError("no members to place keys on")
        return max(self._members,
                   key=lambda m: _hash64(f"{self.salt}|{m}|{key}"))

    def assignments(self, keys: Sequence[str]) -> Dict:
        return {key: self.owner(key) for key in keys}
