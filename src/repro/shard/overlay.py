"""The gradient cross-shard sync overlay.

Every ``period_s`` each shard's primary builds a signed
:class:`ShardSummary` and unicasts it to the shard's ring neighbors.  A
receiving shard compares the advertised group clock to its own estimate
and hands the positive remainder (minus the sender's error bound) to its
:class:`~repro.core.drift.GradientSteering` hook, which folds a bounded
step into the group's next CCS proposal.  Shards thus chase the fastest
group clock along ring edges — the gradient-clock idiom — and the skew
between *neighbors* stays inside a small per-hop envelope instead of
the global worst case.

Steady-state per-hop envelope (see docs/sharding.md for the derivation):
with summary period ``T``, relative drift ``rho`` between neighbor
groups, sender error bound ``eps`` and steering proportion ``p``
(step cap ``S``), a hop's skew contracts whenever it exceeds

    g*  =  (rho * T + eps) / p        (given S >= p * g*)

so after warmup the observed hop skew stays within ``g*`` plus the
drift accumulated over one period — the bound the
:class:`~repro.chaos.oracle.InvariantOracle` checks online via
``observe_shard_summary``.  A hop that was silent for a few periods
(partition, dead primary) or whose primary failed over (the estimate is
re-based mid-stream) enters a *resync* drain window: its deliveries are
steered (and, above the align threshold, jumped) but not judged against
the bound until the delta re-enters it — or ``resync_drain_s`` passes,
so real divergence is still flagged.

:class:`SkewTracker` samples every shard's live estimate each period and
keeps the post-warmup envelope — the number committed to
``BENCH_throughput.json`` by ``loadgen --shards``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import obs
from ..errors import RpcTimeout
from .summary import ShardSummary

__all__ = ["OverlayConfig", "GradientOverlay", "SkewTracker"]

M_SUMMARIES_SENT = obs.REGISTRY.counter(
    "shard_summaries_sent_total", "clock summaries sent to ring neighbors")
M_SUMMARIES_RECV = obs.REGISTRY.counter(
    "shard_summaries_received_total", "clock summaries accepted from neighbors")
M_SUMMARIES_REJECTED = obs.REGISTRY.counter(
    "shard_summaries_rejected_total", "summaries dropped (bad signature)")
M_SHARD_SKEW = obs.REGISTRY.gauge(
    "shard_skew_us", "current global inter-shard skew (max - min estimate)",
    unit="us")
M_SHARD_SKEW_PEAK = obs.REGISTRY.gauge(
    "shard_skew_peak_us", "worst post-warmup inter-shard skew observed",
    unit="us")
M_HOP_SKEW_PEAK = obs.REGISTRY.gauge(
    "shard_hop_skew_peak_us", "worst post-warmup ring-neighbor skew observed",
    unit="us")


@dataclass
class OverlayConfig:
    """Tuning knobs for the gradient overlay."""

    #: Summary period T, seconds.
    period_s: float = 0.02
    #: Shared HMAC secret for summaries (None = unsigned/open mode).
    secret: Optional[str] = None
    #: Envelope measurement starts after this settle window, seconds
    #: (initial epochs sit seconds apart; alignment happens in here).
    warmup_s: float = 1.0
    #: Per-hop skew bound the oracle enforces, microseconds.  Under
    #: saturation the dominant "drift" term is not oscillator ppm but
    #: round-commit inflation: every committed round advances the group
    #: offset by roughly the round latency, so a busier (or slower-ring)
    #: shard's clock runs up to ~1% fast relative to a neighbor.  With
    #: rho_eff ≈ 10_000 ppm, T = 20 ms, eps = 100 us and p = 0.5 the
    #: contraction point g* = (rho_eff*T + eps)/p lands near 600 us
    #: (needs step cap S >= p*g*, hence the testbed's 2 ms cap); the
    #: bound adds headroom for round-cadence lag — corrections only
    #: apply when rounds commit.
    hop_bound_us: int = 5_000
    #: A hop silent longer than this many periods is resyncing: its next
    #: delivery is steered but not judged against the bound.
    resync_after_periods: float = 3.0
    #: How long a resyncing hop may keep draining its backlog before the
    #: oracle judges it again.  A silence or a primary failover re-bases
    #: one side of the edge; deliveries stay exempt until the delta
    #: re-enters the bound — or this deadline passes, so a genuinely
    #: diverging overlay is still caught.
    resync_drain_s: float = 1.0


class SkewTracker:
    """Samples shard estimates and keeps the post-warmup skew envelope."""

    def __init__(self, bed, *, warmup_s: float):
        self.bed = bed
        self.warmup_s = warmup_s
        self._t0: Optional[float] = None
        self.samples = 0
        self.max_skew_us = 0
        self.max_hop_skew_us = 0

    def start(self) -> None:
        self._t0 = self.bed.sim.now

    @property
    def warmed_up(self) -> bool:
        return (self._t0 is not None
                and self.bed.sim.now - self._t0 >= self.warmup_s)

    def sample(self) -> None:
        """One synchronized reading of every live shard's estimate."""
        estimates: Dict[int, int] = {}
        for shard in self.bed.ring.members:
            value = self.bed.estimate_group_us(shard)
            if value is not None:
                estimates[shard] = value
        if len(estimates) < 2 or not self.warmed_up:
            return
        self.samples += 1
        skew = max(estimates.values()) - min(estimates.values())
        self.max_skew_us = max(self.max_skew_us, skew)
        hop = 0
        for shard, value in estimates.items():
            for neighbor in self.bed.ring.neighbors(shard):
                if neighbor in estimates:
                    hop = max(hop, abs(value - estimates[neighbor]))
        self.max_hop_skew_us = max(self.max_hop_skew_us, hop)
        if obs.REGISTRY.enabled:
            M_SHARD_SKEW.set(skew)
            M_SHARD_SKEW_PEAK.set_max(skew)
            M_HOP_SKEW_PEAK.set_max(hop)

    def envelope(self) -> Dict[str, float]:
        """The measured envelope, for bench JSON and chaos verdicts."""
        return {
            "samples": self.samples,
            "warmup_s": self.warmup_s,
            "max_skew_us": self.max_skew_us,
            "max_hop_skew_us": self.max_hop_skew_us,
        }


class GradientOverlay:
    """Drives the summary exchange over a :class:`ShardedTestbed`."""

    def __init__(self, bed, config: Optional[OverlayConfig] = None,
                 *, oracle=None):
        self.bed = bed
        self.config = config or OverlayConfig()
        self.oracle = oracle
        self.skew = SkewTracker(bed, warmup_s=self.config.warmup_s)
        #: (src shard, dst shard) -> kernel time of the last delivery.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        #: shard -> (kernel time, estimate) at the last re-base check.
        self._tracked: Dict[int, Optional[Tuple[float, int]]] = {}
        #: (src shard, dst shard) -> drain deadline while resyncing.
        self._draining: Dict[Tuple[int, int], float] = {}
        #: shard -> round watermark at the last tick (idle detection).
        self._last_round_seq: Dict[int, int] = {}
        #: Shards with a sync probe in flight.
        self._probing: set = set()
        self._probe_clients: Dict[int, object] = {}
        self.probes_sent = 0
        self.summaries_sent = 0
        self.summaries_received = 0
        self.summaries_rejected = 0
        self._started = False
        bed.summary_sink = self._on_summary

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Begin periodic ticks, staggered so shards do not send in
        lockstep (each shard's phase is a fixed fraction of the period)."""
        if self._started:
            return
        self._started = True
        self.skew.start()
        period = self.config.period_s
        shards = list(self.bed.ring.members)
        for index, shard in enumerate(shards):
            phase = period * (index + 1) / (len(shards) + 1)
            self.bed.sim.schedule(phase, self._tick, shard)
        self.bed.sim.schedule(period, self._sample_tick)

    def _tick(self, shard: int) -> None:
        if shard in self.bed.ring:
            summary = self.bed.build_summary(shard, self.config.secret)
            if summary is not None:
                for neighbor in self.bed.ring.neighbors(shard):
                    if self.bed.send_summary(shard, neighbor, summary):
                        self.summaries_sent += 1
                        if obs.REGISTRY.enabled:
                            M_SUMMARIES_SENT.inc(shard=shard)
                self._maybe_probe(shard, summary.round_seq)
        self.bed.sim.schedule(self.config.period_s, self._tick, shard)

    def _maybe_probe(self, shard: int, round_seq: int) -> None:
        """Steering needs rounds: a correction only commits inside a CCS
        proposal, so a shard with pending correction but no client
        traffic would hold its backlog forever.  When the round
        watermark sat still for a whole period and the shard has pending
        steering, drive one probe read through the shard's own client —
        the resulting round carries the step group-wide.  Under load the
        watermark always moves, so probes cost nothing there."""
        previous = self._last_round_seq.get(shard)
        self._last_round_seq[shard] = round_seq
        steering = self.bed.steerings.get(shard)
        if (steering is None or steering.pending_us <= 0
                or previous != round_seq or shard in self._probing):
            return
        self._probing.add(shard)
        self.bed.sim.process(self._probe(shard), name=f"overlay-probe{shard}")

    def _probe(self, shard: int):
        client = self._probe_clients.get(shard)
        if client is None:
            client = self._probe_clients[shard] = self.bed.shard_client(shard)
        self.probes_sent += 1
        try:
            yield client.call(self.bed.group_of(shard), "gettimeofday", None,
                              timeout=self.config.period_s * 10)
        except RpcTimeout:
            pass  # partitioned or reforming; the next idle tick retries
        finally:
            self._probing.discard(shard)

    def _sample_tick(self) -> None:
        now = self.bed.sim.now
        for shard in self.bed.ring.members:
            self._check_rebase(shard, now)
        self.skew.sample()
        self.bed.sim.schedule(self.config.period_s, self._sample_tick)

    # -- receive path ---------------------------------------------------

    def _on_summary(self, node_id: str, summary: ShardSummary) -> None:
        if not summary.verify(self.config.secret):
            self.summaries_rejected += 1
            if obs.REGISTRY.enabled:
                M_SUMMARIES_REJECTED.inc(node=node_id)
            return
        dst_shard = self.bed.shard_of_node(node_id)
        if dst_shard == summary.shard or dst_shard not in self.bed.ring:
            return
        local_us = self.bed.estimate_group_us(dst_shard)
        if local_us is None:
            return  # no committed round yet; nothing to steer
        self.summaries_received += 1
        if obs.REGISTRY.enabled:
            M_SUMMARIES_RECV.inc(shard=dst_shard)
        delta_us = summary.value_us - local_us
        steering = self.bed.steerings.get(dst_shard)
        if steering is not None and delta_us > summary.error_us:
            # Only the certain part of the lead: the advertised value may
            # overstate the sender's clock by up to its error bound.
            steering.observe_neighbor_delta(delta_us - summary.error_us)
        now = self.bed.sim.now
        self._check_rebase(summary.shard, now)
        self._check_rebase(dst_shard, now)
        key = (summary.shard, dst_shard)
        last = self._last_delivery.get(key)
        self._last_delivery[key] = now
        if self.oracle is None or not self.skew.warmed_up:
            return
        grace = self.config.resync_after_periods * self.config.period_s
        if last is None or (now - last) > grace:
            self._draining[key] = now + self.config.resync_drain_s
        resync = False
        deadline = self._draining.get(key)
        if deadline is not None:
            # A re-based hop (silence or failover) is exempt while its
            # backlog drains; once the delta is back inside the bound —
            # or the drain deadline passes — judgments resume.
            within = abs(delta_us) <= (self.config.hop_bound_us
                                       + summary.error_us)
            if within or now > deadline:
                del self._draining[key]
            resync = not within and now <= deadline
        self.oracle.observe_shard_summary(
            summary.shard, dst_shard, delta_us,
            bound_us=self.config.hop_bound_us,
            error_us=summary.error_us, resync=resync)

    def _check_rebase(self, shard: int, now: float) -> None:
        """A crash, failover or ring reformation can step a shard's group
        estimate — the base of every summary and delta it touches — by
        far more than a steering step, without any delivery silence on
        its edges.  Compare the estimate against dead reckoning from the
        last sample; a step beyond the hop bound (or the estimate dying
        or reappearing) opens a drain window on the shard's edges so the
        oracle sees a resync, not a violation."""
        estimate = self.bed.estimate_group_us(shard)
        tracked = shard in self._tracked
        previous = self._tracked.get(shard)
        self._tracked[shard] = None if estimate is None else (now, estimate)
        if not tracked:
            return  # first observation: nothing to reckon against
        if previous is None or estimate is None:
            rebased = (previous is None) != (estimate is None)
        else:
            expected = previous[1] + int((now - previous[0]) * 1e6)
            rebased = abs(estimate - expected) > self.config.hop_bound_us
        if not rebased:
            return
        deadline = now + self.config.resync_drain_s
        for neighbor in self.bed.ring.neighbors(shard):
            self._draining[(shard, neighbor)] = deadline
            self._draining[(neighbor, shard)] = deadline

    # -- reporting ------------------------------------------------------

    def report(self) -> Dict:
        return {
            "summaries_sent": self.summaries_sent,
            "summaries_received": self.summaries_received,
            "summaries_rejected": self.summaries_rejected,
            "probes_sent": self.probes_sent,
            "skew_envelope": self.skew.envelope(),
        }
