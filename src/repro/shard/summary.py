"""The cross-shard clock summary: what one shard tells its neighbors.

Once per overlay period a shard's primary publishes a
:class:`ShardSummary` to its ring neighbors: the group clock estimate at
send time (``value_us``), the committed offset the estimate was derived
from, the round watermark that committed it, and a drift-certified error
bound (how stale the estimate can be, from the round age and the
configured drift budget).  The receiving shard subtracts its own
estimate, discounts the error bound, and steers the positive remainder
into its next proposal (:class:`repro.core.drift.GradientSteering`).

Summaries cross shard boundaries, i.e. leave the sender's trust domain,
so they carry an optional HMAC-SHA256 signature over a canonical byte
string.  An unsigned or mis-signed summary is dropped by the overlay
when a secret is configured — a Byzantine shard can then not drag its
neighbors' clocks around.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ShardSummary"]


@dataclass(frozen=True)
class ShardSummary:
    """One shard's signed clock advertisement to its ring neighbors."""

    #: The advertising shard's id on the ring.
    shard: int
    #: The advertising shard's CCS group name (e.g. ``"shard2"``).
    group: str
    #: Group clock estimate at send time: physical clock + committed
    #: offset — the same estimate the read fast path serves.
    value_us: int
    #: The committed group-clock offset behind the estimate.
    offset_us: int
    #: Round watermark: the last completed CCS round number.
    round_seq: int
    #: Drift-certified error bound on ``value_us``, microseconds.
    error_us: int
    #: Hex HMAC-SHA256 over :meth:`canonical_bytes` ("" = unsigned).
    signature: str = ""

    def canonical_bytes(self) -> bytes:
        """The byte string the signature covers (signature excluded)."""
        return (f"shard-summary|{self.shard}|{self.group}|{self.value_us}"
                f"|{self.offset_us}|{self.round_seq}|{self.error_us}"
                ).encode("utf-8")

    def sign(self, secret: Optional[str]) -> "ShardSummary":
        """A copy carrying the HMAC for ``secret`` (self if no secret)."""
        if not secret:
            return self
        mac = hmac.new(secret.encode("utf-8"), self.canonical_bytes(),
                       hashlib.sha256).hexdigest()
        return replace(self, signature=mac)

    def verify(self, secret: Optional[str]) -> bool:
        """True if the signature matches ``secret``.

        Without a configured secret every summary verifies (open mode);
        with one, both a missing and a forged signature fail.
        """
        if not secret:
            return True
        expected = hmac.new(secret.encode("utf-8"), self.canonical_bytes(),
                            hashlib.sha256).hexdigest()
        return hmac.compare_digest(self.signature, expected)
