"""repro.shard — sharded time domains (ROADMAP item 1).

One CCS group gives consistent time *within* a group (PAPER.md §3);
this package runs **many groups**, each owning a shard of the client
population, and bounds the skew *between* them:

* :mod:`repro.shard.ring` — deterministic client→shard placement: a
  consistent-hash ring with virtual nodes (minimal reassignment on
  topology change) and a rendezvous-hash fallback;
* :mod:`repro.shard.summary` — the signed clock summary shards exchange;
* :mod:`repro.shard.overlay` — the gradient sync overlay: each shard's
  primary periodically sends its summary to its ring neighbors, and the
  receiving group steers a bounded proportion of the positive delta
  into its next proposal (:class:`repro.core.drift.GradientSteering`),
  yielding the per-hop skew envelope documented in docs/sharding.md;
* :mod:`repro.shard.cluster` — :class:`ShardedTestbed`: N independent
  Totem rings (per-shard multicast domains) on one simulated network;
* :mod:`repro.shard.router` — :class:`ShardRouter`: routes sessions to
  the owning shard and carries the session floor across migrations so
  reads stay monotone shard-to-shard;
* :mod:`repro.shard.chaos` — the sharded chaos runner behind
  ``python -m repro chaos`` for scenarios with a ``shards:`` key.

:mod:`ring` and :mod:`summary` are leaf modules and import eagerly; the
rest load lazily (PEP 562) because ``repro.net.wire`` imports the
summary codec from here and an eager import of the stack would close a
cycle back into ``repro.net``.
"""

from __future__ import annotations

from .ring import HashRing, RendezvousHash
from .summary import ShardSummary

_LAZY = {
    "GradientOverlay": ("repro.shard.overlay", "GradientOverlay"),
    "OverlayConfig": ("repro.shard.overlay", "OverlayConfig"),
    "SkewTracker": ("repro.shard.overlay", "SkewTracker"),
    "ShardClusterConfig": ("repro.shard.cluster", "ShardClusterConfig"),
    "ShardedTestbed": ("repro.shard.cluster", "ShardedTestbed"),
    "ShardRouter": ("repro.shard.router", "ShardRouter"),
    "ShardSession": ("repro.shard.router", "ShardSession"),
    "run_shard_chaos": ("repro.shard.chaos", "run_shard_chaos"),
}

__all__ = [
    "HashRing",
    "RendezvousHash",
    "ShardSummary",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
