"""The sharded testbed: N independent Totem rings on one simulated LAN.

Each shard ``g`` is one CCS group ``shard{g}`` — ``shard_size`` server
nodes ``s{g}n0..`` plus one client node ``s{g}c`` — running its own
Totem ring.  All shards share a single simulation kernel and network
substrate, which is what lets the cross-shard overlay (unicast) and
shard-scoped chaos faults (network partitions) compose with them.

One substrate, many rings, needs **multicast domains**: Totem multicasts
LAN-wide, and its membership protocol merges *any* join sender into the
ring, so N rings on one broadcast network would collapse into one.  The
sharded testbed therefore wraps every node's receiver with a domain
filter that drops multicast frames originating outside the node's shard
— the simulated analogue of per-shard VLANs / multicast groups in a
real deployment.  Unicast frames cross shards freely; that is the
overlay's channel.  :class:`ShardSummary` payloads are intercepted in
the same wrapper and routed to the overlay (they are addressed to a
node, not a group, so Totem should never see them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core import GradientSteering
from ..errors import ConfigurationError
from ..sim import Cluster, ClusterConfig
from ..sim.network import Frame
from ..testbed import TestbedBase
from ..totem import TotemConfig
from .ring import HashRing
from .summary import ShardSummary

__all__ = ["ShardClusterConfig", "ShardedTestbed",
           "shard_server_nodes", "shard_client_node", "shard_nodes"]

#: A sink for intercepted summaries: (receiving node, summary) -> None.
SummarySink = Callable[[str, ShardSummary], None]


def shard_server_nodes(shard: int, shard_size: int) -> List[str]:
    """The server node ids of one shard: ``s{g}n0 .. s{g}n{size-1}``."""
    return [f"s{shard}n{r}" for r in range(shard_size)]


def shard_client_node(shard: int) -> str:
    """The shard's client/gateway node id: ``s{g}c``."""
    return f"s{shard}c"


def shard_nodes(shard: int, shard_size: int) -> List[str]:
    """All node ids of one shard (servers then client) — the unit the
    chaos DSL's shard-scoped partitions operate on."""
    return shard_server_nodes(shard, shard_size) + [shard_client_node(shard)]


@dataclass
class ShardClusterConfig(ClusterConfig):
    """Cluster parameters for a sharded deployment.

    ``shards`` rings of ``shard_size`` servers plus one client node
    each; ``num_nodes`` is derived.  Clock epochs/drift are drawn from
    the same seeded streams as the flat testbed, so shard group clocks
    start seconds apart — exactly the condition the gradient overlay's
    initial alignment has to erase.
    """

    shards: int = 2
    shard_size: int = 3

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        self.num_nodes = self.shards * (self.shard_size + 1)

    def node_ids(self) -> List[str]:
        ids: List[str] = []
        for shard in range(self.shards):
            ids.extend(shard_nodes(shard, self.shard_size))
        return ids


class ShardedTestbed(TestbedBase):
    """``shards`` independent CCS groups on one simulated network.

    Builds the multicast-domain topology, deploys one time-serving group
    per shard (each sharing one :class:`GradientSteering` instance across
    its replicas — the overlay's steering input), and exposes the
    consistent-hash ring the router and overlay both walk.
    """

    def __init__(
        self,
        *,
        shards: int = 3,
        shard_size: int = 3,
        seed: int = 0,
        cluster_config: Optional[ShardClusterConfig] = None,
        totem_config: Optional[TotemConfig] = None,
    ):
        config = cluster_config or ShardClusterConfig(
            shards=shards, shard_size=shard_size)
        self.shards = config.shards
        self.shard_size = config.shard_size
        self.cluster = Cluster(config, seed=seed)
        self._domains: Dict[str, frozenset] = {}
        memberships: Dict[str, List[str]] = {}
        for shard in range(self.shards):
            members = self.server_nodes_of(shard) + [self.client_node_of(shard)]
            domain = frozenset(members)
            for node_id in members:
                memberships[node_id] = members
                self._domains[node_id] = domain
        self._init_stack(self.cluster.sim, self.cluster.nodes, totem_config,
                         memberships)
        #: Set by the overlay: receives intercepted ShardSummary frames.
        self.summary_sink: Optional[SummarySink] = None
        #: Shared per-shard steering hooks (populated by deploy_shards).
        self.steerings: Dict[int, GradientSteering] = {}
        self.ring = HashRing(list(range(self.shards)))
        for node_id in self.node_ids:
            self._install_domain_filter(node_id)

    # -- topology helpers ----------------------------------------------

    def group_of(self, shard: int) -> str:
        return f"shard{shard}"

    def shard_of_group(self, group: str) -> int:
        return int(group[len("shard"):])

    def shard_of_node(self, node_id: str) -> int:
        return int(node_id[1:].split("n")[0].rstrip("c"))

    def server_nodes_of(self, shard: int) -> List[str]:
        return shard_server_nodes(shard, self.shard_size)

    def client_node_of(self, shard: int) -> str:
        return shard_client_node(shard)

    def primary_node_of(self, shard: int) -> Optional[str]:
        """The first live replica's node (deployment order) — the member
        that speaks for the shard on the overlay."""
        replicas = self.services.get(self.group_of(shard), {})
        for node_id in replicas:
            if self.node(node_id).alive:
                return node_id
        return None

    def shard_client(self, shard: int):
        """An RPC client homed on the shard's client node."""
        return self.client(self.client_node_of(shard))

    # -- deployment -----------------------------------------------------

    def deploy_shards(
        self,
        app_factory,
        *,
        fast_path: bool = True,
        max_staleness_us: int = 2_000,
        coalesce: bool = True,
        steering_proportion: float = 0.5,
        steering_max_step_us: int = 2_000,
        **deploy_kwargs,
    ) -> None:
        """Deploy ``app_factory`` as one active CTS group per shard.

        Every shard gets its own :class:`GradientSteering` (shared by
        the shard's replicas — the testbed hands one drift object to
        every factory), recorded in :attr:`steerings` for the overlay.
        """
        for shard in range(self.shards):
            steering = GradientSteering(
                steering_proportion, max_step_us=steering_max_step_us)
            self.steerings[shard] = steering
            self.deploy(
                self.group_of(shard), app_factory,
                nodes=self.server_nodes_of(shard),
                style="active", time_source="cts", drift=steering,
                fast_path=fast_path, max_staleness_us=max_staleness_us,
                coalesce=coalesce, **deploy_kwargs,
            )

    # -- group clock access ---------------------------------------------

    def estimate_group_us(self, shard: int) -> Optional[int]:
        """The shard's live group-clock estimate: the primary's physical
        clock plus its committed offset (what the fast path serves).
        None while the shard has no live primary or no committed round."""
        node_id = self.primary_node_of(shard)
        if node_id is None:
            return None
        replica = self.services[self.group_of(shard)][node_id]
        source = replica.time_source
        clock_state = getattr(source, "clock_state", None)
        if clock_state is None or clock_state.last_group_us is None:
            return None
        return self.node(node_id).read_clock_us() + clock_state.offset_us

    def build_summary(self, shard: int,
                      secret: Optional[str] = None) -> Optional[ShardSummary]:
        """The shard's current advertisement, signed if a secret is set."""
        node_id = self.primary_node_of(shard)
        if node_id is None:
            return None
        replica = self.services[self.group_of(shard)][node_id]
        source = replica.time_source
        clock_state = getattr(source, "clock_state", None)
        if clock_state is None or clock_state.last_group_us is None:
            return None
        value_us = self.node(node_id).read_clock_us() + clock_state.offset_us
        drift_bound = getattr(source, "drift_bound", None)
        error_us = int(drift_bound.max_error_us) if drift_bound else 0
        rounds = getattr(getattr(source, "stats", None), "rounds_completed", 0)
        summary = ShardSummary(
            shard=shard, group=self.group_of(shard), value_us=value_us,
            offset_us=clock_state.offset_us, round_seq=rounds,
            error_us=error_us)
        return summary.sign(secret)

    def send_summary(self, src_shard: int, dst_shard: int,
                     summary: ShardSummary) -> bool:
        """Unicast ``summary`` from ``src_shard``'s primary to
        ``dst_shard``'s primary.  Returns False if either side has no
        live primary (the overlay just skips the tick)."""
        src_node = self.primary_node_of(src_shard)
        dst_node = self.primary_node_of(dst_shard)
        if src_node is None or dst_node is None:
            return False
        self.node(src_node).iface.unicast(dst_node, summary, size_bytes=96)
        return True

    # -- multicast domains ----------------------------------------------

    def _install_domain_filter(self, node_id: str) -> None:
        """Wrap the node's receiver (the Totem processor installed by
        ``_init_stack``/``recover``) with the shard's multicast domain."""
        node = self.node(node_id)
        inner = node._receiver
        domain = self._domains[node_id]

        def filtered(frame: Frame,
                     node_id: str = node_id, inner=inner) -> None:
            payload = frame.payload
            if isinstance(payload, ShardSummary):
                # Overlay traffic: addressed to this node, never Totem's.
                if self.summary_sink is not None:
                    self.summary_sink(node_id, payload)
                return
            if frame.dst is None and frame.src not in domain:
                return  # another shard's multicast domain
            if inner is not None:
                inner(frame)

        node.set_receiver(filtered)

    def recover(self, node_id: str) -> None:
        """Restart a crashed node — and re-wrap the rebuilt processor's
        receiver with the shard's domain filter."""
        super().recover(node_id)
        self._install_domain_filter(node_id)
