"""``python -m repro chaos`` over a sharded topology.

Runs a scenario whose top-level ``shards:`` key is set: boots a
:class:`~repro.shard.cluster.ShardedTestbed` (N rings on one simulated
LAN), deploys the daemon's :class:`~repro.net.daemon.TimeApp` as one
active CTS group per shard, starts the gradient overlay, and hammers
the fleet through a :class:`~repro.shard.router.ShardRouter` — session
keys spread over the ring, floors carried across shards.

The fault schedule is the ordinary compiled
:class:`~repro.sim.faults.FaultPlan` (shard-scoped partitions expand in
:func:`~repro.chaos.scenario.compile_plan`), armed on the sim bed, so
the canonical schedule hash pins the run byte-identically.  On top of
the scripted faults the runner always performs a **migration drill**:
at 55% of the duration the last shard is removed from the routing ring
(its sessions migrate away, carrying their floors), and at 80% it is
re-added (they migrate back).  The drill exercises the oracle's
migration-monotonicity check in every run without touching the
scenario's schedule hash.

The verdict mirrors the live runner's: schedule + hash, client tallies,
the overlay's skew envelope, and the oracle's judgement — ``ok`` only
if zero violations, the whole schedule injected, and both replies *and*
cross-shard summaries were actually checked.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chaos.oracle import InvariantOracle
from ..chaos.scenario import ChaosScenario, compile_plan
from ..errors import ConfigurationError, RpcTimeout
from ..net.daemon import TimeApp
from ..obs.crossnode import TraceShardWriter
from .cluster import ShardedTestbed
from .overlay import GradientOverlay, OverlayConfig
from .router import ShardRouter

__all__ = ["run_shard_chaos"]


def _worker(router: ShardRouter, key: str, stop: Dict, tally: Dict,
            period_s: float):
    """One session hammering the fleet until the run stops."""
    session = router.session(key)
    while not stop["stop"]:
        try:
            yield from router.call(session)
            tally["calls"] += 1
        except RpcTimeout:
            tally["errors"] += 1
        yield router.bed.sim.timeout(period_s)


def run_shard_chaos(
    scenario: ChaosScenario,
    *,
    seed: int = 0,
    duration_s: Optional[float] = None,
    clients: Optional[int] = None,
    fast_path: bool = True,
    max_staleness_us: int = 2_000,
    artifacts_dir: Optional[str] = None,
) -> Dict:
    """Run one sharded chaos scenario; return the JSON-able verdict."""
    if scenario.shards is None:
        raise ConfigurationError(
            "run_shard_chaos needs a sharded scenario (top-level 'shards')")
    duration = duration_s if duration_s is not None else scenario.duration_s
    n_clients = clients if clients is not None else scenario.clients
    plan = compile_plan(scenario)
    oracle = InvariantOracle(staleness_budget_us=max_staleness_us)
    shard_writer: Optional[TraceShardWriter] = None
    if artifacts_dir is not None:
        # Per-node trace shards for post-mortem (CI uploads on failure).
        shard_writer = TraceShardWriter(artifacts_dir)

    bed = ShardedTestbed(shards=scenario.shards,
                         shard_size=scenario.shard_size, seed=seed)
    bed.chaos_seed = seed  # corrupt-state draws from the run's seed
    bed.deploy_shards(TimeApp, fast_path=fast_path,
                      max_staleness_us=max_staleness_us)
    overlay_config = OverlayConfig(secret=f"shards-{seed}")
    overlay = GradientOverlay(bed, overlay_config, oracle=oracle)
    router = ShardRouter(
        bed, oracle=oracle,
        oracle_gate=lambda: overlay.skew.warmed_up,
        rate_slack_us=overlay_config.hop_bound_us)
    try:
        bed.start()
        overlay.start()
        oracle.attach()
        plan.arm(bed)

        # The daemon-restart half of every recover event, in the same
        # kernel tick as bed.recover(): re-derive the shard from the
        # node name, re-add the replica (state transfer + integration
        # round) sharing the shard's steering hook.
        def _restart(node_id: str) -> None:
            oracle.note_recovery(node_id)
            shard = bed.shard_of_node(node_id)
            bed.add_replica(bed.group_of(shard), node_id, TimeApp,
                            style="active", time_source="cts",
                            drift=bed.steerings[shard],
                            fast_path=fast_path,
                            max_staleness_us=max_staleness_us)

        for event in plan.schedule():
            if event.kind == "recover":
                bed.sim.schedule(event.at_s, _restart, event.target[0])
            elif event.kind == "corrupt-state":
                bed.sim.schedule(event.at_s, oracle.note_corruption,
                                 event.target[0])

        # Migration drill: shrink the routing ring mid-run, grow it back.
        drill = {"removed": False, "restored": False}
        last_shard = scenario.shards - 1
        if scenario.shards >= 2:
            def _shrink() -> None:
                bed.ring.remove(last_shard)
                drill["removed"] = True

            def _grow() -> None:
                bed.ring.add(last_shard)
                drill["restored"] = True

            bed.sim.schedule(0.55 * duration, _shrink)
            bed.sim.schedule(0.80 * duration, _grow)

        stop = {"stop": False}
        tallies: List[Dict] = []
        for index in range(n_clients):
            tally = {"calls": 0, "errors": 0}
            tallies.append(tally)
            bed.sim.process(
                _worker(router, f"chaos{index}", stop, tally,
                        period_s=0.01),
                name=f"chaos{index}")
        bed.run(duration)
        stop["stop"] = True
        bed.run(0.5)  # drain in-flight calls and summaries
        oracle.finish(
            bed, groups=[bed.group_of(s) for s in range(scenario.shards)])

        calls = sum(t["calls"] for t in tallies)
        errors = sum(t["errors"] for t in tallies)
        migrations = sum(
            s.migrations for s in router.sessions.values())
        verdict = {
            "scenario": scenario.name,
            "seed": seed,
            "shards": scenario.shards,
            "shard_size": scenario.shard_size,
            "nodes": list(scenario.node_ids),
            "duration_s": duration,
            "schedule_hash": plan.schedule_hash(),
            "schedule": [event.canonical() for event in plan.schedule()],
            "faults_injected": len(plan.injected),
            "faults_pending": len(plan.events) - len(plan.injected),
            "migration_drill": dict(drill, migrations=migrations),
            "clients": {
                "count": n_clients,
                "calls": calls,
                "errors": errors,
                "error_rate": (errors / calls) if calls else 1.0,
            },
            "overlay": overlay.report(),
            "oracle": oracle.report(),
        }
        verdict["ok"] = (oracle.ok
                         and plan.done
                         and oracle.replies_checked > 0
                         and oracle.shard_summaries_checked > 0)
        return verdict
    finally:
        oracle.detach()
        if shard_writer is not None:
            shard_writer.close()
