"""The shard-routing tier: sessions onto shards, floors across them.

A :class:`ShardRouter` is the sharded deployment's gateway layer in
miniature: it owns one RPC client per shard (each homed on that shard's
client node, inside that shard's ring — rings are isolated multicast
domains, so a request can only enter a group's total order through a
member of its ring) and routes each session's operations to the shard
the consistent-hash ring assigns to the session key.

**Cross-shard monotone reads** ride the existing session floor: every
call passes the session's highest observed group-clock value as
``after_us``, and the serving replica's ``_serve`` ramps its group
clock above the floor before answering.  Within one shard the floor is
a no-op (the group clock already exceeds it); when the ring reassigns
the key — shard added/removed, i.e. a **migration** — the floor travels
with the session, so the destination shard blocks/ramps until its clock
clears the source shard's last answer.  The client therefore observes
one strictly increasing clock across the whole fleet, which is exactly
what :meth:`InvariantOracle.observe_reply`'s migration check verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..rpc import RpcClient, unwrap

__all__ = ["ShardSession", "ShardRouter"]


@dataclass
class ShardSession:
    """One client identity: its routing key and its monotonicity floor."""

    key: str
    #: Routing identity when it differs from ``key`` — zipf-skewed load
    #: generators give many sessions one hot identity so they land on
    #: the same shard while each keeps its own monotonicity floor.
    route_key: Optional[str] = None
    #: Highest group-clock value observed so far (None before the first
    #: reply) — passed as ``after_us`` on every call.
    floor_us: Optional[int] = None
    #: Shard that served the last reply.
    shard: Optional[int] = None
    #: Times the ring moved this session to a different shard.
    migrations: int = 0
    #: Reply transcript for tests: (shard, value_us).
    history: list = field(default_factory=list)


class ShardRouter:
    """Routes session calls to the owning shard, carrying the floor."""

    def __init__(self, bed, *, oracle=None, timeout: float = 1.0,
                 oracle_gate: Optional[Callable[[], bool]] = None,
                 rate_slack_us: int = 0):
        self.bed = bed
        self.ring = bed.ring
        self.oracle = oracle
        #: When set, replies feed the oracle only while it returns True
        #: — runners pass the overlay's ``warmed_up`` so the initial
        #: epoch-alignment jumps are not judged as staleness.
        self.oracle_gate = oracle_gate
        #: Extra rate slack for the oracle (the overlay's hop bound).
        self.rate_slack_us = rate_slack_us
        self.timeout = timeout
        self._clients: Dict[int, RpcClient] = {}
        self.sessions: Dict[str, ShardSession] = {}
        self.calls_routed = 0

    def session(self, key: str) -> ShardSession:
        session = self.sessions.get(key)
        if session is None:
            session = self.sessions[key] = ShardSession(key)
        return session

    def client_for(self, shard: int) -> RpcClient:
        client = self._clients.get(shard)
        if client is None:
            client = self._clients[shard] = self.bed.shard_client(shard)
        return client

    def owner_of(self, key: str) -> int:
        return self.ring.owner(key)

    def call(self, session: ShardSession, *, timeout: Optional[float] = None):
        """Generator: one ``gettimeofday`` through the owning shard.

        Returns the reply dict (``sec``/``usec``/``micros``).  Routes by
        the ring's *current* assignment, counts the migration if it
        changed, and advances the session floor from the reply.
        """
        shard = self.ring.owner(session.route_key or session.key)
        if session.shard is not None and shard != session.shard:
            session.migrations += 1
        client = self.client_for(shard)
        result = yield client.call(
            self.bed.group_of(shard), "gettimeofday", session.floor_us,
            timeout=self.timeout if timeout is None else timeout)
        value = unwrap(result)
        self.calls_routed += 1
        micros = value["micros"]
        if self.oracle is not None and (
                self.oracle_gate is None or self.oracle_gate()):
            self.oracle.observe_reply(
                session.key, micros, wall_s=self.bed.sim.now, shard=shard,
                rate_slack_us=self.rate_slack_us)
        session.history.append((shard, micros))
        if len(session.history) > 64:
            del session.history[:-64]
        if session.floor_us is None or micros > session.floor_us:
            session.floor_us = micros
        session.shard = shard
        return value
