"""Asyncio UDP backend of the transport contract.

Carries the frames of :mod:`repro.net.wire` over real datagram sockets
on an asyncio event loop.  The paper's broadcast LAN is emulated on
localhost (or any unicast network) by **per-peer unicast fan-out**: a
multicast is sent as one datagram per peer in the address book,
*including the sender's own address* — UDP multicast loops back, and
Totem relies on receiving its own broadcasts.

Sockets are plain non-blocking ``SOCK_DGRAM`` sockets serviced via
``loop.add_reader``, so attaching is synchronous (no coroutine needed
during setup, before the loop runs).  Binding to port 0 yields an
ephemeral port; the bound address is published into the shared address
book at attach time, which is how an in-process
:class:`~repro.net.testbed.LiveTestbed` wires N nodes together without
fixed ports: attach everything first, then start traffic.

Datagrams that fail frame validation (foreign senders, truncation, stale
wire versions) are counted and dropped — a live port is exposed to
arbitrary traffic, and dropping is the only safe response.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .. import obs, trace as trace_mod
from ..errors import FrameError, NetworkError, TransportError
from ..obs import flight
from ..replication.envelope import Envelope
from ..trace import TraceContext
from .transport import Transport, TransportPort
from .wire import encode_frame, decode_frame_ex

Address = Tuple[str, int]

M_DATAGRAMS_SENT = obs.REGISTRY.counter(
    "udp_datagrams_sent_total", "datagrams written per live port")
M_DATAGRAM_BYTES = obs.REGISTRY.counter(
    "udp_datagram_bytes_total", "encoded bytes written per live port",
    unit="bytes")
M_DATAGRAMS_RECEIVED = obs.REGISTRY.counter(
    "udp_datagrams_received_total", "valid frames received per live port")
M_DATAGRAMS_REJECTED = obs.REGISTRY.counter(
    "udp_datagrams_rejected_total",
    "datagrams dropped by frame validation, labelled by rejection reason "
    "(truncated, magic, version, length, source, trace, payload, trailing, "
    "auth-missing, auth-truncated, auth-forged, auth-replay)")


def _envelope_of(payload: Any) -> Optional[Envelope]:
    """The envelope a payload carries, if any: bare client traffic, or
    an ordered Totem regular message wrapping one."""
    if isinstance(payload, Envelope):
        return payload
    inner = getattr(payload, "payload", None)
    return inner if isinstance(inner, Envelope) else None


def _trace_for(payload: Any) -> Optional[TraceContext]:
    """The trace context to re-attach when transmitting ``payload``.

    Contexts ride frames, not envelopes, so a message crossing the total
    order loses its frame; the receive path parks the context in the
    process-wide baggage keyed by envelope identity, and this lookup
    restores it on the way out.  Zero-cost while nothing is traced (the
    baggage stays empty).
    """
    if not trace_mod.BAGGAGE:
        return None
    envelope = _envelope_of(payload)
    if envelope is None:
        return None
    return trace_mod.BAGGAGE.get(envelope.header.message_id)


@dataclass
class LiveFrame:
    """One validated frame off the wire.

    Exposes the contract fields (``src``, ``payload``) plus the sender's
    socket address, which the daemon's client gateway uses to route
    replies to callers outside the peer address book, and the optional
    trace context carried by the v3 wire format.
    """

    src: str
    payload: Any
    size_bytes: int
    addr: Address
    trace: Optional[TraceContext] = None


class UdpPort(TransportPort):
    """One node's bound UDP socket."""

    def __init__(self, transport: "UdpTransport", node_id: str,
                 deliver: Callable[[LiveFrame], None], sock: socket.socket):
        self.transport = transport
        self.node_id = node_id
        self._deliver = deliver
        self.sock = sock
        #: Shared :class:`~repro.net.auth.WireAuthenticator` (or None):
        #: signs every frame this port sends and verifies every frame it
        #: receives.
        self.auth = transport.auth
        self.up = True
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.frames_rejected = 0
        #: Rejection tallies keyed by :class:`~repro.errors.FrameError`
        #: reason code (mirrors ``udp_datagrams_rejected_total``).
        self.rejected_by_reason: Dict[str, int] = {}

    @property
    def address(self) -> Address:
        return self.sock.getsockname()

    # -- sending ----------------------------------------------------------

    def unicast(self, dst: str, payload: Any, size_bytes: int = 128) -> None:
        """Send to one peer.  Unknown peers are dropped, matching the
        simulated LAN's behaviour for detached destinations."""
        self._check_up()
        addr = self.transport.peers.get(dst)
        if addr is None:
            return
        trace = _trace_for(payload)
        self._send(encode_frame(self.node_id, payload, trace, self.auth),
                   addr, payload, trace)

    def multicast(self, payload: Any, size_bytes: int = 128) -> None:
        """Fan out to every peer in the address book, self included."""
        self._check_up()
        trace = _trace_for(payload)
        data = encode_frame(self.node_id, payload, trace, self.auth)
        for addr in self.transport.peers.values():
            self._send(data, addr, payload, trace)

    def sendto(self, addr: Address, payload: Any) -> None:
        """Send a framed payload to an explicit socket address (used by
        the daemon to answer clients that are not ring peers)."""
        self._check_up()
        trace = _trace_for(payload)
        self._send(encode_frame(self.node_id, payload, trace, self.auth),
                   addr, payload, trace)

    def _check_up(self) -> None:
        if not self.up:
            raise NetworkError(f"interface {self.node_id!r} is down")

    def _send(self, data: bytes, addr: Address, payload: Any = None,
              trace: Optional[TraceContext] = None) -> None:
        try:
            self.sock.sendto(data, addr)
        except OSError as exc:
            raise TransportError(
                f"{self.node_id!r} failed to send to {addr}: {exc}") from exc
        self.frames_sent += 1
        self.bytes_sent += len(data)
        if obs.REGISTRY.enabled:
            M_DATAGRAMS_SENT.inc(node=self.node_id)
            M_DATAGRAM_BYTES.inc(len(data), node=self.node_id)
        if flight.RECORDER.enabled:
            flight.RECORDER.record_frame(
                self.node_id, "tx", addr, type(payload).__name__, len(data),
                trace.trace_id if trace is not None else None)

    # -- receiving ---------------------------------------------------------

    def _on_readable(self) -> None:
        # Drain everything available; the reader callback fires once per
        # loop iteration, not once per datagram.
        while True:
            try:
                data, addr = self.sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us during detach
            if not self.up:
                continue
            try:
                src, payload, trace = decode_frame_ex(
                    data, auth=self.auth, auth_node=self.node_id)
            except FrameError as exc:
                self.frames_rejected += 1
                reason = getattr(exc, "reason", "malformed")
                self.rejected_by_reason[reason] = (
                    self.rejected_by_reason.get(reason, 0) + 1)
                if obs.REGISTRY.enabled:
                    M_DATAGRAMS_REJECTED.inc(node=self.node_id,
                                             reason=reason)
                continue
            self.frames_received += 1
            if trace is not None:
                # Park the context by envelope identity so it survives
                # the hop across the total order (see _trace_for).
                envelope = _envelope_of(payload)
                if envelope is not None:
                    trace_mod.BAGGAGE.put(envelope.header.message_id, trace)
            if obs.REGISTRY.enabled:
                M_DATAGRAMS_RECEIVED.inc(node=self.node_id)
            if flight.RECORDER.enabled:
                flight.RECORDER.record_frame(
                    self.node_id, "rx", addr, type(payload).__name__,
                    len(data), trace.trace_id if trace is not None else None)
            self._deliver(LiveFrame(src, payload, len(data), addr, trace))


class UdpTransport(Transport):
    """A set of UDP ports sharing one asyncio loop and one address book.

    ``peers`` maps node id to ``(host, port)``.  In multi-process
    deployment it is the daemon's ``--peers`` list; in-process it starts
    empty and fills as nodes attach on ephemeral ports.  ``bind_host``
    and ``bind_ports`` configure where :meth:`attach` binds (attach keeps
    the two-argument contract signature, so bind configuration lives on
    the transport).
    """

    def __init__(
        self,
        loop,
        *,
        peers: Optional[Dict[str, Address]] = None,
        bind_host: str = "127.0.0.1",
        bind_ports: Optional[Dict[str, int]] = None,
        auth=None,
    ):
        self.loop = loop
        self.peers: Dict[str, Address] = dict(peers or {})
        self.bind_host = bind_host
        self.bind_ports = dict(bind_ports or {})
        #: Optional :class:`~repro.net.auth.WireAuthenticator` shared by
        #: every port on this transport (authenticated Byzantine mode).
        self.auth = auth
        self._ports: Dict[str, UdpPort] = {}

    # -- topology ---------------------------------------------------------

    def attach(self, node_id: str, deliver: Callable[[LiveFrame], None]) -> UdpPort:
        if node_id in self._ports:
            raise NetworkError(f"node {node_id!r} already attached")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setblocking(False)
            sock.bind((self.bind_host, self.bind_ports.get(node_id, 0)))
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot bind {node_id!r}: {exc}") from exc
        port = UdpPort(self, node_id, deliver, sock)
        self.loop.add_reader(sock.fileno(), port._on_readable)
        self._ports[node_id] = port
        # Publish the (possibly ephemeral) bound address so peers — and
        # the node's own multicast loopback — can reach it.
        self.peers[node_id] = port.address
        return port

    def detach(self, node_id: str) -> None:
        port = self._ports.pop(node_id, None)
        if port is None:
            return
        port.up = False
        try:
            self.loop.remove_reader(port.sock.fileno())
        except (OSError, ValueError):
            pass
        port.sock.close()

    def close(self) -> None:
        for node_id in list(self._ports):
            self.detach(node_id)
