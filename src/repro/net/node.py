"""Live hosts: the sim :class:`~repro.sim.node.Node` on real substrate.

:class:`~repro.sim.node.Node` is already substrate-agnostic — it builds
its clock from ``sim.now``, attaches to whatever transport it is given,
and spawns processes through the kernel.  Handing it a
:class:`~repro.net.kernel.LiveKernel` and a
:class:`~repro.net.udp.UdpTransport` therefore yields a host whose
timeouts are real sleeps, whose frames cross real sockets, and whose
clock moves with the wall.  :class:`LiveNode` makes that configuration a
named thing: it swaps the clock for an explicit
:class:`~repro.net.clock.WallClock` and exposes the bound socket
address.

Fail-stop semantics carry over: :meth:`~repro.sim.node.Node.crash`
kills the node's kernel processes and silences its port (the socket
stays bound but inbound frames are dropped), which is what the live
failover test uses to kill a primary.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim.node import Node
from .clock import WallClock
from .kernel import LiveKernel
from .udp import Address, UdpTransport


class LiveNode(Node):
    """One live host: wall clock, UDP port, real-time processes."""

    def __init__(
        self,
        kernel: LiveKernel,
        node_id: str,
        transport: UdpTransport,
        cpu_rng: Optional[random.Random] = None,
        *,
        clock_epoch_us: int = 0,
        clock_drift_ppm: float = 0.0,
        clock_granularity_us: int = 1,
        cpu_factor: float = 1.0,
        cpu_jitter: float = 0.05,
    ):
        super().__init__(
            kernel,
            node_id,
            transport,
            cpu_rng if cpu_rng is not None else random.Random(node_id),
            clock_epoch_us=clock_epoch_us,
            clock_drift_ppm=clock_drift_ppm,
            clock_granularity_us=clock_granularity_us,
            cpu_factor=cpu_factor,
            cpu_jitter=cpu_jitter,
        )
        # Same parameters, explicit wall-clock type (the base class built
        # an equivalent clock on kernel time; keep one canonical object).
        self.clock = WallClock(
            kernel,
            epoch_us=clock_epoch_us,
            drift_ppm=clock_drift_ppm,
            granularity_us=clock_granularity_us,
            name=f"clock.{node_id}",
        )

    @property
    def address(self) -> Address:
        """The node's bound UDP address."""
        return self.iface.address
