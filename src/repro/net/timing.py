"""Totem timing profile for live (real-time) operation.

The default :class:`~repro.totem.config.TotemConfig` is tuned to the
paper's quiet dedicated Ethernet: a 1.5 ms token-retransmit timeout and
a 5 ms token-loss timeout are realistic there, but on a shared machine
an asyncio timer can easily be tens of milliseconds late (GC pauses,
scheduler jitter, a busy CI host), which would produce constant spurious
token losses and membership churn.  The live profile scales the timeouts
into a range where only a real failure trips them, trading failure
detection latency (~a quarter second instead of ~5 ms) for ring
stability — the same trade production group-communication systems make.
"""

from __future__ import annotations

from ..totem.config import TotemConfig


def live_totem_config(**overrides) -> TotemConfig:
    """A :class:`TotemConfig` sized for wall-clock scheduling jitter.

    Keyword overrides replace individual fields (e.g. a test that wants
    faster failover can lower ``token_loss_timeout_s``).
    """
    params = dict(
        # Processing delays model CPU cost in the simulator; live nodes
        # pay the real cost, so the model contributes nothing but lag.
        token_processing_s=0.0,
        message_processing_s=0.0,
        token_retransmit_timeout_s=0.05,
        token_loss_timeout_s=0.25,
        token_retransmit_limit=3,
        join_interval_s=0.05,
        fail_after_join_ticks=4,
        gather_timeout_s=2.0,
        beacon_interval_s=0.5,
    )
    params.update(overrides)
    config = TotemConfig(**params)
    config.validate()
    return config
