"""Wall clocks for live nodes.

:class:`~repro.sim.clock.HardwareClock` is parameterized entirely by the
``.now`` of the object it is built on — it never touches the event heap.
:class:`WallClock` exploits that: it is a hardware clock whose time base
advances in real (monotonic OS) time instead of virtual time, while the
injected epoch offset and drift rate still apply.  Live nodes therefore
exhibit the same Figure-1-style inconsistency the consistent time
service exists to correct — unsynchronized epochs, divergent rates — on
top of a clock that actually moves with the wall.

The time base is normally the node's :class:`~repro.net.kernel.LiveKernel`
(so clock time and kernel time share one zero point, and
``true_offset_us`` keeps its meaning of "offset from real time since
start").  :class:`MonotonicTimeBase` is a standalone substitute for
processes with no kernel, such as the ``repro call`` client measuring
request latency.
"""

from __future__ import annotations

import time
from typing import Optional

from ..sim.clock import HardwareClock


class MonotonicTimeBase:
    """A kernel-less time base: seconds since construction, monotonic."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0


class WallClock(HardwareClock):
    """A hardware clock that advances in real time.

    ``time_base`` is anything with a monotonic ``.now`` in seconds — pass
    the node's :class:`~repro.net.kernel.LiveKernel` so clock readings and
    kernel timestamps share a timescale; omit it for a standalone clock.
    ``epoch_us`` and ``drift_ppm`` inject the per-node offset and rate
    error, exactly as in the simulated cluster.
    """

    def __init__(
        self,
        time_base: Optional[object] = None,
        *,
        epoch_us: int = 0,
        drift_ppm: float = 0.0,
        granularity_us: int = 1,
        name: str = "",
    ):
        super().__init__(
            time_base if time_base is not None else MonotonicTimeBase(),
            epoch_us=epoch_us,
            drift_ppm=drift_ppm,
            granularity_us=granularity_us,
            name=name,
        )
