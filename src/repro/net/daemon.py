"""The ``repro serve`` node daemon: one group member per OS process.

Hosts one live node — Totem ring member, group runtime, and a replica of
the time-serving application — on an asyncio event loop, reachable over
UDP.  Three of these processes on localhost are the paper's testbed with
real message passing (the LLFT deployment model from the same group):

.. code-block:: console

   repro serve --node n0 --peers n0=127.0.0.1:9000,n1=127.0.0.1:9001,n2=127.0.0.1:9002
   repro serve --node n1 --peers ...   # same peer map on every node
   repro serve --node n2 --peers ...
   repro call gettimeofday --connect 127.0.0.1:9000

Client traffic rides the same wire format as the ring: a client sends a
framed ``REQUEST`` envelope straight to any daemon's UDP port.  The
**client gateway** intercepts such frames before Totem sees them (bare
envelopes are not Totem wire messages), records the sender's socket
address, and injects the request into the total order through a local
endpoint for the client's group — exactly what :class:`~repro.rpc.client.RpcClient`
does in-process.  Replies addressed to that client group come back via
the total order on every member, but only the gateway holding the route
forwards them to the caller's address, so the client receives one reply
per replica (active replication answers from every member — that is
what lets ``repro call`` verify the replies are identical).
"""

from __future__ import annotations

import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs, trace
from ..control.admission import (
    OVERLOADED,
    AdmissionConfig,
    AdmissionController,
    overloaded_value,
)
from ..obs import flight
from ..obs.crossnode import TraceShardWriter
from ..obs.http import MetricsHttpServer
from ..replication.envelope import Envelope, MsgType, make_envelope
from ..replication.group import GroupEndpoint, GroupRuntime
from ..replication.replica import Application
from ..rpc.messages import Result
from ..testbed import STYLES, TestbedBase
from ..totem import TotemConfig, TotemProcessor
from .kernel import LiveKernel
from .node import LiveNode
from .timing import live_totem_config
from .udp import Address, LiveFrame, UdpTransport


class TimeApp(Application):
    """The daemon's served application: the paper's measurement server.

    ``gettimeofday`` answers with the *group* clock — identical on every
    replica by construction; ``physical`` answers with the replica's own
    physical clock — different on every replica, the Figure-1 hazard the
    service exists to remove.  Having both lets ``repro call`` demo the
    difference against a running group.
    """

    def gettimeofday(self, ctx, after_us=None):
        value = yield ctx.gettimeofday(after_us=after_us)
        return {"sec": value.seconds, "usec": value.microseconds,
                "micros": value.micros}

    def physical(self, ctx):
        yield ctx.compute(0.0)
        value = ctx.physical_clock()
        return {"sec": value.seconds, "usec": value.microseconds,
                "micros": value.micros}

    def ping(self, ctx):
        yield ctx.compute(0.0)
        return "pong"

    def get_state(self):
        return None

    def set_state(self, state):
        pass


@dataclass
class DaemonConfig:
    """Everything one ``repro serve`` process needs."""

    node_id: str
    #: Full ring address book, *including this node* (every daemon gets
    #: the same map; each binds its own entry).
    peers: Dict[str, Address]
    group: str = "timesvc"
    style: str = "active"
    time_source: str = "cts"
    #: Round amortization: concurrent clock operations share CCS rounds.
    coalesce: bool = True
    #: Serve drift-bounded reads locally between rounds (CTS only).
    fast_path: bool = False
    #: Staleness budget for the fast path, microseconds.
    max_staleness_us: int = 2_000
    #: Injected wall-clock error (the live Figure-1 inconsistency).
    clock_epoch_us: int = 0
    clock_drift_ppm: float = 0.0
    #: Join an already-running group (recovering/added replica).
    join_existing: bool = False
    totem: Optional[TotemConfig] = None
    extra_style_kwargs: Dict = field(default_factory=dict)
    #: Serve ``/metrics`` (Prometheus text) on this port (None = off).
    metrics_port: Optional[int] = None
    #: Write per-node trace shards (JSONL) into this directory and keep
    #: the flight recorder running (None = off).
    trace_dir: Optional[str] = None
    #: Shared secret for authenticated (Byzantine-tolerant) rings: every
    #: daemon derives the same HMAC key, signs every ring frame, and the
    #: time service arms its winner sanity filter (None = off).  All
    #: peers must agree — an unauthenticated peer's frames are rejected.
    auth_key: Optional[str] = None
    #: Shed-before-collapse admission control at the gateway (bounded
    #: queues, fair dequeue, typed Overloaded replies).  On by default;
    #: ``admission_config`` overrides the knobs (see docs/operations.md).
    admission: bool = True
    admission_config: Optional[AdmissionConfig] = None


M_GW_REQUESTS = obs.REGISTRY.counter(
    "gateway_requests_total", "client requests injected into the order")
M_GW_DUPLICATES = obs.REGISTRY.counter(
    "gateway_duplicate_requests_total",
    "client retries deduplicated by operation id")
M_GW_REPLAYED = obs.REGISTRY.counter(
    "gateway_replies_replayed_total",
    "recorded replies re-sent to a retrying client")
M_GW_DEDUP_EVICTIONS = obs.REGISTRY.counter(
    "gateway_dedup_evictions_total",
    "idempotency-window entries evicted, by reason (window|ttl)")

#: An operation id as seen by the gateway.  The *service* group is part
#: of the identity: a sharded deployment fronts many groups, and the
#: same client may reuse (conn, seq) counters against different shards
#: — without the group a retry against shard B could replay shard A's
#: recorded reply.
_OpKey = Tuple[str, str, int, int]  # (service group, client group, conn, seq)


class ClientGateway:
    """Bridges off-ring callers into the group's total order.

    Client retries re-send the same operation id ``(conn_id, seq)``;
    executing them again would be both wasteful and observable (a second
    execution returns a *later* group-clock value, so mixing replies
    across executions could fake staleness or disagreement).  The
    gateway therefore keeps a bounded idempotency window: a repeated
    operation id refreshes the reply route and replays the recorded
    replies instead of re-entering the total order.

    The window is bounded **two ways**: by entry count (a zipf-heavy
    client population with millions of one-shot identities would
    otherwise grow it without limit) and by age (an entry older than
    ``DEDUP_TTL_S`` no longer protects anything — the client's own
    retry deadline has long expired — so holding it only wastes memory).
    Oldest entries are evicted first and every eviction is counted.
    """

    #: Operation ids remembered for deduplication (oldest evicted first).
    DEDUP_WINDOW = 512
    #: Seconds an operation id stays in the window before it expires.
    #: Far beyond any client's retry deadline (LiveCaller defaults 2 s).
    DEDUP_TTL_S = 60.0
    #: Reply routes remembered (client group -> last socket address).
    ROUTES_CAP = 8192

    def __init__(self, runtime: GroupRuntime, port, *,
                 node_id: str = "?", clock=None,
                 admission: Optional[AdmissionController] = None) -> None:
        self.runtime = runtime
        self.port = port
        self.node_id = node_id
        #: Shed-before-collapse controller (None = admit everything).
        self.admission = admission
        #: client group -> last known socket address (LRU-bounded).
        self.routes: "OrderedDict[str, Address]" = OrderedDict()
        self._endpoints: Dict[str, GroupEndpoint] = {}
        #: operation id -> replies forwarded so far (replayed on retry).
        self._seen: "OrderedDict[_OpKey, List[Envelope]]" = OrderedDict()
        #: operation id -> clock reading at first sight (drives the TTL).
        self._seen_at: Dict[_OpKey, float] = {}
        sim = getattr(runtime, "sim", None)
        self._clock = clock or (
            (lambda: sim.now) if sim is not None else time.monotonic)
        self.requests_injected = 0
        self.requests_deduplicated = 0
        self.requests_shed = 0
        self.replies_forwarded = 0
        self.replies_replayed = 0
        self.dedup_evictions = 0

    def handle(self, frame: LiveFrame) -> None:
        envelope: Envelope = frame.payload
        header = envelope.header
        client_group = header.src_grp
        self._record_route(client_group, frame.addr)
        now = self._clock()
        self._expire_seen(now)
        key: _OpKey = (header.dst_grp, client_group,
                       header.conn_id, header.msg_seq_num)
        if frame.trace is not None:
            # Replies to this operation travel as (service group ->
            # client group) envelopes with the same (conn, seq); park the
            # context under that identity so the REPLY frames every
            # replica multicasts — and the forward to the caller — carry
            # the trace without any per-layer plumbing.
            trace.BAGGAGE.put(
                (header.dst_grp, client_group, header.conn_id,
                 header.msg_seq_num),
                frame.trace.child(f"gw.{self.node_id}"))
        recorded = self._seen.get(key)
        if recorded is not None:
            # A retry of an operation already in (or through) the order:
            # do not execute it again — replay what the group already
            # answered to the refreshed route.  The retry also refreshes
            # the entry's age: the window stays last-touch ordered, so
            # TTL expiry below can pop strictly from the front.
            self._seen.move_to_end(key)
            self._seen_at[key] = now
            self.requests_deduplicated += 1
            if obs.REGISTRY.enabled:
                M_GW_DUPLICATES.inc(node=self.node_id)
            if frame.trace is not None and trace.TRACER.enabled:
                trace.emit("op.gateway", self.node_id,
                           trace=frame.trace.trace_id, op_group=client_group,
                           conn=header.conn_id, seq=header.msg_seq_num,
                           dedup=True, t=self.runtime.sim.now)
            for reply in recorded:
                self.port.sendto(frame.addr, reply)
                self.replies_replayed += 1
                if obs.REGISTRY.enabled:
                    M_GW_REPLAYED.inc(node=self.node_id)
            return
        self._seen[key] = []
        self._seen_at[key] = now
        while len(self._seen) > self.DEDUP_WINDOW:
            self._evict_oldest("window")
        if frame.trace is not None and trace.TRACER.enabled:
            trace.emit("op.gateway", self.node_id,
                       trace=frame.trace.trace_id, op_group=client_group,
                       conn=header.conn_id, seq=header.msg_seq_num,
                       dedup=False, t=self.runtime.sim.now)
        if self.admission is None:
            self._dispatch(client_group, envelope)
        else:
            self.admission.submit(
                client_group, key,
                lambda: self._dispatch(client_group, envelope),
                lambda retry_after_s: self._shed(
                    key, client_group, frame.addr, header, retry_after_s))

    def _dispatch(self, client_group: str, envelope: Envelope) -> None:
        self._endpoint_for(client_group).mcast(envelope)
        self.requests_injected += 1
        if obs.REGISTRY.enabled:
            M_GW_REQUESTS.inc(node=self.node_id)

    def _shed(self, key: _OpKey, client_group: str, addr: Address,
              header, retry_after_s: float) -> None:
        """Answer ``Overloaded`` instead of entering the order.

        The operation never executed, so it must also leave the
        idempotency window — the client's *retry* (after backing off)
        is a fresh admission attempt, not a replay of nothing.
        """
        self._seen.pop(key, None)
        self._seen_at.pop(key, None)
        reply = make_envelope(
            MsgType.REPLY, header.dst_grp, header.src_grp,
            header.conn_id, header.msg_seq_num, self.node_id,
            body=Result(value=overloaded_value(retry_after_s),
                        error=OVERLOADED))
        self.port.sendto(addr, reply)
        self.requests_shed += 1

    def _record_route(self, client_group: str, addr: Address) -> None:
        self.routes[client_group] = addr
        self.routes.move_to_end(client_group)
        while len(self.routes) > self.ROUTES_CAP:
            self.routes.popitem(last=False)

    def _expire_seen(self, now: float) -> None:
        horizon = now - self.DEDUP_TTL_S
        while self._seen:
            oldest = next(iter(self._seen))
            if self._seen_at[oldest] > horizon:
                break
            self._evict_oldest("ttl")

    def _evict_oldest(self, reason: str) -> None:
        key, _ = self._seen.popitem(last=False)
        self._seen_at.pop(key, None)
        self.dedup_evictions += 1
        if obs.REGISTRY.enabled:
            M_GW_DEDUP_EVICTIONS.inc(node=self.node_id, reason=reason)

    def _endpoint_for(self, client_group: str) -> GroupEndpoint:
        endpoint = self._endpoints.get(client_group)
        if endpoint is None:
            endpoint = self.runtime.endpoint(client_group)
            endpoint.on_message = (
                lambda envelope, group=client_group: self._forward(group, envelope))
            endpoint.join()
            self._endpoints[client_group] = endpoint
        return endpoint

    def _forward(self, client_group: str, envelope: Envelope) -> None:
        address = self.routes.get(client_group)
        if address is None:
            return
        self.port.sendto(address, envelope)
        self.replies_forwarded += 1
        header = envelope.header
        if trace.TRACER.enabled:
            context = trace.BAGGAGE.get(envelope.header.message_id)
            if context is not None:
                trace.emit("op.reply", self.node_id,
                           trace=context.trace_id, conn=header.conn_id,
                           seq=header.msg_seq_num, replica=envelope.sender,
                           t=self.runtime.sim.now)
        # Replies travel service group -> client group, so the service
        # group is the envelope's *source* here.
        key: _OpKey = (header.src_grp, client_group,
                       header.conn_id, header.msg_seq_num)
        recorded = self._seen.get(key)
        if recorded is not None:
            recorded.append(envelope)
        if self.admission is not None:
            # First reply for the op frees its admission slot and pumps
            # the bounded queues (idempotent for the later replicas'
            # replies to the same op).
            self.admission.complete(key)


class NodeDaemon:
    """One live group member: kernel, node, ring, replica, gateway."""

    def __init__(self, config: DaemonConfig,
                 kernel: Optional[LiveKernel] = None):
        if config.node_id not in config.peers:
            raise KeyError(
                f"--peers must include this node ({config.node_id!r})")
        if config.style not in STYLES:
            raise KeyError(
                f"unknown style {config.style!r}; choose from {sorted(STYLES)}")
        self.config = config
        self.kernel = kernel or LiveKernel()
        host, port = config.peers[config.node_id]
        self.auth = None
        if config.auth_key is not None:
            from .auth import WireAuthenticator

            self.auth = WireAuthenticator.from_secret(
                config.auth_key, group=config.group)
        self.transport = UdpTransport(
            self.kernel.loop,
            peers=config.peers,
            bind_host=host,
            bind_ports={config.node_id: port},
            auth=self.auth,
        )
        self.node = LiveNode(
            self.kernel,
            config.node_id,
            self.transport,
            clock_epoch_us=config.clock_epoch_us,
            clock_drift_ppm=config.clock_drift_ppm,
        )
        self.processor = TotemProcessor(
            self.node,
            config.totem or live_totem_config(),
            static_membership=sorted(config.peers),
        )
        self.runtime = GroupRuntime(self.processor)
        # The Totem processor installed itself as the node's receiver;
        # interpose the gateway in front of it.  Bare envelopes are
        # client traffic (ring peers always wrap envelopes in Totem
        # regular messages); everything else is ring traffic.
        totem_receiver = self.node._receiver
        admission = None
        if config.admission:
            admission = AdmissionController(
                config.admission_config, node_id=config.node_id,
                clock=lambda: self.kernel.now)
        self.gateway = ClientGateway(self.runtime, self.node.iface,
                                     node_id=config.node_id,
                                     admission=admission)

        def dispatch(frame: LiveFrame) -> None:
            if isinstance(frame.payload, Envelope):
                self.gateway.handle(frame)
            else:
                totem_receiver(frame)

        self.node.set_receiver(dispatch)
        # Same factory path as the testbeds, so daemon replicas and
        # testbed replicas are configured identically.
        factory = TestbedBase._time_source_factory(
            config.time_source, config.style, None,
            coalesce=config.coalesce, fast_path=config.fast_path,
            max_staleness_us=config.max_staleness_us,
            byzantine=config.auth_key is not None)
        self.replica = STYLES[config.style](
            self.runtime, config.group, TimeApp(), factory,
            join_existing=config.join_existing,
            **config.extra_style_kwargs,
        )
        self._started = False
        self._metrics_server: Optional[MetricsHttpServer] = None
        self._shard_writer: Optional[TraceShardWriter] = None

    @property
    def address(self) -> Address:
        return self.node.address

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.processor.start()
        self._join_when_quorate()

    def _join_when_quorate(self) -> None:
        """Join the group once the ring holds a majority of the peers.

        Daemons boot at genuinely different wall-clock times, so a node
        may briefly sit in a singleton ring before the rings merge.
        Joining the group from such a minority ring would be rejected by
        the primary-component rule anyway (the replica would poll with
        GET_STATE until the merge); waiting for quorum keeps the group
        joins in one merged total order and the cold start clean.
        """
        members = self.processor.members
        if 2 * len(members) > len(self.config.peers):
            self._log(f"ring quorate {members}; joining group")
            self.replica.start()
        else:
            self.kernel.schedule(0.05, self._join_when_quorate)

    def serve_forever(self) -> None:
        """Start the stack and run the loop until stopped (SIGTERM/INT)."""
        import signal

        loop = self.kernel.loop
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, loop.stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        self.start_observability()
        self.start()
        self._log(f"serving group {self.config.group!r} "
                  f"({self.config.style}) on {self.address[0]}:{self.address[1]}")
        self.kernel.schedule(1.0, self._report_failures)
        try:
            loop.run_forever()
        except BaseException:
            self._dump_flight("daemon-crash")
            raise
        finally:
            self.shutdown()

    def start_observability(self) -> None:
        """Bring up the observability sidecars the config asks for:
        metrics registry + scrape endpoint, trace shards, flight ring."""
        config = self.config
        if config.metrics_port is not None or config.trace_dir is not None:
            if not obs.REGISTRY.enabled:
                obs.REGISTRY.enable(clock=lambda: self.kernel.now)
        if config.metrics_port is not None:
            self._metrics_server = MetricsHttpServer(port=config.metrics_port)
            task = self.kernel.loop.create_task(self._metrics_server.start())
            task.add_done_callback(self._metrics_started)
        if config.trace_dir is not None:
            self._shard_writer = TraceShardWriter(config.trace_dir)
            flight.RECORDER.start()

    def _metrics_started(self, task) -> None:
        exc = task.exception()
        if exc is not None:
            self._log(f"metrics endpoint failed to start: {exc!r}")
            self._metrics_server = None
        else:
            self._log("metrics endpoint on port "
                      f"{self._metrics_server.bound_port}")

    def _report_failures(self) -> None:
        failures = self.kernel.drain_failures()
        for failure in failures:
            self._log(f"unhandled protocol failure: {failure!r}")
        if failures and self.config.trace_dir is not None:
            self._dump_flight("protocol-failure",
                              context={"failures": [repr(f) for f in failures]})
        if self.node.alive:
            self.kernel.schedule(1.0, self._report_failures)

    def _dump_flight(self, reason: str, context: Optional[Dict] = None) -> None:
        if self.config.trace_dir is None or not flight.RECORDER.enabled:
            return
        from pathlib import Path

        path = (Path(self.config.trace_dir)
                / f"flight-{self.config.node_id}-{reason}.json")
        dumped = flight.RECORDER.dump(
            path, reason=reason,
            context={"node": self.config.node_id, **(context or {})})
        self._log(f"flight recorder dumped to {dumped}")

    def _log(self, message: str) -> None:
        print(f"[repro serve {self.config.node_id}] {message}",
              file=sys.stderr, flush=True)

    def shutdown(self) -> None:
        if self._shard_writer is not None:
            self._shard_writer.close()
            self._shard_writer = None
            flight.RECORDER.stop()
        self.transport.close()
        self.kernel.close()
