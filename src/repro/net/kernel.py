"""The simulation kernel's event API, re-implemented in real time.

The entire protocol stack — Totem, the replication layer, the time
service — is written against :class:`repro.sim.kernel.Simulator`: it
creates events and timeouts, spawns generator processes, schedules
callbacks, and reads ``sim.now``.  :class:`LiveKernel` keeps that exact
API but maps it onto an asyncio event loop:

* ``now`` is the loop's monotonic clock, zeroed at construction, so all
  kernel timestamps remain "seconds since start" just like the sim;
* queueing an event becomes ``loop.call_later``; firing one replays the
  body of :meth:`Simulator.step` (lazy trigger values, defused-event
  skipping, unheeded-failure detection);
* ``run(until=...)`` drives the loop with ``run_until_complete`` of a
  real sleep, and ``run_process`` blocks on a loop future resolved by
  the process's completion callback.

Because only the *scheduling* substrate changes, every object built on
events — :class:`~repro.sim.process.Store`, locks, Totem timers, CCS
rounds — runs unmodified on either kernel.  The one semantic difference
is that URGENT/NORMAL priority ties cannot be enforced against a real
clock; asyncio's FIFO ordering of same-deadline timers is the live
equivalent, and real timestamps never tie exactly anyway.

Unheeded failures (a failed event nobody waits on) cannot be raised from
inside a loop callback without asyncio swallowing them, so they are
collected and re-raised at the next :meth:`run` / :meth:`run_process`
boundary; a daemon running the loop directly drains them via
:meth:`drain_failures`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Generator, List, Optional

from ..errors import SimulationError
from ..sim.kernel import _PENDING, Event, Process, Simulator


class LiveKernel(Simulator):
    """Drop-in :class:`~repro.sim.kernel.Simulator` over an asyncio loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        super().__init__()
        self.loop = loop or asyncio.new_event_loop()
        self._t0 = self.loop.time()
        self._failures: List[BaseException] = []
        self._closed = False

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Real seconds since kernel construction (monotonic)."""
        return self.loop.time() - self._t0

    # -- queueing ------------------------------------------------------

    def _queue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        # asyncio orders same-deadline timers FIFO, which matches the sim
        # heap's stable-sequence tie-break; the priority lane collapses.
        self.loop.call_later(max(0.0, delay), self._fire_event, event)

    def _fire_event(self, event: Event) -> None:
        # Mirrors the body of Simulator.step for one already-due event.
        if event._value is _PENDING:
            event._ok = getattr(event, "_delayed_ok", True)
            event._value = getattr(event, "_delayed_value", None)
        callbacks = event.callbacks
        event.callbacks = None
        if getattr(event, "_defused", False):
            return
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif event._ok is False and not getattr(event, "_fail_silently", False):
            self._failures.append(event._value)

    # -- failure surfacing ---------------------------------------------

    def drain_failures(self) -> List[BaseException]:
        """Return and clear failures of events nobody waited on."""
        failures, self._failures = self._failures, []
        return failures

    def _raise_pending(self) -> None:
        if self._failures:
            failure = self._failures[0]
            self._failures = []
            raise failure

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drive the loop until kernel time reaches ``until``.

        Unlike the simulator there is no event heap to drain, so an
        explicit ``until`` is required; ``max_events`` is not supported
        against a real clock.
        """
        if until is None:
            raise SimulationError("LiveKernel.run() requires an explicit 'until' time")
        if max_events is not None:
            raise SimulationError("LiveKernel.run() does not support max_events")
        delta = until - self.now
        if delta > 0:
            self.loop.run_until_complete(asyncio.sleep(delta))
        self._raise_pending()
        return self.now

    def run_process(self, generator: Generator, name: str = "",
                    timeout: Optional[float] = None) -> Any:
        """Spawn ``generator`` and block the caller until it finishes.

        ``timeout`` bounds the real-time wait (the sim detects deadlock
        by heap exhaustion; a live kernel has no such signal).
        """
        proc = self.process(generator, name=name)
        future = self.loop.create_future()

        def _done(event: Event) -> None:
            if not future.done():
                future.set_result(None)

        proc._add_callback(_done)
        waiter = asyncio.wait_for(self._await_future(future), timeout)
        try:
            self.loop.run_until_complete(waiter)
        except asyncio.TimeoutError:
            raise SimulationError(
                f"process {proc.name!r} did not finish within {timeout}s") from None
        self._raise_pending()
        if proc._ok:
            return proc._value
        proc._fail_silently = True
        raise proc._value

    @staticmethod
    async def _await_future(future: "asyncio.Future[None]") -> None:
        await future

    def wrap_process(self, proc: Process) -> "asyncio.Future[Any]":
        """Expose a kernel process as an asyncio future (for daemons that
        own the running loop and therefore cannot call run_process)."""
        future = self.loop.create_future()

        def _done(event: Event) -> None:
            if future.done():
                return
            if event._ok:
                future.set_result(event._value)
            else:
                proc._fail_silently = True
                future.set_exception(event._value)

        proc._add_callback(_done)
        return future

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the owned event loop (idempotent)."""
        if not self._closed:
            self._closed = True
            if not self.loop.is_running() and not self.loop.is_closed():
                self.loop.close()
