"""The testbed API over real sockets: in-process live deployment.

:class:`LiveTestbed` is :class:`repro.testbed.Testbed` with the
substrate swapped out: a :class:`~repro.net.kernel.LiveKernel` instead
of the simulator, :class:`~repro.net.node.LiveNode` hosts with wall
clocks instead of simulated PCs, and a
:class:`~repro.net.udp.UdpTransport` on 127.0.0.1 instead of the
modelled LAN.  All nodes run in one process on one event loop — the
multi-process deployment is :mod:`repro.net.daemon` — which makes it the
bridge mode: real time, real sockets, but still a single test-friendly
object, so workloads and the obs subsystem run unmodified against
either testbed.

Nodes bind ephemeral ports (bind-all-then-start ordering makes the
shared address book complete before any traffic flows), so live tests
never collide on fixed ports.

Because real time cannot be paused, scenario code should wait on
conditions, not durations: :meth:`LiveTestbed.wait_until` polls a
predicate while driving the loop.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..sim.clock import US_PER_SEC
from ..testbed import TestbedBase
from ..totem import TotemConfig
from .kernel import LiveKernel
from .node import LiveNode
from .timing import live_totem_config
from .udp import UdpTransport


class LiveTestbed(TestbedBase):
    """A live cluster on localhost UDP, one event loop, real time."""

    def __init__(
        self,
        *,
        num_nodes: int = 3,
        seed: int = 0,
        node_ids: Optional[List[str]] = None,
        totem_config: Optional[TotemConfig] = None,
        clock_epoch_spread_s: float = 10.0,
        clock_drift_ppm_max: float = 50.0,
        bind_host: str = "127.0.0.1",
        chaos_seed: Optional[int] = None,
        auth_secret: Optional[str] = None,
    ):
        self.kernel = LiveKernel()
        #: Shared wire authenticator when the cluster runs authenticated.
        #: One instance serves every in-process node: send nonces are
        #: keyed by sender and receive watermarks by (receiver, sender),
        #: so the shared keyring never aliases two nodes' counters.
        self.auth = None
        if auth_secret is not None:
            from .auth import WireAuthenticator

            self.auth = WireAuthenticator.from_secret(auth_secret)
        self.transport = UdpTransport(self.kernel.loop, bind_host=bind_host,
                                      auth=self.auth)
        #: Fault-injection decorator, present when chaos is requested.
        self.chaos = None
        #: Seeds the corrupt-state scrambler (see TestbedBase.corrupt_state).
        self.chaos_seed = chaos_seed
        if chaos_seed is not None:
            # Imported lazily: repro.chaos imports this module's runner
            # dependencies, so a top-level import would cycle.
            from ..chaos.transport import ChaosTransport

            self.chaos = ChaosTransport(self.transport, self.kernel,
                                        seed=chaos_seed)
        ids = list(node_ids) if node_ids else [f"n{i}" for i in range(num_nodes)]
        rng = random.Random(seed)
        nodes = {}
        for node_id in ids:
            # Same unsynchronized-start model as the simulated cluster:
            # per-node epoch offset and drift rate from the seed.
            epoch_us = int(rng.uniform(-clock_epoch_spread_s,
                                       clock_epoch_spread_s) * US_PER_SEC)
            drift_ppm = rng.uniform(-clock_drift_ppm_max, clock_drift_ppm_max)
            nodes[node_id] = LiveNode(
                self.kernel,
                node_id,
                self.chaos or self.transport,
                random.Random(rng.random()),
                clock_epoch_us=epoch_us,
                clock_drift_ppm=drift_ppm,
            )
        self._init_stack(self.kernel, nodes, totem_config or live_totem_config())

    # -- execution ------------------------------------------------------

    def start(self, settle: float = 1.0) -> None:
        """Boot the stack; live rings need more settle time than the sim
        (the live timing profile trades detection latency for stability)."""
        super().start(settle)

    def run_process(self, generator, name: str = "scenario", **kwargs):
        """As the base, but with a default real-time timeout: a scenario
        that would never finish must not hang the process."""
        kwargs.setdefault("timeout", 30.0)
        return super().run_process(generator, name, **kwargs)

    def wait_until(
        self,
        predicate: Callable[[], bool],
        *,
        timeout: float = 10.0,
        poll: float = 0.02,
    ) -> float:
        """Drive the loop until ``predicate()`` is true; returns elapsed
        seconds.  Raises :class:`~repro.errors.SimulationError` on
        timeout — real time cannot be fast-forwarded, so condition waits
        replace the sim's fixed-duration runs."""
        start = self.sim.now
        while True:
            if predicate():
                return self.sim.now - start
            if self.sim.now - start > timeout:
                raise SimulationError(
                    f"condition not reached within {timeout}s")
            self.run(poll)

    # -- lifecycle ------------------------------------------------------

    def shutdown(self) -> None:
        """Close all sockets and the event loop (idempotent)."""
        self.transport.close()
        self.kernel.close()

    def __enter__(self) -> "LiveTestbed":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
