"""Wire-frame authentication for the Byzantine-tolerant mode.

The crash/omission fault model of the base protocol lets any datagram
that *parses* join the total order.  Under an authenticated-Byzantine
model (f < n/3 replicas may lie, but cannot forge each other's
signatures) every ring frame instead carries a MAC field behind the v3
flags byte::

    key id   1 byte   which group key signed this frame
    nonce    8 bytes  little-endian, strictly increasing per sender
    mac     16 bytes  truncated HMAC-SHA256 over everything before it
                      (src, flags, trace context, key id, nonce) plus
                      the payload bytes

One :class:`WireAuthenticator` holds the group keyring and the replay
state for every node it serves (the in-process testbed shares a single
transport among all nodes, so both send counters and receive watermarks
are keyed by node id).  Verification failures raise
:class:`~repro.errors.FrameError` with one of the stable reasons
``auth-missing`` / ``auth-truncated`` / ``auth-forged`` /
``auth-replay``, which feed the existing per-reason rejection counters —
a lying replica's forged frames show up in telemetry exactly like any
other malformed datagram.

Caveats (documented, deliberate):

* Nonces must *strictly increase* per (receiver, sender) pair.  A
  datagram reordered in flight is rejected as a replay; on lossy UDP
  that degrades to a drop, which the ring protocol already tolerates
  via retransmission.
* Key distribution is out of scope: the group key is provisioned out of
  band (``--auth-key`` on every daemon).  A compromised key defeats the
  scheme — this authenticates *members to each other*, it does not make
  a member honest.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
import threading
from typing import Dict, Tuple

from ..errors import FrameError

#: Truncated HMAC-SHA256 output carried on the wire.
MAC_SIZE = 16
#: key id + nonce + mac.
AUTH_FIELD_SIZE = 1 + 8 + MAC_SIZE


def derive_key(secret: str, *, group: str = "timesvc") -> bytes:
    """Derive the 32-byte group key from a shared secret string."""
    return hashlib.sha256(f"repro-wire-auth:{group}:{secret}".encode()).digest()


class WireAuthenticator:
    """Signs outgoing frames and verifies incoming ones.

    Thread-safe: live transports encode on client threads and decode on
    the event-loop thread concurrently.
    """

    def __init__(self, key: bytes, *, key_id: int = 0):
        if not 0 <= key_id <= 255:
            raise ValueError(f"key_id must fit one byte, got {key_id}")
        self.key_id = key_id
        self._keys: Dict[int, bytes] = {key_id: key}
        self._lock = threading.Lock()
        #: sender node -> last nonce issued.
        self._send_nonce: Dict[str, int] = {}
        #: (receiver node, sender node) -> highest nonce accepted.
        self._recv_nonce: Dict[Tuple[str, str], int] = {}
        self.frames_signed = 0
        self.frames_verified = 0

    @classmethod
    def from_secret(cls, secret: str, *, group: str = "timesvc",
                    key_id: int = 0) -> "WireAuthenticator":
        return cls(derive_key(secret, group=group), key_id=key_id)

    def add_key(self, key_id: int, key: bytes) -> None:
        """Add an extra keyring entry (rotation: verify old, sign new)."""
        with self._lock:
            self._keys[key_id] = key

    # -- signing ----------------------------------------------------------

    def sign_field(self, src: str, signed_prefix: bytes,
                   payload_bytes: bytes) -> bytes:
        """Produce the wire auth field for one outgoing frame.

        ``signed_prefix`` is every body byte preceding the auth field
        (packed src, flags, trace context); the MAC also covers the key
        id, the nonce and the payload, so nothing in the frame can be
        spliced without detection.
        """
        with self._lock:
            nonce = self._send_nonce.get(src, 0) + 1
            self._send_nonce[src] = nonce
            key = self._keys[self.key_id]
            self.frames_signed += 1
        head = bytes([self.key_id]) + struct.pack("<Q", nonce)
        mac = hmac.new(key, signed_prefix + head + payload_bytes,
                       hashlib.sha256).digest()[:MAC_SIZE]
        return head + mac

    # -- verification -----------------------------------------------------

    def verify(self, *, dst: str, src: str, key_id: int, nonce: int,
               mac: bytes, signed_bytes: bytes) -> None:
        """Check one incoming frame's auth field; raise on failure.

        ``signed_bytes`` is the exact byte string the sender signed
        (prefix + key id + nonce + payload).  Raises
        :class:`FrameError` with reason ``auth-forged`` (bad key id or
        MAC mismatch) or ``auth-replay`` (nonce not strictly newer than
        the watermark for this (dst, src) pair).
        """
        with self._lock:
            key = self._keys.get(key_id)
        if key is None:
            raise FrameError(f"auth field names unknown key id {key_id}",
                             reason="auth-forged")
        expect = hmac.new(key, signed_bytes, hashlib.sha256).digest()[:MAC_SIZE]
        if not hmac.compare_digest(expect, mac):
            raise FrameError(f"frame MAC from {src!r} does not verify",
                             reason="auth-forged")
        with self._lock:
            watermark = self._recv_nonce.get((dst, src), 0)
            if nonce <= watermark:
                raise FrameError(
                    f"replayed frame from {src!r}: nonce {nonce} <= "
                    f"watermark {watermark}", reason="auth-replay")
            self._recv_nonce[(dst, src)] = nonce
            self.frames_verified += 1
