"""The transport abstraction shared by the simulated and live stacks.

The protocol stack (Totem, the replication layer, the time service) is
written against a small send/deliver contract that the simulated LAN has
always provided implicitly.  This module makes that contract explicit so
the same protocol code can run over two backends:

* :class:`repro.sim.network.Network` — the deterministic simulated LAN
  (the original backend, now formally implementing this interface), and
* :class:`repro.net.udp.UdpTransport` — real UDP sockets on an asyncio
  event loop, with multicast emulated by per-peer unicast fan-out.

The contract:

* A node *attaches* to the transport under its node id and supplies a
  ``deliver`` callback; attaching yields a :class:`TransportPort`.
* A port can :meth:`~TransportPort.unicast` a payload to another
  attached node or :meth:`~TransportPort.multicast` it to every
  reachable node **including the sender** (UDP multicast loops back, and
  Totem relies on receiving its own broadcasts).
* Deliveries invoke the receiver's ``deliver`` callback with a *frame*
  object exposing at least ``.src`` (sending node id) and ``.payload``
  (the transported object).  Backends may add fields (simulated arrival
  times, real socket addresses); protocol code must not depend on them.
* Delivery is best-effort and unordered across sources; per
  ``(src, dst)`` pair frames arrive in send order (switched Ethernet and
  loopback UDP are both FIFO per path in practice — Totem's token/data
  ordering assumes it).
* A port whose ``up`` flag is False raises
  :class:`~repro.errors.NetworkError` on send and silently drops
  inbound frames (fail-stop interface semantics).
"""

from __future__ import annotations

import abc
from typing import Any, Callable


class TransportPort(abc.ABC):
    """One node's attachment point: the sending half of the contract.

    Concrete ports expose the wire statistics the evaluation reads:
    ``frames_sent``, ``frames_received``, ``bytes_sent`` and the ``up``
    flag.
    """

    node_id: str
    up: bool
    frames_sent: int
    frames_received: int
    bytes_sent: int

    @abc.abstractmethod
    def unicast(self, dst: str, payload: Any, size_bytes: int = 128) -> None:
        """Send ``payload`` to the node attached as ``dst``.

        ``size_bytes`` is the simulated backend's frame-size estimate for
        its latency model; byte-level backends ignore it and count the
        real encoded size instead.
        """

    @abc.abstractmethod
    def multicast(self, payload: Any, size_bytes: int = 128) -> None:
        """Send ``payload`` to every attached node, including the sender."""


class Transport(abc.ABC):
    """A network connecting attached nodes (the topology half)."""

    @abc.abstractmethod
    def attach(self, node_id: str, deliver: Callable[[Any], None]) -> TransportPort:
        """Attach a node; ``deliver`` is invoked for each arriving frame."""

    @abc.abstractmethod
    def detach(self, node_id: str) -> None:
        """Remove a node's attachment; frames in flight are dropped."""

    def close(self) -> None:
        """Release backend resources (sockets).  No-op for the simulator."""
