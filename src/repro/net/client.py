"""The ``repro call`` client: blocking UDP RPC against a running group.

Speaks the same wire format as the ring — a framed ``REQUEST`` envelope
(:mod:`repro.net.wire` around :mod:`repro.replication.codec`) sent to
any daemon's UDP port.  That daemon's gateway injects the request into
the total order; with active replication **every** replica answers, the
gateway forwards each reply to this socket, and the caller collects them
per sender.  This is what makes the client a verification tool and not
just an RPC stub: one call observes the value every replica computed,
so agreement ("identical group-clock reads") is checked directly.

No kernel, no asyncio — a plain blocking socket with a deadline, usable
from scripts and CI.  Retries walk the server list, so a call survives
the death of the daemon it first contacted (the group's state does,
too; that is the service's job).
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import RpcTimeout
from ..replication.envelope import MsgType, make_envelope
from ..rpc.messages import Invocation, Result
from .udp import Address
from .wire import FrameError, decode_frame, encode_frame


@dataclass
class CallOutcome:
    """One invocation's replies, keyed by replying replica."""

    method: str
    results: Dict[str, Result]
    latency_us: int
    via: Address

    @property
    def values(self) -> Dict[str, object]:
        return {sender: result.value for sender, result in self.results.items()}

    @property
    def agreed(self) -> bool:
        """All replies carry the same value (vacuously true for one)."""
        values = list(self.values.values())
        return all(value == values[0] for value in values[1:])

    def first(self) -> Result:
        return next(iter(self.results.values()))


class LiveCaller:
    """A blocking client endpoint for a live replica group."""

    def __init__(
        self,
        servers: Sequence[Address],
        *,
        group: str = "timesvc",
        client_id: Optional[str] = None,
        bind_host: str = "127.0.0.1",
    ):
        if not servers:
            raise ValueError("need at least one server address")
        self.servers = list(servers)
        self.group = group
        # The client group name doubles as the reply route key on the
        # daemon side, so it must be unique per caller process.
        self.client_id = client_id or f"c{os.getpid()}"
        self.client_group = f"client.{self.client_id}"
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((bind_host, 0))
        self._seq = 0

    # -- calling -------------------------------------------------------

    def call(
        self,
        method: str,
        *args,
        timeout: float = 2.0,
        expect_replies: int = 1,
        conn_id: int = 1,
    ) -> CallOutcome:
        """Invoke ``method(*args)`` on the group.

        Waits until ``expect_replies`` distinct replicas have answered
        (or the timeout, if more keep arriving they are ignored).  Walks
        the server list on timeout, re-sending the same invocation, and
        raises :class:`~repro.errors.RpcTimeout` when no server answers.
        """
        self._seq += 1
        seq = self._seq
        envelope = make_envelope(
            MsgType.REQUEST,
            self.client_group,
            self.group,
            conn_id,
            seq,
            self.client_id,
            body=Invocation(method, tuple(args)),
        )
        data = encode_frame(self.client_id, envelope)
        per_server = max(timeout / len(self.servers), 0.05)
        for address in self.servers:
            started = time.monotonic()
            try:
                self.sock.sendto(data, address)
            except OSError:
                continue
            results = self._collect(conn_id, seq, expect_replies,
                                    deadline=started + per_server)
            if results:
                latency_us = int((time.monotonic() - started) * 1_000_000)
                return CallOutcome(method, results, latency_us, address)
        raise RpcTimeout(
            f"no reply to {self.group}.{method} from any of {self.servers}")

    def _collect(self, conn_id: int, seq: int, expect_replies: int,
                 deadline: float) -> Dict[str, Result]:
        results: Dict[str, Result] = {}
        while len(results) < expect_replies:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self.sock.settimeout(remaining)
            try:
                data, _addr = self.sock.recvfrom(65536)
            except socket.timeout:
                break
            except OSError:
                break
            try:
                _src, envelope = decode_frame(data)
            except FrameError:
                continue
            header = envelope.header
            if (header.msg_type is MsgType.REPLY
                    and header.conn_id == conn_id
                    and header.msg_seq_num == seq):
                # First reply per replica wins.  A retry re-injects the
                # same invocation, and replicas (which do not dedupe)
                # execute it again: both executions are internally
                # consistent, but mixing sender A's first-execution
                # reply with sender B's second-execution reply would
                # fake a disagreement.
                results.setdefault(envelope.sender, envelope.body)
        return results

    def call_many(self, method: str, count: int, *args,
                  timeout: float = 2.0, expect_replies: int = 1) -> List[CallOutcome]:
        """``count`` sequential invocations (for monotonicity checks)."""
        return [
            self.call(method, *args, timeout=timeout,
                      expect_replies=expect_replies)
            for _ in range(count)
        ]

    def close(self) -> None:
        self.sock.close()

    def __enter__(self) -> "LiveCaller":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
