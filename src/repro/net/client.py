"""The ``repro call`` client: blocking UDP RPC against a running group.

Speaks the same wire format as the ring — a framed ``REQUEST`` envelope
(:mod:`repro.net.wire` around :mod:`repro.replication.codec`) sent to
any daemon's UDP port.  That daemon's gateway injects the request into
the total order; with active replication **every** replica answers, the
gateway forwards each reply to this socket, and the caller collects them
per sender.  This is what makes the client a verification tool and not
just an RPC stub: one call observes the value every replica computed,
so agreement ("identical group-clock reads") is checked directly.

No kernel, no asyncio — a plain blocking socket with a deadline, usable
from scripts and CI.  The retry loop is built for hostile networks (the
chaos suite drives it through seeded loss and partitions):

* one **monotonic deadline** per call; every attempt spends from the
  remaining budget, so a black-holed first server cannot starve the
  rest of the list;
* retries walk the server list with **jittered exponential backoff**
  between full sweeps (deterministic per client id, so chaos runs
  replay);
* a per-server **circuit breaker** skips addresses that keep timing
  out, probing them again after a cooldown (half-open);
* retries re-send the **same** ``(conn_id, seq)`` — the operation id —
  so the daemon gateway can deduplicate re-invocations instead of
  executing them twice.

All of it is surfaced as ``repro.obs`` counters labelled by client.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs, trace
from ..errors import RpcTimeout
from ..replication.envelope import MsgType, make_envelope
from ..rpc.messages import Invocation, Result
from .udp import Address
from .wire import FrameError, decode_frame, encode_frame

M_CLIENT_CALLS = obs.REGISTRY.counter(
    "client_calls_total", "calls issued by live callers")
M_CLIENT_RETRIES = obs.REGISTRY.counter(
    "client_retries_total", "attempts beyond the first (resend of the "
    "same operation id)")
M_CLIENT_BACKOFFS = obs.REGISTRY.counter(
    "client_backoffs_total", "backoff sleeps between retry sweeps")
M_CLIENT_BREAKER_OPEN = obs.REGISTRY.counter(
    "client_breaker_open_total", "circuit-breaker trips (server skipped)")
M_CLIENT_FAILURES = obs.REGISTRY.counter(
    "client_call_failures_total", "calls that exhausted their deadline")


@dataclass
class CallOutcome:
    """One invocation's replies, keyed by replying replica."""

    method: str
    results: Dict[str, Result]
    latency_us: int
    via: Address
    attempts: int = 1
    #: Trace id carried on the wire (None when tracing was disabled).
    trace_id: Optional[str] = None

    @property
    def values(self) -> Dict[str, object]:
        return {sender: result.value for sender, result in self.results.items()}

    @property
    def agreed(self) -> bool:
        """All replies carry the same value (vacuously true for one)."""
        values = list(self.values.values())
        return all(value == values[0] for value in values[1:])

    def first(self) -> Result:
        return next(iter(self.results.values()))


@dataclass
class CallerStats:
    """Aggregate retry behaviour of one caller (mirrors the counters)."""

    calls: int = 0
    retries: int = 0
    backoffs: int = 0
    breaker_skips: int = 0
    failures: int = 0


@dataclass
class _Breaker:
    """Per-server consecutive-failure tracking."""

    failures: int = 0
    open_until: float = 0.0
    probing: bool = field(default=False, repr=False)
    #: When a held probe token lapses (the claiming call may have hit
    #: its deadline before actually sending the probe; without an expiry
    #: the token would be orphaned and the server never probed again).
    probe_expires: float = field(default=0.0, repr=False)


class LiveCaller:
    """A blocking client endpoint for a live replica group."""

    #: Consecutive timeouts before a server's breaker opens.
    BREAKER_THRESHOLD = 3
    #: Seconds a tripped breaker stays open before a half-open probe.
    BREAKER_COOLDOWN = 1.0
    #: Backoff: base * 2^sweep, jittered, capped.
    BACKOFF_BASE = 0.02
    BACKOFF_CAP = 0.5

    def __init__(
        self,
        servers: Sequence[Address],
        *,
        group: str = "timesvc",
        client_id: Optional[str] = None,
        bind_host: str = "127.0.0.1",
    ):
        if not servers:
            raise ValueError("need at least one server address")
        self.servers = list(servers)
        self.group = group
        # The client group name doubles as the reply route key on the
        # daemon side, so it must be unique per caller process.
        self.client_id = client_id or f"c{os.getpid()}"
        self.client_group = f"client.{self.client_id}"
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((bind_host, 0))
        self._seq = 0
        self.stats = CallerStats()
        self._breakers: Dict[Address, _Breaker] = {
            address: _Breaker() for address in self.servers}
        # Breaker state is shared when callers issue calls from several
        # threads (the open-loop loadgen does); the lock keeps the
        # half-open probe token single-holder.
        self._breaker_lock = threading.Lock()
        # Deterministic jitter so chaos runs with a fixed client id replay.
        self._rng = random.Random(f"caller|{self.client_id}")

    # -- calling -------------------------------------------------------

    def call(
        self,
        method: str,
        *args,
        timeout: float = 2.0,
        expect_replies: int = 1,
        conn_id: int = 1,
    ) -> CallOutcome:
        """Invoke ``method(*args)`` on the group.

        Waits until ``expect_replies`` distinct replicas have answered
        (if more keep arriving they are ignored).  The whole call runs
        against one monotonic deadline ``now + timeout``; within it the
        caller sweeps the server list (skipping open breakers), re-sends
        the same invocation, and backs off exponentially with jitter
        between sweeps.  Raises :class:`~repro.errors.RpcTimeout` when
        the budget is exhausted.
        """
        self._seq += 1
        seq = self._seq
        envelope = make_envelope(
            MsgType.REQUEST,
            self.client_group,
            self.group,
            conn_id,
            seq,
            self.client_id,
            body=Invocation(method, tuple(args)),
        )
        # A fresh trace context per operation (not per attempt: retries
        # re-send the same frame, so the same trace id rides every copy).
        tctx = None
        if trace.TRACER.enabled:
            tctx = trace.TraceContext(trace.new_trace_id(self._rng),
                                      f"client.{self.client_id}")
        data = encode_frame(self.client_id, envelope, trace=tctx)
        self.stats.calls += 1
        if obs.REGISTRY.enabled:
            M_CLIENT_CALLS.inc(client=self.client_id)
        if tctx is not None:
            trace.emit("op.send", self.client_id, trace=tctx.trace_id,
                       op_group=self.client_group, conn=conn_id, seq=seq,
                       method=method, t=time.monotonic())

        started = time.monotonic()
        deadline = started + timeout
        attempts = 0
        sweep = 0
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            candidates = self._sweep_order(now)
            if not candidates:
                # Every breaker is open; the earliest half-open probe is
                # still the best move — wait for it (bounded by deadline).
                reopen = min(b.open_until for b in self._breakers.values())
                self._sleep(min(reopen, deadline) - now)
                candidates = self._sweep_order(time.monotonic(),
                                               ignore_breakers=True)
            for position, address in enumerate(candidates):
                now = time.monotonic()
                remaining = deadline - now
                if remaining <= 0:
                    break
                # First sweep splits the remaining budget across the
                # untried servers; later sweeps give each probe the
                # backoff-scaled slice, never more than what's left.
                untried = max(len(candidates) - position, 1)
                slice_s = remaining / untried if sweep == 0 else min(
                    remaining, max(0.1, self.BACKOFF_BASE * (2 ** sweep)))
                attempts += 1
                if attempts > 1:
                    self.stats.retries += 1
                    if obs.REGISTRY.enabled:
                        M_CLIENT_RETRIES.inc(client=self.client_id)
                try:
                    self.sock.sendto(data, address)
                except OSError:
                    self._record_failure(address)
                    continue
                results = self._collect(conn_id, seq, expect_replies,
                                        deadline=now + slice_s)
                if results:
                    self._record_success(address)
                    latency_us = int((time.monotonic() - started) * 1_000_000)
                    if tctx is not None:
                        trace.emit("op.reply_recv", self.client_id,
                                   trace=tctx.trace_id, conn=conn_id, seq=seq,
                                   replies=len(results), t=time.monotonic())
                    return CallOutcome(method, results, latency_us, address,
                                       attempts=attempts,
                                       trace_id=tctx.trace_id if tctx else None)
                self._record_failure(address)
            sweep += 1
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            pause = min(
                self._rng.uniform(0.5, 1.0)
                * min(self.BACKOFF_BASE * (2 ** sweep), self.BACKOFF_CAP),
                remaining,
            )
            if pause > 0:
                self.stats.backoffs += 1
                if obs.REGISTRY.enabled:
                    M_CLIENT_BACKOFFS.inc(client=self.client_id)
                self._sleep(pause)
        self.stats.failures += 1
        if obs.REGISTRY.enabled:
            M_CLIENT_FAILURES.inc(client=self.client_id)
        raise RpcTimeout(
            f"no reply to {self.group}.{method} from any of {self.servers} "
            f"within {timeout:.3f}s ({attempts} attempts)")

    # -- breaker ---------------------------------------------------------

    def _sweep_order(self, now: float, *,
                     ignore_breakers: bool = False) -> List[Address]:
        """Servers to try this sweep, open breakers skipped.

        A breaker past its cooldown admits exactly **one** half-open
        probe: the first sweep to arrive takes the probe token
        (``probing = True``) and later sweeps — from this thread or a
        concurrent one — keep skipping until that probe resolves via
        :meth:`_record_failure` / :meth:`_record_success`.  Without the
        token, every caller thread that swept during the half-open
        window would hammer a still-recovering server with its own
        probe, defeating the point of the breaker.
        """
        order: List[Address] = []
        with self._breaker_lock:
            for address in self.servers:
                breaker = self._breakers[address]
                if ignore_breakers or breaker.failures < self.BREAKER_THRESHOLD:
                    order.append(address)
                elif now >= breaker.open_until and (
                        not breaker.probing or now >= breaker.probe_expires):
                    breaker.probing = True
                    breaker.probe_expires = now + self.BREAKER_COOLDOWN
                    order.append(address)
                else:
                    self.stats.breaker_skips += 1
                    if obs.REGISTRY.enabled:
                        M_CLIENT_BREAKER_OPEN.inc(client=self.client_id)
        return order

    def _record_failure(self, address: Address) -> None:
        with self._breaker_lock:
            breaker = self._breakers[address]
            breaker.failures += 1
            if breaker.failures >= self.BREAKER_THRESHOLD:
                breaker.open_until = time.monotonic() + self.BREAKER_COOLDOWN
            breaker.probing = False

    def _record_success(self, address: Address) -> None:
        with self._breaker_lock:
            breaker = self._breakers[address]
            breaker.failures = 0
            breaker.open_until = 0.0
            breaker.probing = False

    @staticmethod
    def _sleep(duration: float) -> None:
        if duration > 0:
            time.sleep(duration)

    # -- reply collection ------------------------------------------------

    def _collect(self, conn_id: int, seq: int, expect_replies: int,
                 deadline: float) -> Dict[str, Result]:
        results: Dict[str, Result] = {}
        while len(results) < expect_replies:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self.sock.settimeout(remaining)
            try:
                data, _addr = self.sock.recvfrom(65536)
            except socket.timeout:
                break
            except OSError:
                break
            try:
                _src, envelope = decode_frame(data)
            except FrameError:
                continue
            header = envelope.header
            if (header.msg_type is MsgType.REPLY
                    and header.conn_id == conn_id
                    and header.msg_seq_num == seq):
                # First reply per replica wins.  A retry re-sends the
                # same operation id; the gateway deduplicates it, but if
                # two different gateways both injected it, mixing sender
                # A's first-execution reply with sender B's second-
                # execution reply would fake a disagreement.
                results.setdefault(envelope.sender, envelope.body)
        return results

    def call_many(self, method: str, count: int, *args,
                  timeout: float = 2.0, expect_replies: int = 1) -> List[CallOutcome]:
        """``count`` sequential invocations (for monotonicity checks)."""
        return [
            self.call(method, *args, timeout=timeout,
                      expect_replies=expect_replies)
            for _ in range(count)
        ]

    def close(self) -> None:
        self.sock.close()

    def __enter__(self) -> "LiveCaller":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
