"""repro.net — the live runtime: real sockets, wall clocks, daemons.

Everything else in this reproduction runs inside the deterministic
simulation kernel; this package is the deployment path.  It provides

* :class:`~repro.net.transport.Transport` — the send/deliver contract
  extracted from the simulated LAN, with two backends: the simulator
  (:class:`repro.sim.network.Network`) and real asyncio UDP sockets
  (:class:`~repro.net.udp.UdpTransport`).
* :class:`~repro.net.kernel.LiveKernel` — the simulation kernel's event
  API (events, timeouts, generator processes) re-implemented on an
  asyncio event loop in real time, so the protocol stack runs unmodified.
* :class:`~repro.net.clock.WallClock` — a hardware clock backed by the
  monotonic OS clock, with injected offset/drift so live nodes still
  exhibit the Figure-1 inconsistency the time service corrects.
* :class:`~repro.net.testbed.LiveTestbed` — the sim
  :class:`~repro.testbed.Testbed` API over real sockets, in-process.
* :class:`~repro.net.daemon.NodeDaemon` / :class:`~repro.net.client.LiveCaller`
  — the ``repro serve`` / ``repro call`` runtime for multi-process
  deployment.

Heavy modules are imported lazily (PEP 562): ``repro.sim.network`` pulls
in :mod:`repro.net.transport` at import time, and an eager import of the
live modules here would close an import cycle back into ``repro.sim``.
"""

from __future__ import annotations

from .transport import Transport, TransportPort

_LAZY = {
    "LiveKernel": ("repro.net.kernel", "LiveKernel"),
    "WallClock": ("repro.net.clock", "WallClock"),
    "MonotonicTimeBase": ("repro.net.clock", "MonotonicTimeBase"),
    "LiveNode": ("repro.net.node", "LiveNode"),
    "UdpTransport": ("repro.net.udp", "UdpTransport"),
    "LiveTestbed": ("repro.net.testbed", "LiveTestbed"),
    "NodeDaemon": ("repro.net.daemon", "NodeDaemon"),
    "DaemonConfig": ("repro.net.daemon", "DaemonConfig"),
    "TimeApp": ("repro.net.daemon", "TimeApp"),
    "live_totem_config": ("repro.net.timing", "live_totem_config"),
    "LiveCaller": ("repro.net.client", "LiveCaller"),
}

__all__ = ["Transport", "TransportPort", *sorted(_LAZY)]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
