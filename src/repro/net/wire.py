"""Byte-level framing and payload codec for the live transport.

:mod:`repro.replication.codec` serializes the *protocol-level* messages
(envelopes and their bodies).  This module adds the two layers needed to
put them on a real wire:

* a **payload codec** covering everything a node transmits — bare
  envelopes (the client channel) plus the Totem wire messages
  (:class:`~repro.totem.messages.RegularMessage`, tokens, joins, commit
  tokens, beacons), with the envelope codec reused for message bodies;
* explicit **framing** with a magic marker, a version byte and a length
  field, so a receiver can reject truncated or foreign datagrams before
  attempting to decode them, and so the same format can later run over a
  stream transport.

Frame layout (all integers little-endian)::

    offset 0  magic   2 bytes  b"CT"
           2  version 1 byte   WIRE_VERSION
           3  length  4 bytes  byte length of the body
           7  body    = src-node (length-prefixed UTF-8)
                      + flags (1 byte, v3+)
                      + trace context (if flag bit 0: trace id + causal
                        parent, both length-prefixed UTF-8)
                      + payload bytes

v2 frames (no flags byte, no trace context) still decode: the trace
context is the *optional* observability field of v3, and a mixed-version
ring degrades to untraced frames rather than refusing to interoperate.

Payload layout: a one-byte kind tag followed by kind-specific fields.
:class:`~repro.totem.messages.RegularMessage` payloads nest recursively
(an ordered message usually carries an envelope; recovery tombstones and
arbitrary JSON-able payloads are also covered), so one entry point
handles every frame either backend can carry.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Tuple

from ..errors import FrameError
from ..trace import TraceContext
from ..replication.codec import (
    CodecError,
    _pack_json,
    _pack_str,
    _unpack_json,
    _unpack_str,
    decode_envelope,
    encode_envelope,
)
from ..replication.envelope import Envelope
from ..shard.summary import ShardSummary
from ..totem.messages import (
    CommitMemberInfo,
    CommitToken,
    JoinMessage,
    LostMessage,
    RegularMessage,
    RegularToken,
    RingBeacon,
    RingId,
)

#: Frame magic marker ("Consistent Time").
MAGIC = b"CT"
#: Bump on any incompatible change to the frame or payload layout.
#: v2: CCS messages carry a covering operation id (round coalescing) and
#: time-transfer state carries per-thread operation-numbering points.
#: v3: a flags byte after the source, with an optional trace context
#: (trace id + causal parent) for cross-node causal tracing.
WIRE_VERSION = 3
#: Versions this decoder accepts (v2 frames simply carry no trace).
ACCEPTED_VERSIONS = (2, 3)
#: magic + version + length.
HEADER_SIZE = 7
#: Frame flag: a trace context follows the source field.
_FLAG_TRACE = 0x01
#: Frame flag: an auth field (key id + nonce + MAC) follows the trace
#: context — see :mod:`repro.net.auth`.
_FLAG_AUTH = 0x02
_KNOWN_FLAGS = _FLAG_TRACE | _FLAG_AUTH

# -- payload kind tags ----------------------------------------------------
_KIND_ENVELOPE = 0
_KIND_REGULAR = 1
_KIND_TOKEN = 2
_KIND_JOIN = 3
_KIND_COMMIT = 4
_KIND_BEACON = 5
_KIND_JSON = 6
_KIND_LOST = 7
_KIND_SUMMARY = 8


# -- primitives -----------------------------------------------------------

def _pack_ring(ring_id: RingId) -> bytes:
    return struct.pack("<q", ring_id.seq) + _pack_str(ring_id.representative)


def _unpack_ring(buffer: bytes, offset: int) -> Tuple[RingId, int]:
    (seq,) = struct.unpack_from("<q", buffer, offset)
    representative, offset = _unpack_str(buffer, offset + 8)
    return RingId(seq, representative), offset


def _pack_opt_ring(ring_id: Optional[RingId]) -> bytes:
    if ring_id is None:
        return b"\x00"
    return b"\x01" + _pack_ring(ring_id)


def _unpack_opt_ring(buffer: bytes, offset: int) -> Tuple[Optional[RingId], int]:
    flag = buffer[offset]
    offset += 1
    if not flag:
        return None, offset
    return _unpack_ring(buffer, offset)


def _pack_str_set(values) -> bytes:
    items = sorted(values)
    out = [struct.pack("<H", len(items))]
    out.extend(_pack_str(v) for v in items)
    return b"".join(out)


def _unpack_str_tuple(buffer: bytes, offset: int) -> Tuple[Tuple[str, ...], int]:
    (count,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    values = []
    for _ in range(count):
        value, offset = _unpack_str(buffer, offset)
        values.append(value)
    return tuple(values), offset


def _pack_str_tuple(values) -> bytes:
    out = [struct.pack("<H", len(values))]
    out.extend(_pack_str(v) for v in values)
    return b"".join(out)


# -- payload codec --------------------------------------------------------

def encode_payload(payload: Any) -> bytes:
    """Serialize one transport payload (tag byte + fields)."""
    if isinstance(payload, Envelope):
        return bytes([_KIND_ENVELOPE]) + encode_envelope(payload)
    if isinstance(payload, RegularMessage):
        return (
            bytes([_KIND_REGULAR])
            + _pack_ring(payload.ring_id)
            + struct.pack("<q?", payload.seq, payload.retransmission)
            + _pack_str(payload.sender)
            + encode_payload(payload.payload)
        )
    if isinstance(payload, RegularToken):
        aru_id = payload.aru_id
        return (
            bytes([_KIND_TOKEN])
            + _pack_ring(payload.ring_id)
            + struct.pack("<qqq?", payload.token_seq, payload.seq,
                          payload.aru, aru_id is not None)
            + (_pack_str(aru_id) if aru_id is not None else b"")
            + struct.pack("<H", len(payload.rtr))
            + b"".join(struct.pack("<q", seq) for seq in payload.rtr)
        )
    if isinstance(payload, JoinMessage):
        return (
            bytes([_KIND_JOIN])
            + _pack_str(payload.sender)
            + _pack_str_set(payload.proc_set)
            + _pack_str_set(payload.fail_set)
            + struct.pack("<q", payload.ring_seq)
        )
    if isinstance(payload, CommitToken):
        parts = [
            bytes([_KIND_COMMIT]),
            _pack_ring(payload.ring_id),
            _pack_str_tuple(payload.members),
            struct.pack("<qq", payload.token_seq, payload.rotation),
            struct.pack("<H", len(payload.info)),
        ]
        for member in sorted(payload.info):
            info = payload.info[member]
            parts.append(_pack_str(member))
            parts.append(_pack_opt_ring(info.old_ring_id))
            parts.append(struct.pack("<qq?", info.high_seq,
                                     info.recovery_aru, info.recovered))
        parts.append(struct.pack("<H", len(payload.rtr)))
        for ring_id, seq in payload.rtr:
            parts.append(_pack_ring(ring_id))
            parts.append(struct.pack("<q", seq))
        return b"".join(parts)
    if isinstance(payload, RingBeacon):
        return (
            bytes([_KIND_BEACON])
            + _pack_ring(payload.ring_id)
            + _pack_str(payload.sender)
        )
    if isinstance(payload, LostMessage):
        return bytes([_KIND_LOST])
    if isinstance(payload, ShardSummary):
        return (
            bytes([_KIND_SUMMARY])
            + struct.pack("<qqqqq", payload.shard, payload.value_us,
                          payload.offset_us, payload.round_seq,
                          payload.error_us)
            + _pack_str(payload.group)
            + _pack_str(payload.signature)
        )
    # Fallback: any JSON-able payload (e.g. TotemBus pub/sub traffic).
    try:
        return bytes([_KIND_JSON]) + _pack_json(payload)
    except CodecError as exc:
        raise FrameError(
            f"payload {type(payload).__name__} is not wire-encodable: {exc}",
            reason="payload") from exc


def decode_payload(buffer: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Inverse of :func:`encode_payload`; returns ``(payload, offset)``."""
    try:
        kind = buffer[offset]
        offset += 1
        if kind == _KIND_ENVELOPE:
            # The envelope codec consumes the rest of its buffer region;
            # envelopes only ever terminate a payload, so slicing is safe.
            return decode_envelope(buffer[offset:]), len(buffer)
        if kind == _KIND_REGULAR:
            ring_id, offset = _unpack_ring(buffer, offset)
            seq, retransmission = struct.unpack_from("<q?", buffer, offset)
            offset += struct.calcsize("<q?")
            sender, offset = _unpack_str(buffer, offset)
            inner, offset = decode_payload(buffer, offset)
            return RegularMessage(ring_id, seq, sender, inner, retransmission), offset
        if kind == _KIND_TOKEN:
            ring_id, offset = _unpack_ring(buffer, offset)
            token_seq, seq, aru, has_aru_id = struct.unpack_from("<qqq?", buffer, offset)
            offset += struct.calcsize("<qqq?")
            aru_id = None
            if has_aru_id:
                aru_id, offset = _unpack_str(buffer, offset)
            (count,) = struct.unpack_from("<H", buffer, offset)
            offset += 2
            rtr = struct.unpack_from(f"<{count}q", buffer, offset)
            offset += 8 * count
            return RegularToken(ring_id, token_seq, seq, aru, aru_id, tuple(rtr)), offset
        if kind == _KIND_JOIN:
            sender, offset = _unpack_str(buffer, offset)
            proc_set, offset = _unpack_str_tuple(buffer, offset)
            fail_set, offset = _unpack_str_tuple(buffer, offset)
            (ring_seq,) = struct.unpack_from("<q", buffer, offset)
            return (
                JoinMessage(sender, frozenset(proc_set), frozenset(fail_set), ring_seq),
                offset + 8,
            )
        if kind == _KIND_COMMIT:
            ring_id, offset = _unpack_ring(buffer, offset)
            members, offset = _unpack_str_tuple(buffer, offset)
            token_seq, rotation = struct.unpack_from("<qq", buffer, offset)
            offset += 16
            (count,) = struct.unpack_from("<H", buffer, offset)
            offset += 2
            info = {}
            for _ in range(count):
                member, offset = _unpack_str(buffer, offset)
                old_ring_id, offset = _unpack_opt_ring(buffer, offset)
                high_seq, recovery_aru, recovered = struct.unpack_from("<qq?", buffer, offset)
                offset += struct.calcsize("<qq?")
                info[member] = CommitMemberInfo(
                    old_ring_id, high_seq, recovery_aru, recovered)
            (count,) = struct.unpack_from("<H", buffer, offset)
            offset += 2
            rtr = []
            for _ in range(count):
                rtr_ring, offset = _unpack_ring(buffer, offset)
                (seq,) = struct.unpack_from("<q", buffer, offset)
                offset += 8
                rtr.append((rtr_ring, seq))
            return CommitToken(ring_id, members, token_seq, rotation, info, rtr), offset
        if kind == _KIND_BEACON:
            ring_id, offset = _unpack_ring(buffer, offset)
            sender, offset = _unpack_str(buffer, offset)
            return RingBeacon(ring_id, sender), offset
        if kind == _KIND_JSON:
            return _unpack_json(buffer, offset)
        if kind == _KIND_LOST:
            return LostMessage(), offset
        if kind == _KIND_SUMMARY:
            shard, value_us, offset_us, round_seq, error_us = (
                struct.unpack_from("<qqqqq", buffer, offset))
            offset += struct.calcsize("<qqqqq")
            group, offset = _unpack_str(buffer, offset)
            signature, offset = _unpack_str(buffer, offset)
            return ShardSummary(shard, group, value_us, offset_us,
                                round_seq, error_us, signature), offset
        raise FrameError(f"unknown payload kind {kind}", reason="payload")
    except (struct.error, IndexError, UnicodeDecodeError,
            json.JSONDecodeError, CodecError) as exc:
        raise FrameError(f"malformed payload: {exc}", reason="payload") from exc


# -- framing --------------------------------------------------------------

def frame(src: str, payload_bytes: bytes,
          trace: Optional[TraceContext] = None,
          auth=None) -> bytes:
    """Wrap encoded payload bytes in a versioned, length-checked frame.

    ``trace`` attaches the optional v3 trace-context field (a compact
    trace id plus the causal parent hop).  ``auth`` — a
    :class:`~repro.net.auth.WireAuthenticator` — attaches the optional
    auth field (key id + nonce + truncated HMAC over the whole frame
    body), marking the frame with the auth flag.
    """
    flags = _FLAG_TRACE if trace is not None else 0
    if auth is not None:
        flags |= _FLAG_AUTH
    parts = [_pack_str(src), bytes([flags])]
    if trace is not None:
        parts.append(_pack_str(trace.trace_id))
        parts.append(_pack_str(trace.parent))
    if auth is not None:
        parts.append(auth.sign_field(src, b"".join(parts), payload_bytes))
    parts.append(payload_bytes)
    body = b"".join(parts)
    return MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", len(body)) + body


def unframe_ex(data: bytes, *, auth=None,
               auth_node: Optional[str] = None
               ) -> Tuple[str, Optional[TraceContext], bytes]:
    """Validate a frame; returns ``(src_node, trace, payload_bytes)``.

    Raises :class:`~repro.errors.FrameError` on anything that is not a
    complete, accepted-version frame — foreign datagrams, truncation, or
    trailing garbage.  v2 frames decode with ``trace=None``.

    With ``auth`` set (a :class:`~repro.net.auth.WireAuthenticator`),
    the frame's auth field is *required* for every ring payload kind
    (bare envelopes — the client channel — stay exempt) and is verified
    against the keyring and the replay watermark for the receiving node
    ``auth_node``; failures raise with the distinct reasons
    ``auth-missing`` / ``auth-truncated`` / ``auth-forged`` /
    ``auth-replay``.  Without ``auth``, an attached auth field is parsed
    and skipped, so unauthenticated receivers interoperate.
    """
    if len(data) < HEADER_SIZE:
        raise FrameError(f"short frame ({len(data)} bytes)",
                         reason="truncated")
    if data[:2] != MAGIC:
        raise FrameError(f"bad magic {data[:2]!r}", reason="magic")
    version = data[2]
    if version not in ACCEPTED_VERSIONS:
        raise FrameError(f"unsupported wire version {version}",
                         reason="version")
    (length,) = struct.unpack_from("<I", data, 3)
    body = data[HEADER_SIZE:]
    if len(body) != length:
        raise FrameError(
            f"frame length mismatch: header says {length}, got {len(body)}",
            reason="length")
    try:
        src, offset = _unpack_str(body, 0)
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed frame source: {exc}",
                         reason="source") from exc
    if offset > len(body):
        raise FrameError("frame source field overruns the body",
                         reason="source")
    trace: Optional[TraceContext] = None
    authenticated = False
    if version >= 3:
        if offset >= len(body):
            raise FrameError("frame truncated before the flags byte",
                             reason="truncated")
        flags = body[offset]
        offset += 1
        if flags & ~_KNOWN_FLAGS:
            raise FrameError(f"unknown frame flags {flags:#04x}",
                             reason="trace")
        if flags & _FLAG_TRACE:
            try:
                trace_id, offset = _unpack_str(body, offset)
                parent, offset = _unpack_str(body, offset)
            except (struct.error, IndexError, UnicodeDecodeError) as exc:
                raise FrameError(f"malformed trace context: {exc}",
                                 reason="trace") from exc
            if offset > len(body):
                raise FrameError("trace context overruns the body",
                                 reason="trace")
            trace = TraceContext(trace_id, parent)
        if flags & _FLAG_AUTH:
            from .auth import AUTH_FIELD_SIZE, MAC_SIZE

            if len(body) - offset < AUTH_FIELD_SIZE:
                raise FrameError(
                    f"auth field truncated ({len(body) - offset} of "
                    f"{AUTH_FIELD_SIZE} bytes)", reason="auth-truncated")
            key_id = body[offset]
            (nonce,) = struct.unpack_from("<Q", body, offset + 1)
            mac = body[offset + 9:offset + 9 + MAC_SIZE]
            signed_prefix = body[:offset]
            offset += AUTH_FIELD_SIZE
            if auth is not None:
                auth.verify(
                    dst=auth_node or "", src=src, key_id=key_id,
                    nonce=nonce, mac=mac,
                    signed_bytes=(signed_prefix
                                  + bytes([key_id])
                                  + struct.pack("<Q", nonce)
                                  + body[offset:]))
                authenticated = True
    if auth is not None and not authenticated:
        # Auth required: only the bare-envelope client channel is exempt
        # (clients hold no group key; their requests never enter the
        # ring unmediated).  v2 frames cannot carry a MAC, so a version
        # downgrade cannot smuggle an unauthenticated ring frame in.
        if offset >= len(body) or body[offset] != _KIND_ENVELOPE:
            raise FrameError(
                f"unauthenticated ring frame from {src!r} "
                f"(auth mode requires a MAC)", reason="auth-missing")
    return src, trace, body[offset:]


def unframe(data: bytes) -> Tuple[str, bytes]:
    """Validate a frame; returns ``(src_node, payload_bytes)``.

    The pre-v3 two-tuple contract: any attached trace context is parsed
    (and validated) but discarded.  Use :func:`unframe_ex` to keep it.
    """
    src, _trace, payload_bytes = unframe_ex(data)
    return src, payload_bytes


def encode_frame(src: str, payload: Any,
                 trace: Optional[TraceContext] = None,
                 auth=None) -> bytes:
    """Convenience: encode and frame one payload."""
    return frame(src, encode_payload(payload), trace, auth)


def decode_frame_ex(data: bytes, *, auth=None,
                    auth_node: Optional[str] = None
                    ) -> Tuple[str, Any, Optional[TraceContext]]:
    """Unframe and decode; returns ``(src_node, payload, trace)``."""
    src, trace, payload_bytes = unframe_ex(data, auth=auth,
                                           auth_node=auth_node)
    payload, end = decode_payload(payload_bytes, 0)
    if end != len(payload_bytes):
        raise FrameError(
            f"trailing garbage: payload ends at {end} of {len(payload_bytes)} bytes",
            reason="trailing")
    return src, payload, trace


def decode_frame(data: bytes) -> Tuple[str, Any]:
    """Convenience: unframe and decode; returns ``(src_node, payload)``."""
    src, payload, _trace = decode_frame_ex(data)
    return src, payload
