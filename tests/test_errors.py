"""The exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_subsystem_grouping(self):
        assert issubclass(errors.MembershipError, errors.TotemError)
        assert issubclass(errors.RpcTimeout, errors.RpcError)
        assert issubclass(errors.NotPrimaryError, errors.ReplicationError)
        assert issubclass(errors.ClockRollbackError, errors.TimeServiceError)
        assert issubclass(errors.ProcessKilled, errors.SimulationError)
        assert issubclass(errors.Interrupt, errors.SimulationError)
        assert issubclass(errors.NodeDown, errors.SimulationError)

    def test_interrupt_carries_cause(self):
        interrupt = errors.Interrupt(cause="timer")
        assert interrupt.cause == "timer"

    def test_one_except_clause_catches_everything(self):
        for cls in (errors.TotemError, errors.RpcTimeout,
                    errors.StateTransferError, errors.ConfigurationError):
            try:
                raise cls("x")
            except errors.ReproError:
                pass
