"""Tests for the client-history consistency checker — unit level plus a
full-system audit of real histories (CTS clean, baseline dirty)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Operation,
    audit_history,
    check_monotonic_register,
    check_no_duplicates,
)
from repro.errors import RpcTimeout

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestCheckerUnit:
    def test_clean_history_passes(self):
        ops = [
            Operation(0.0, 1.0, 10, "a"),
            Operation(2.0, 3.0, 20, "b"),
            Operation(2.5, 4.0, 30, "a"),
        ]
        assert check_monotonic_register(ops) is None
        assert audit_history(ops) == []

    def test_rollback_detected(self):
        ops = [
            Operation(0.0, 1.0, 100, "a"),
            Operation(2.0, 3.0, 50, "b"),  # started after a ended: smaller
        ]
        violation = check_monotonic_register(ops)
        assert violation is not None
        assert "rolled back" in str(violation)

    def test_concurrent_operations_may_disagree(self):
        # Overlapping intervals: no real-time order, any values are fine.
        ops = [
            Operation(0.0, 5.0, 100, "a"),
            Operation(1.0, 2.0, 50, "b"),
        ]
        assert check_monotonic_register(ops) is None

    def test_duplicate_detected(self):
        ops = [Operation(0, 1, 7, "a"), Operation(2, 3, 7, "b")]
        pair = check_no_duplicates(ops)
        assert pair is not None
        assert audit_history(ops)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Operation(2.0, 1.0, 5)

    @settings(max_examples=50)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=1, max_size=40, unique=True,
        )
    )
    def test_sorted_sequential_history_always_clean(self, values):
        ordered = sorted(values)
        ops = [
            Operation(float(2 * i), float(2 * i + 1), v, "c")
            for i, v in enumerate(ordered)
        ]
        assert audit_history(ops) == []


def record_history(time_source, *, seed, crash=True, calls=6):
    """Collect a real client history across a primary crash."""
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], style="passive",
               time_source=time_source, checkpoint_interval=4)
    client = bed.client("n0")
    bed.start(settle=0.3)
    operations = []

    def do_calls(n):
        def scenario():
            for _ in range(n):
                start = bed.sim.now
                try:
                    result, _ = yield from client.timed_call(
                        "svc", "get_time", timeout=3.0
                    )
                except RpcTimeout:
                    continue
                if result.ok:
                    operations.append(
                        Operation(start, bed.sim.now, result.value, "client")
                    )
            return None
        return bed.run_process(scenario())

    do_calls(calls)
    if crash:
        primary = next(nid for nid, r in bed.replicas("svc").items()
                       if r.is_primary)
        bed.crash(primary)
        bed.run(0.6)
        do_calls(calls)
    return operations


class TestFullSystemAudit:
    def test_cts_histories_audit_clean(self):
        for seed in (300, 301, 302):
            ops = record_history("cts", seed=seed)
            assert audit_history(ops) == [], f"seed {seed}"

    def test_baseline_histories_fail_audit_somewhere(self):
        dirty = 0
        for seed in (300, 301, 302, 303, 304, 305):
            ops = record_history("primary-backup", seed=seed)
            if audit_history(ops):
                dirty += 1
        assert dirty > 0, "expected at least one dirty baseline history"
