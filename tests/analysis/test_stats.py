"""Unit tests for the statistics toolkit."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    histogram,
    linear_fit,
    mode_bin,
    percentile,
    probability_density,
    summarize,
)


class TestSummarize:
    def test_basic_summary(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.p50 == 3.0

    def test_std(self):
        s = summarize([2, 4, 4, 4, 5, 5, 7, 9])
        assert s.std == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestPercentile:
    def test_interpolation(self):
        assert percentile([0, 10], 50.0) == 5.0
        assert percentile([0, 10], 25.0) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 100.0) == 9

    def test_single_value(self):
        assert percentile([7], 50.0) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101.0)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9),
                    min_size=1, max_size=100))
    def test_bounded_by_min_max(self, data):
        for q in (0, 10, 50, 90, 100):
            value = percentile(data, q)
            assert min(data) <= value <= max(data)


class TestHistogram:
    def test_counts(self):
        bins = histogram([1, 1.5, 2, 3], bin_width=1.0)
        assert bins[0] == (1.0, 2)
        assert bins[1] == (2.0, 1)
        assert bins[2] == (3.0, 1)

    def test_empty(self):
        assert histogram([], bin_width=1.0) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            histogram([1], bin_width=0)

    def test_density_integrates_to_one(self):
        pdf = probability_density(list(range(100)), bin_width=10.0)
        area = sum(density * 10.0 for _, density in pdf)
        assert area == pytest.approx(1.0)

    def test_mode_bin(self):
        assert mode_bin([1, 2, 2, 2, 9], bin_width=1.0) == 2.0


class TestLinearFit:
    def test_exact_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 3.0, 5.0, 7.0]
        slope, intercept = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [0.0, 1.0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0, 2.0])
