"""Unit tests for table/sparkline formatting."""

from repro.analysis import ascii_series, format_table, sparkline


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["node", "count"], [["n1", 1], ["n222", 9977]], title="CCS"
        )
        lines = table.splitlines()
        assert lines[0] == "CCS"
        assert "node" in lines[1] and "count" in lines[1]
        assert lines[3].startswith("n1")
        assert lines[4].startswith("n222")
        # Columns align: 'count' header starts where values start.
        col = lines[1].index("count")
        assert lines[3][col - 1] == " "

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsampling(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_empty(self):
        assert sparkline([]) == ""

    def test_ascii_series_label(self):
        out = ascii_series([1, 2, 3], label="offsets")
        assert out.startswith("offsets")
        assert "[1 .. 3]" in out


class TestAsciiPdfPlot:
    def test_renders_markers_and_axis(self):
        from repro.analysis import ascii_pdf_plot

        plot = ascii_pdf_plot(
            {"o": [0.1, 0.5, 0.2], "x": [0.0, 0.2, 0.6]},
            bin_labels=[0, 100, 200],
        )
        assert "o" in plot
        assert "x" in plot
        assert "+---" in plot
        assert "200" in plot

    def test_later_series_draws_on_top(self):
        from repro.analysis import ascii_pdf_plot

        plot = ascii_pdf_plot(
            {"o": [1.0], "x": [1.0]}, bin_labels=[0], height=3
        )
        # Both peak in the same column; 'x' (later) wins the cell.
        assert "x" in plot and "o" not in plot

    def test_empty_input(self):
        from repro.analysis import ascii_pdf_plot

        assert ascii_pdf_plot({}, bin_labels=[]) == "(no data)"
