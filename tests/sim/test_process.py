"""Unit tests for Store, Signal and Lock coordination primitives."""

import pytest

from repro.sim import Simulator
from repro.sim.process import Lock, Signal, Store


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")

        def proc():
            item = yield store.get()
            return item

        assert sim.run_process(proc()) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def producer():
            yield sim.timeout(2.0)
            store.put("late")

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        sim.process(producer())
        assert sim.run_process(consumer()) == ("late", 2.0)

    def test_fifo_ordering_of_items(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)

        def consumer():
            got = []
            for _ in range(5):
                got.append((yield store.get()))
            return got

        assert sim.run_process(consumer()) == [0, 1, 2, 3, 4]

    def test_fifo_ordering_of_getters(self, sim):
        store = Store(sim)
        order = []

        def consumer(tag):
            item = yield store.get()
            order.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.run(until=1.0)
        store.put("x")
        store.put("y")
        sim.run()
        assert order == [("first", "x"), ("second", "y")]

    def test_len_and_peek_and_clear(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek() == 1
        assert store.clear() == [1, 2]
        assert len(store) == 0


class TestSignal:
    def test_fire_wakes_all_waiters(self, sim):
        signal = Signal(sim)
        woken = []

        def waiter(tag):
            value = yield signal.wait()
            woken.append((tag, value, sim.now))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(3.0, signal.fire, 42)
        sim.run()
        assert woken == [("a", 42, 3.0), ("b", 42, 3.0)]

    def test_fire_returns_woken_count(self, sim):
        signal = Signal(sim)

        def waiter():
            yield signal.wait()

        sim.process(waiter())
        sim.run(until=0.1)
        assert signal.waiting == 1
        assert signal.fire() == 1
        assert signal.fire() == 0

    def test_no_memory_between_fires(self, sim):
        signal = Signal(sim)
        signal.fire("lost")
        woken = []

        def waiter():
            value = yield signal.wait()
            woken.append(value)

        sim.process(waiter())
        sim.schedule(1.0, signal.fire, "second")
        sim.run()
        assert woken == ["second"]


class TestLock:
    def test_mutual_exclusion(self, sim):
        lock = Lock(sim)
        trace = []

        def worker(tag, hold):
            yield lock.acquire()
            trace.append(("enter", tag, sim.now))
            yield sim.timeout(hold)
            trace.append(("exit", tag, sim.now))
            lock.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert trace == [
            ("enter", "a", 0.0),
            ("exit", "a", 2.0),
            ("enter", "b", 2.0),
            ("exit", "b", 3.0),
        ]

    def test_release_unheld_lock_raises(self, sim):
        lock = Lock(sim)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_locked_property(self, sim):
        lock = Lock(sim)
        assert not lock.locked

        def worker():
            yield lock.acquire()
            lock.release()

        sim.process(worker())
        sim.run()
        assert not lock.locked
