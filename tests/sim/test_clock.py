"""Unit tests for ClockValue and HardwareClock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import ClockValue, HardwareClock, Simulator, US_PER_SEC


@pytest.fixture
def sim():
    return Simulator()


class TestClockValue:
    def test_timeval_components(self):
        value = ClockValue(3_500_123)
        assert value.seconds == 3
        assert value.microseconds == 500_123

    def test_from_and_to_seconds(self):
        value = ClockValue.from_seconds(1.25)
        assert value.micros == 1_250_000
        assert value.to_seconds() == 1.25

    def test_add_offset(self):
        assert (ClockValue(100) + 50).micros == 150
        assert (50 + ClockValue(100)).micros == 150

    def test_subtract_clockvalue_gives_int(self):
        delta = ClockValue(150) - ClockValue(100)
        assert isinstance(delta, int)
        assert delta == 50

    def test_subtract_int_gives_clockvalue(self):
        value = ClockValue(150) - 100
        assert isinstance(value, ClockValue)
        assert value.micros == 50

    def test_ordering(self):
        assert ClockValue(1) < ClockValue(2)
        assert ClockValue(2) >= ClockValue(2)

    def test_requires_int(self):
        with pytest.raises(TypeError):
            ClockValue(1.5)

    @given(st.integers(min_value=0, max_value=2**50), st.integers(-10**9, 10**9))
    def test_offset_roundtrip(self, micros, offset):
        value = ClockValue(micros)
        assert (value + offset) - value == offset


class TestHardwareClock:
    def test_reading_advances_with_time(self, sim):
        clock = HardwareClock(sim)
        first = clock.read_us()
        sim.run(until=1.0)
        assert clock.read_us() == first + US_PER_SEC

    def test_epoch_offset(self, sim):
        clock = HardwareClock(sim, epoch_us=5_000_000)
        assert clock.read_us() == 5_000_000

    def test_drift_rate(self, sim):
        fast = HardwareClock(sim, drift_ppm=100.0)
        sim.run(until=10.0)
        # +100 ppm over 10 s = +1000 us.
        assert fast.read_us() == 10 * US_PER_SEC + 1000

    def test_negative_drift(self, sim):
        slow = HardwareClock(sim, drift_ppm=-100.0)
        sim.run(until=10.0)
        assert slow.read_us() == 10 * US_PER_SEC - 1000

    def test_granularity_quantizes(self, sim):
        clock = HardwareClock(sim, granularity_us=1000)
        sim.run(until=0.0123456)
        assert clock.read_us() % 1000 == 0

    def test_monotone_raw_reads(self, sim):
        clock = HardwareClock(sim, drift_ppm=-200.0, granularity_us=7)
        last = clock.raw_us()
        for step in range(1, 200):
            sim.run(until=step * 0.000123)
            current = clock.raw_us()
            assert current >= last
            last = current

    def test_step_adjusts_disciplined_reading(self, sim):
        clock = HardwareClock(sim)
        sim.run(until=1.0)
        clock.step(-500)
        assert clock.read_us() == US_PER_SEC - 500
        assert clock.raw_us() == US_PER_SEC  # raw unaffected

    def test_true_offset(self, sim):
        clock = HardwareClock(sim, epoch_us=250)
        assert clock.true_offset_us() == 250

    def test_invalid_granularity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            HardwareClock(sim, granularity_us=0)

    def test_invalid_drift_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            HardwareClock(sim, drift_ppm=-2e6)

    @settings(max_examples=50)
    @given(
        drift=st.floats(min_value=-500.0, max_value=500.0),
        granularity=st.integers(min_value=1, max_value=10_000),
        times=st.lists(st.floats(min_value=0, max_value=100.0), min_size=2, max_size=20),
    )
    def test_property_monotone_under_any_drift(self, drift, granularity, times):
        sim = Simulator()
        clock = HardwareClock(sim, drift_ppm=drift, granularity_us=granularity)
        readings = []
        for t in sorted(times):
            sim.run(until=t)
            readings.append(clock.read_us())
        assert readings == sorted(readings)
