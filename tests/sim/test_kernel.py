"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import Interrupt, ProcessKilled, SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_delay(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_callbacks_fire_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_same_time_callbacks_fire_fifo(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_run_until_stops_before_future_events(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == []
        assert sim.now == 2.0
        sim.run()
        assert fired == ["x"]

    def test_cancel_prevents_callback(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_call_soon_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestEvents:
    def test_event_lifecycle(self, sim):
        ev = sim.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value


class TestProcesses:
    def test_process_sequential_timeouts(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 1.0, 3.0]

    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_process_receives_event_value(self, sim):
        ev = sim.event()

        def producer():
            yield sim.timeout(1.0)
            ev.succeed("payload")

        def consumer():
            value = yield ev
            return value

        sim.process(producer())
        assert sim.run_process(consumer()) == "payload"

    def test_process_waits_for_process(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return 7

        def outer():
            value = yield sim.process(inner())
            return value * 2

        assert sim.run_process(outer()) == 14

    def test_failed_event_raises_in_waiter(self, sim):
        ev = sim.event()

        def failer():
            yield sim.timeout(1.0)
            ev.fail(ValueError("boom"))

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"

        sim.process(failer())
        assert sim.run_process(waiter()) == "caught boom"

    def test_uncaught_process_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("inner failure")

        with pytest.raises(RuntimeError, match="inner failure"):
            sim.run_process(proc())

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42

        with pytest.raises(SimulationError, match="non-event"):
            sim.run_process(proc())

    def test_deadlock_detected(self, sim):
        def proc():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(proc())


class TestInterruptAndKill:
    def test_interrupt_wakes_blocked_process(self, sim):
        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", sim.now, intr.cause)

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt, "timer")
        while not p.triggered:
            sim.step()
        assert p.value == ("interrupted", 1.0, "timer")

    def test_interrupted_process_can_rewait(self, sim):
        original = sim.timeout(5.0)

        def proc():
            try:
                yield original
            except Interrupt:
                pass
            yield original  # keep waiting on the same event
            return sim.now

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert p.value == 5.0

    def test_interrupt_dead_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run()
        assert not p.is_alive
        p.interrupt()  # must not raise
        sim.run()

    def test_kill_stops_process(self, sim):
        trace = []

        def proc():
            yield sim.timeout(1.0)
            trace.append("should not happen")

        p = sim.process(proc())
        sim.run(until=0.5)
        p.kill()
        sim.run()
        assert trace == []
        assert not p.is_alive

    def test_waiter_on_killed_process_sees_failure(self, sim):
        def victim():
            yield sim.timeout(100.0)

        v = sim.process(victim())

        def waiter():
            try:
                yield v
            except ProcessKilled:
                return "observed kill"

        sim.schedule(1.0, v.kill)
        assert sim.run_process(waiter()) == "observed kill"


class TestConditions:
    def test_any_of_fires_on_first(self, sim):
        def proc():
            result = yield sim.any_of([sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")])
            return (sim.now, [value for _, value in result])

        now, values = sim.run_process(proc())
        assert now == 1.0
        assert values == ["fast"]

    def test_all_of_waits_for_all(self, sim):
        def proc():
            values = yield sim.all_of([sim.timeout(3.0, "a"), sim.timeout(1.0, "b")])
            return (sim.now, values)

        now, values = sim.run_process(proc())
        assert now == 3.0
        assert values == ["a", "b"]

    def test_empty_conditions_fire_immediately(self, sim):
        def proc():
            yield sim.any_of([])
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc()) == 0.0


class TestConditionFailures:
    def test_any_of_propagates_failure(self):
        sim = Simulator()
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("broken input"))

        def waiter():
            try:
                yield sim.any_of([bad, sim.timeout(5.0)])
            except ValueError as exc:
                return f"caught {exc}"

        sim.process(failer())
        assert sim.run_process(waiter()) == "caught broken input"

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("nope"))

        def waiter():
            try:
                yield sim.all_of([sim.timeout(0.5), bad])
            except ValueError:
                return "failed fast"

        sim.process(failer())
        assert sim.run_process(waiter()) == "failed fast"


class TestRunLimits:
    def test_max_events_bounds_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        assert sim.run() == 2.5

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0
