"""Unit tests for the simulated LAN."""

import random

import pytest

from repro.errors import NetworkError
from repro.sim import LatencyModel, Network, Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_network(sim, **kwargs):
    return Network(sim, random.Random(1234), **kwargs)


class Sink:
    """Records delivered frames with their arrival times."""

    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def __call__(self, frame):
        self.frames.append((self.sim.now, frame))


class TestLatencyModel:
    def test_fixed_components(self):
        model = LatencyModel(bandwidth_bps=100e6, propagation_s=20e-6, jitter_mean_s=0.0)
        latency = model.sample(random.Random(0), 1250)  # 1250 B = 100 us at 100 Mbit
        assert latency == pytest.approx(120e-6)

    def test_jitter_is_nonnegative(self):
        model = LatencyModel(jitter_mean_s=10e-6)
        rng = random.Random(7)
        base = LatencyModel(jitter_mean_s=0.0).sample(rng, 100)
        for _ in range(100):
            assert model.sample(rng, 100) >= base


class TestUnicast:
    def test_delivery(self, sim):
        net = make_network(sim)
        a = net.attach("a", Sink(sim))
        sink_b = Sink(sim)
        net.attach("b", sink_b)
        a.unicast("b", "hello", size_bytes=64)
        sim.run()
        assert len(sink_b.frames) == 1
        arrival, frame = sink_b.frames[0]
        assert frame.payload == "hello"
        assert frame.src == "a"
        assert arrival > 0.0

    def test_unknown_destination_is_dropped(self, sim):
        net = make_network(sim)
        a = net.attach("a", Sink(sim))
        a.unicast("ghost", "x")
        sim.run()  # no exception, nothing delivered

    def test_stats_counted(self, sim):
        net = make_network(sim)
        sink = Sink(sim)
        a = net.attach("a", Sink(sim))
        b = net.attach("b", sink)
        a.unicast("b", "x", size_bytes=100)
        sim.run()
        assert a.frames_sent == 1
        assert a.bytes_sent == 100
        assert b.frames_received == 1


class TestMulticast:
    def test_reaches_everyone_including_sender(self, sim):
        net = make_network(sim)
        sinks = {nid: Sink(sim) for nid in "abc"}
        ifaces = {nid: net.attach(nid, sinks[nid]) for nid in "abc"}
        ifaces["a"].multicast("announce")
        sim.run()
        for nid in "abc":
            assert len(sinks[nid].frames) == 1, nid

    def test_loopback_is_fast(self, sim):
        net = make_network(sim)
        sink_a, sink_b = Sink(sim), Sink(sim)
        a = net.attach("a", sink_a)
        net.attach("b", sink_b)
        a.multicast("m")
        sim.run()
        assert sink_a.frames[0][0] <= sink_b.frames[0][0]


class TestFaults:
    def test_loss_drops_frames(self, sim):
        net = make_network(sim, loss_rate=0.5)
        sink = Sink(sim)
        a = net.attach("a", Sink(sim))
        net.attach("b", sink)
        for _ in range(200):
            a.unicast("b", "x")
        sim.run()
        assert 0 < len(sink.frames) < 200
        assert net.frames_dropped == 200 - len(sink.frames)

    def test_invalid_loss_rate_rejected(self, sim):
        with pytest.raises(NetworkError):
            make_network(sim, loss_rate=1.0)

    def test_partition_blocks_cross_traffic(self, sim):
        net = make_network(sim)
        sinks = {nid: Sink(sim) for nid in "abcd"}
        ifaces = {nid: net.attach(nid, sinks[nid]) for nid in "abcd"}
        net.partition({"a", "b"}, {"c", "d"})
        ifaces["a"].multicast("m")
        sim.run()
        assert len(sinks["b"].frames) == 1
        assert len(sinks["c"].frames) == 0
        assert len(sinks["d"].frames) == 0

    def test_heal_restores_traffic(self, sim):
        net = make_network(sim)
        sinks = {nid: Sink(sim) for nid in "ab"}
        ifaces = {nid: net.attach(nid, sinks[nid]) for nid in "ab"}
        net.partition({"a"}, {"b"})
        assert not net.reachable("a", "b")
        net.heal()
        assert net.reachable("a", "b")
        ifaces["a"].unicast("b", "x")
        sim.run()
        assert len(sinks["b"].frames) == 1

    def test_down_interface_does_not_receive(self, sim):
        net = make_network(sim)
        sink = Sink(sim)
        a = net.attach("a", Sink(sim))
        b = net.attach("b", sink)
        b.up = False
        a.unicast("b", "x")
        sim.run()
        assert sink.frames == []

    def test_down_interface_cannot_send(self, sim):
        net = make_network(sim)
        a = net.attach("a", Sink(sim))
        a.up = False
        with pytest.raises(NetworkError):
            a.unicast("a", "x")

    def test_double_attach_rejected(self, sim):
        net = make_network(sim)
        net.attach("a", Sink(sim))
        with pytest.raises(NetworkError):
            net.attach("a", Sink(sim))


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        def run(seed):
            sim = Simulator()
            net = Network(sim, random.Random(seed))
            sink = Sink(sim)
            a = net.attach("a", Sink(sim))
            net.attach("b", sink)
            for _ in range(50):
                a.unicast("b", "x")
            sim.run()
            return [t for t, _ in sink.frames]

        assert run(1) == run(1)
        assert run(1) != run(2)
