"""Unit tests for deterministic RNG stream management."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        rngs = RngRegistry(0)
        assert rngs.stream("x") is rngs.stream("x")

    def test_streams_independent_of_creation_order(self):
        first = RngRegistry(7)
        a1 = first.stream("a").random()
        b1 = first.stream("b").random()

        second = RngRegistry(7)
        b2 = second.stream("b").random()  # reversed creation order
        a2 = second.stream("a").random()

        assert a1 == a2
        assert b1 == b2

    def test_fork_gives_namespaced_registry(self):
        root = RngRegistry(3)
        forked = root.fork("subsystem")
        assert forked.seed != root.seed
        assert forked.stream("x").random() == RngRegistry(forked.seed).stream("x").random()
