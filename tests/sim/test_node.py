"""Unit tests for the simulated host (Node) and Cluster builder."""

import random

import pytest

from repro.errors import NodeDown
from repro.sim import Cluster, ClusterConfig, Network, Node, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    return Network(sim, random.Random(0))


def make_node(sim, network, node_id="n0", **kwargs):
    return Node(sim, node_id, network, random.Random(99), **kwargs)


class TestNodeBasics:
    def test_clock_readable(self, sim, network):
        node = make_node(sim, network, clock_epoch_us=123)
        assert node.read_clock_us() == 123

    def test_receiver_gets_frames(self, sim, network):
        node_a = make_node(sim, network, "a")
        node_b = make_node(sim, network, "b")
        received = []
        node_b.set_receiver(lambda frame: received.append(frame.payload))
        node_a.iface.unicast("b", "ping")
        sim.run()
        assert received == ["ping"]

    def test_compute_scales_with_cpu_factor(self, sim, network):
        slow = make_node(sim, network, "slow", cpu_factor=0.5, cpu_jitter=0.0)
        fast = make_node(sim, network, "fast", cpu_factor=2.0, cpu_jitter=0.0)
        done = {}

        def work(node, tag):
            yield node.compute(1.0)
            done[tag] = sim.now

        slow.spawn(work(slow, "slow"))
        fast.spawn(work(fast, "fast"))
        sim.run()
        assert done["slow"] == pytest.approx(2.0)
        assert done["fast"] == pytest.approx(0.5)

    def test_busy_loop_duration_in_paper_range(self, sim, network):
        # 30k-90k iterations should land in roughly the paper's 60-400 us.
        node = make_node(sim, network)
        done = []

        def work():
            start = sim.now
            yield node.busy_loop(30_000)
            done.append(sim.now - start)
            start = sim.now
            yield node.busy_loop(90_000)
            done.append(sim.now - start)

        node.spawn(work())
        sim.run()
        assert 40e-6 < done[0] < 400e-6
        assert 40e-6 < done[1] < 500e-6
        assert done[1] > done[0]

    def test_invalid_cpu_factor_rejected(self, sim, network):
        with pytest.raises(ValueError):
            make_node(sim, network, cpu_factor=0.0)


class TestCrashRecover:
    def test_crash_kills_processes(self, sim, network):
        node = make_node(sim, network)
        trace = []

        def work():
            yield sim.timeout(10.0)
            trace.append("survived")

        node.spawn(work())
        sim.run(until=1.0)
        node.crash()
        sim.run()
        assert trace == []

    def test_crash_silences_interface(self, sim, network):
        node_a = make_node(sim, network, "a")
        node_b = make_node(sim, network, "b")
        received = []
        node_b.set_receiver(lambda frame: received.append(frame.payload))
        node_b.crash()
        node_a.iface.unicast("b", "ping")
        sim.run()
        assert received == []

    def test_crashed_clock_unreadable(self, sim, network):
        node = make_node(sim, network)
        node.crash()
        with pytest.raises(NodeDown):
            node.read_clock_us()

    def test_spawn_on_crashed_node_rejected(self, sim, network):
        node = make_node(sim, network)
        node.crash()
        with pytest.raises(NodeDown):
            node.spawn(iter(()))

    def test_recover_restores_clock_and_network(self, sim, network):
        node_a = make_node(sim, network, "a")
        node_b = make_node(sim, network, "b")
        received = []
        node_b.set_receiver(lambda frame: received.append(frame.payload))
        node_b.crash()
        sim.run(until=1.0)
        node_b.recover()
        assert node_b.read_clock_us() >= 0
        node_a.iface.unicast("b", "after")
        sim.run()
        assert received == ["after"]

    def test_crash_is_idempotent(self, sim, network):
        node = make_node(sim, network)
        node.crash()
        node.crash()
        assert node.crash_count == 1


class TestCluster:
    def test_default_matches_paper_testbed(self):
        cluster = Cluster()
        assert cluster.node_ids == ["n0", "n1", "n2", "n3"]

    def test_clocks_unsynchronized(self):
        cluster = Cluster(seed=5)
        epochs = {node.clock.epoch_us for node in cluster.nodes.values()}
        assert len(epochs) == 4

    def test_same_seed_same_clocks(self):
        first = Cluster(seed=9)
        second = Cluster(seed=9)
        for nid in first.node_ids:
            assert first.node(nid).clock.epoch_us == second.node(nid).clock.epoch_us
            assert first.node(nid).clock.drift_ppm == second.node(nid).clock.drift_ppm

    def test_config_is_honoured(self):
        config = ClusterConfig(num_nodes=2, node_prefix="host", clock_drift_ppm_max=0.0)
        cluster = Cluster(config, seed=1)
        assert cluster.node_ids == ["host0", "host1"]
        for node in cluster.nodes.values():
            assert node.clock.drift_ppm == 0.0

    def test_empty_cluster_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Cluster(ClusterConfig(num_nodes=0))
